//! Prometheus text and JSON renderers for a [`Registry`] snapshot.
//!
//! Both renderings are deterministic: instruments are emitted in
//! lexicographic name order and numbers use Rust's shortest round-trip
//! `f64` formatting, so a registry populated with fixed values renders to
//! a byte-stable string — which is what the golden-pin test locks down.

use crate::metrics::Instrument;
use crate::{Histogram, Registry, HISTOGRAM_BUCKETS};
use std::fmt::Write;

/// Schema tag embedded in every JSON snapshot: consumers (the CLI's
/// `--metrics-json`, the bench comparison gate) match on it before
/// trusting the field layout.
pub const JSON_SCHEMA: &str = "priste-metrics/1";

/// Formats an `f64` compactly: integral values print without a trailing
/// `.0` (`Display` for `f64` already omits it), non-finite values print
/// Prometheus-style.
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else if v.is_nan() {
        "NaN".to_owned()
    } else {
        format!("{v}")
    }
}

/// JSON has no Inf/NaN literals; map them to `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Escapes a string for embedding in a JSON double-quoted literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Splits `name{labels}` into (`name`, `labels`); labels exclude braces
/// and are empty when the name is unlabeled.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(open) => (
            &name[..open],
            name[open + 1..]
                .strip_suffix('}')
                .unwrap_or(&name[open + 1..]),
        ),
        None => (name, ""),
    }
}

/// Renders a histogram's cumulative bucket lines plus `_sum`/`_count`.
fn prometheus_histogram(out: &mut String, name: &str, hist: &Histogram) {
    let (base, labels) = split_labels(name);
    let buckets = hist.bucket_counts();
    let mut cum = 0u64;
    for (i, n) in buckets.iter().enumerate().take(HISTOGRAM_BUCKETS - 1) {
        if *n == 0 {
            continue;
        }
        cum += n;
        let le = fmt_f64(Histogram::bucket_le(i));
        if labels.is_empty() {
            let _ = writeln!(out, "{base}_bucket{{le=\"{le}\"}} {cum}");
        } else {
            let _ = writeln!(out, "{base}_bucket{{{labels},le=\"{le}\"}} {cum}");
        }
    }
    let total = hist.count();
    if labels.is_empty() {
        let _ = writeln!(out, "{base}_bucket{{le=\"+Inf\"}} {total}");
        let _ = writeln!(out, "{base}_sum {}", fmt_f64(hist.sum()));
        let _ = writeln!(out, "{base}_count {total}");
    } else {
        let _ = writeln!(out, "{base}_bucket{{{labels},le=\"+Inf\"}} {total}");
        let _ = writeln!(out, "{base}_sum{{{labels}}} {}", fmt_f64(hist.sum()));
        let _ = writeln!(out, "{base}_count{{{labels}}} {total}");
    }
}

impl Registry {
    /// Renders every instrument in the Prometheus text exposition format.
    ///
    /// Counters and gauges emit one sample line; histograms emit their
    /// non-empty cumulative `_bucket{le=...}` series plus `_sum` and
    /// `_count`. A `# TYPE` comment precedes each distinct base name.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, instrument) in self.snapshot() {
            let (base, _) = split_labels(&name);
            if base != last_base {
                let kind = match instrument {
                    Instrument::Counter(_) => "counter",
                    Instrument::Gauge(_) => "gauge",
                    Instrument::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {base} {kind}");
                last_base = base.to_owned();
            }
            match instrument {
                Instrument::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Instrument::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", fmt_f64(g.get()));
                }
                Instrument::Histogram(h) => prometheus_histogram(&mut out, &name, &h),
            }
        }
        out
    }

    /// Renders a machine-readable JSON snapshot (schema
    /// `priste-metrics/1`):
    ///
    /// ```json
    /// {
    ///   "schema": "priste-metrics/1",
    ///   "counters": {"name": 3},
    ///   "gauges": {"name": 1.5},
    ///   "histograms": {
    ///     "name": {"count": 2, "sum": 0.5, "p50": 0.375, "p90": 0.5,
    ///              "p99": 0.5, "buckets": [[0.5, 2]]}
    ///   }
    /// }
    /// ```
    ///
    /// `buckets` lists `[upper_bound, count]` pairs for non-empty buckets
    /// (non-cumulative); the `p*` fields are the interpolated
    /// [`Histogram::quantile`] estimates. Non-finite numbers render as
    /// `null`.
    pub fn render_json(&self) -> String {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, instrument) in self.snapshot() {
            let key = escape_json(&name);
            match instrument {
                Instrument::Counter(c) => {
                    counters.push(format!("\"{key}\": {}", c.get()));
                }
                Instrument::Gauge(g) => {
                    gauges.push(format!("\"{key}\": {}", json_f64(g.get())));
                }
                Instrument::Histogram(h) => {
                    let buckets: Vec<String> = h
                        .bucket_counts()
                        .iter()
                        .enumerate()
                        .filter(|(_, n)| **n > 0)
                        .map(|(i, n)| format!("[{}, {n}]", json_f64(Histogram::bucket_le(i))))
                        .collect();
                    histograms.push(format!(
                        "\"{key}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p90\": {}, \
                         \"p99\": {}, \"buckets\": [{}]}}",
                        h.count(),
                        json_f64(h.sum()),
                        json_f64(h.quantile(0.5)),
                        json_f64(h.quantile(0.9)),
                        json_f64(h.quantile(0.99)),
                        buckets.join(", ")
                    ));
                }
            }
        }
        format!(
            "{{\n  \"schema\": \"{JSON_SCHEMA}\",\n  \"counters\": {{{}}},\n  \"gauges\": \
             {{{}}},\n  \"histograms\": {{{}}}\n}}\n",
            counters.join(", "),
            gauges.join(", "),
            histograms.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_registry() -> Registry {
        let r = Registry::new();
        r.counter("guard_releases_total").add(42);
        r.counter("online_shard_panics_total{shard=\"3\"}").add(2);
        r.gauge("online_sessions").set(500.0);
        let h = r.histogram("durable_wal_append_seconds");
        // Dyadic values: bucket bounds and the sum are float-exact.
        h.observe(0.25); // -> bucket [0.25, 0.5), le 0.5
        h.observe(0.25);
        h.observe(4.0); // -> bucket [4, 8), le 8
        r
    }

    #[test]
    fn prometheus_rendering_is_deterministic_and_labeled() {
        let text = fixed_registry().render_prometheus();
        let expected = "\
# TYPE durable_wal_append_seconds histogram
durable_wal_append_seconds_bucket{le=\"0.5\"} 2
durable_wal_append_seconds_bucket{le=\"8\"} 3
durable_wal_append_seconds_bucket{le=\"+Inf\"} 3
durable_wal_append_seconds_sum 4.5
durable_wal_append_seconds_count 3
# TYPE guard_releases_total counter
guard_releases_total 42
# TYPE online_sessions gauge
online_sessions 500
# TYPE online_shard_panics_total counter
online_shard_panics_total{shard=\"3\"} 2
";
        assert_eq!(text, expected);
    }

    #[test]
    fn labeled_histogram_merges_le_into_the_brace_set() {
        let r = Registry::new();
        r.histogram("plan_seconds{planner=\"greedy\"}").observe(1.0);
        let text = r.render_prometheus();
        assert!(
            text.contains("plan_seconds_bucket{planner=\"greedy\",le=\"2\"} 1"),
            "got:\n{text}"
        );
        assert!(text.contains("plan_seconds_sum{planner=\"greedy\"} 1"));
        assert!(text.contains("plan_seconds_count{planner=\"greedy\"} 1"));
    }

    #[test]
    fn json_rendering_parses_back_and_agrees() {
        let r = fixed_registry();
        let text = r.render_json();
        let doc = crate::json::parse(&text).expect("exporter output must parse");
        assert_eq!(
            doc.get("schema").and_then(|j| j.as_str()),
            Some(JSON_SCHEMA)
        );
        let counters = doc.get("counters").expect("counters object");
        assert_eq!(
            counters
                .get("guard_releases_total")
                .and_then(|j| j.as_u64()),
            Some(42)
        );
        assert_eq!(
            counters
                .get("online_shard_panics_total{shard=\"3\"}")
                .and_then(|j| j.as_u64()),
            Some(2)
        );
        let hist = doc
            .get("histograms")
            .and_then(|h| h.get("durable_wal_append_seconds"))
            .expect("histogram entry");
        assert_eq!(hist.get("count").and_then(|j| j.as_u64()), Some(3));
        // Interpolated estimates: rank 2 of 2 exhausts [0.25, 0.5) → 0.5;
        // rank 3 is the sole observation in [4, 8) → its le, 8.
        assert_eq!(hist.get("p50").and_then(|j| j.as_f64()), Some(0.5));
        assert_eq!(hist.get("p99").and_then(|j| j.as_f64()), Some(8.0));
    }

    #[test]
    fn non_finite_values_render_as_null_in_json() {
        let r = Registry::new();
        r.gauge("weird").set(f64::INFINITY);
        let text = r.render_json();
        assert!(text.contains("\"weird\": null"), "got: {text}");
        assert!(crate::json::parse(&text).is_ok());
    }
}
