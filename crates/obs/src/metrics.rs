//! The sharded metric registry and its instrument handles.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of log₂ buckets in a [`Histogram`].
///
/// Bucket `i` covers values in `[2^(i-32), 2^(i-31))`, so the resolved
/// range spans `2^-31 ≈ 4.7e-10` up to `2^31 ≈ 2.1e9` — nanoseconds to
/// decades when observing seconds. Values at or below zero (and NaN) land
/// in bucket 0; values off the top land in the last (unbounded) bucket.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Exponent offset: bucket `i` has upper bound `2^(i - LE_OFFSET)`.
const LE_OFFSET: i32 = 31;

/// Number of name shards in a [`Registry`]; get-or-create lookups on
/// distinct names contend on independent locks.
const REGISTRY_SHARDS: usize = 8;

/// Adds `v` to an `f64` stored as bits in an [`AtomicU64`] via a CAS loop.
fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// FNV-1a 64-bit hash, used to pick a registry name shard.
fn fnv1a64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A monotonically increasing `u64` counter.
///
/// Clones share the same cell. Recording is gated on the enabled flag the
/// handle was created with — a registry handle follows
/// [`Registry::set_enabled`]; a standalone [`Counter::new`] is always on
/// (the `SessionManager` uses standalone counters for `ServiceStats`,
/// which are service semantics rather than optional telemetry).
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    enabled: Arc<AtomicBool>,
}

impl Counter {
    /// A standalone, always-enabled counter.
    pub fn new() -> Self {
        Counter {
            cell: Arc::new(AtomicU64::new(0)),
            enabled: Arc::new(AtomicBool::new(true)),
        }
    }

    /// A standalone counter whose record path is a no-op.
    pub fn disabled() -> Self {
        Counter {
            cell: Arc::new(AtomicU64::new(0)),
            enabled: Arc::new(AtomicBool::new(false)),
        }
    }

    pub(crate) fn with_flag(enabled: Arc<AtomicBool>) -> Self {
        Counter {
            cell: Arc::new(AtomicU64::new(0)),
            enabled,
        }
    }

    /// Whether the record path is live.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        if self.is_enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value. Reads are never gated.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Overwrites the value — used when restoring counters from a durable
    /// snapshot. Stores are never gated.
    pub fn store(&self, n: u64) {
        self.cell.store(n, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.get())
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// An `f64` gauge (bits in an atomic `u64`).
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
    enabled: Arc<AtomicBool>,
}

impl Gauge {
    /// A standalone, always-enabled gauge initialised to `0.0`.
    pub fn new() -> Self {
        Gauge {
            cell: Arc::new(AtomicU64::new(0f64.to_bits())),
            enabled: Arc::new(AtomicBool::new(true)),
        }
    }

    /// A standalone gauge whose record path is a no-op.
    pub fn disabled() -> Self {
        Gauge {
            cell: Arc::new(AtomicU64::new(0f64.to_bits())),
            enabled: Arc::new(AtomicBool::new(false)),
        }
    }

    pub(crate) fn with_flag(enabled: Arc<AtomicBool>) -> Self {
        Gauge {
            cell: Arc::new(AtomicU64::new(0f64.to_bits())),
            enabled,
        }
    }

    /// Whether the record path is live.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        if self.is_enabled() {
            self.cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        if self.is_enabled() {
            atomic_f64_add(&self.cell, delta);
        }
    }

    /// Current value. Reads are never gated.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gauge")
            .field("value", &self.get())
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    /// `f64` bits; exact running sum of observed values.
    sum: AtomicU64,
}

impl HistogramCell {
    fn empty() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
        }
    }
}

/// A log₂-bucketed value/latency histogram with exact count and sum.
///
/// Quantiles are estimated by locating the bucket containing the
/// requested rank and interpolating linearly inside it (the same model
/// Prometheus' `histogram_quantile` uses), so the error is bounded by
/// the bucket width around the true value rather than always rounding
/// up to the next power of two.
#[derive(Clone)]
pub struct Histogram {
    cell: Arc<HistogramCell>,
    enabled: Arc<AtomicBool>,
}

impl Histogram {
    /// A standalone, always-enabled histogram.
    pub fn new() -> Self {
        Histogram {
            cell: Arc::new(HistogramCell::empty()),
            enabled: Arc::new(AtomicBool::new(true)),
        }
    }

    /// A standalone histogram whose record path is a no-op.
    pub fn disabled() -> Self {
        Histogram {
            cell: Arc::new(HistogramCell::empty()),
            enabled: Arc::new(AtomicBool::new(false)),
        }
    }

    pub(crate) fn with_flag(enabled: Arc<AtomicBool>) -> Self {
        Histogram {
            cell: Arc::new(HistogramCell::empty()),
            enabled,
        }
    }

    /// Whether the record path is live.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Index of the bucket `v` falls into.
    pub fn bucket_index(v: f64) -> usize {
        // `v > 0.0` is false for v <= 0 and for NaN: both land in bucket 0.
        if v.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return 0;
        }
        let exp = v.log2().floor() as i64;
        (exp + i64::from(LE_OFFSET) + 1).clamp(0, HISTOGRAM_BUCKETS as i64 - 1) as usize
    }

    /// Upper bound (`le`) of bucket `i`; the last bucket is unbounded.
    pub fn bucket_le(i: usize) -> f64 {
        if i >= HISTOGRAM_BUCKETS - 1 {
            f64::INFINITY
        } else {
            (2f64).powi(i as i32 - LE_OFFSET)
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        if !self.is_enabled() {
            return;
        }
        let cell = &*self.cell;
        cell.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&cell.sum, v);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.cell.sum.load(Ordering::Relaxed))
    }

    /// Mean observed value (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Per-bucket (non-cumulative) counts.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.cell.buckets[i].load(Ordering::Relaxed))
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`): the bucket holding the
    /// rank-`⌈q·count⌉` observation is located, then the estimate
    /// interpolates linearly between the bucket's bounds according to
    /// where the rank falls among that bucket's observations. Returns
    /// `0.0` for an empty histogram; a rank landing in the unbounded top
    /// bucket reports that bucket's lower bound (there is no finite upper
    /// bound to interpolate towards — Prometheus does the same).
    pub fn quantile(&self, q: f64) -> f64 {
        let buckets = self.bucket_counts();
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, n) in buckets.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            let below = cum;
            cum += n;
            if cum >= rank {
                let lower = if i == 0 { 0.0 } else { Self::bucket_le(i - 1) };
                let upper = Self::bucket_le(i);
                if upper.is_infinite() {
                    return lower;
                }
                let frac = (rank - below) as f64 / *n as f64;
                return lower + (upper - lower) * frac;
            }
        }
        f64::INFINITY
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// One registered instrument; clones share the underlying cell.
#[derive(Clone, Debug)]
pub(crate) enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct RegistryInner {
    enabled: Arc<AtomicBool>,
    shards: Vec<RwLock<BTreeMap<String, Instrument>>>,
    sink: RwLock<Option<Arc<dyn crate::EventSink>>>,
}

/// The sharded metric registry.
///
/// Cheap to clone (an `Arc`); all clones share instruments, the enabled
/// flag, and the event sink. Instrument names may bake labels in
/// Prometheus syntax (`online_shard_panics_total{shard="3"}`); the text
/// exporter keeps them intact and merges histogram `le` labels into the
/// brace set.
///
/// Lookups (`counter`/`gauge`/`histogram`) are get-or-create and intended
/// for setup paths: hot paths hold on to the returned handle. Looking up
/// an existing name with a different instrument kind panics — that is a
/// programming error, not an operational condition.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    fn with_enabled(enabled: bool) -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                enabled: Arc::new(AtomicBool::new(enabled)),
                shards: (0..REGISTRY_SHARDS)
                    .map(|_| RwLock::new(BTreeMap::new()))
                    .collect(),
                sink: RwLock::new(None),
            }),
        }
    }

    /// An enabled registry.
    pub fn new() -> Self {
        Registry::with_enabled(true)
    }

    /// A registry whose instruments' record paths are no-ops until
    /// [`Registry::set_enabled`] flips them on.
    pub fn disabled() -> Self {
        Registry::with_enabled(false)
    }

    /// Whether instruments created by this registry record.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables every instrument created by this registry
    /// (adopted instruments keep their own flag).
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    fn shard(&self, name: &str) -> &RwLock<BTreeMap<String, Instrument>> {
        &self.inner.shards[(fnv1a64(name) % REGISTRY_SHARDS as u64) as usize]
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Instrument) -> Instrument {
        let shard = self.shard(name);
        if let Some(found) = shard.read().expect("registry shard poisoned").get(name) {
            return found.clone();
        }
        let mut map = shard.write().expect("registry shard poisoned");
        map.entry(name.to_owned()).or_insert_with(make).clone()
    }

    /// Gets or creates the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn counter(&self, name: &str) -> Counter {
        let flag = Arc::clone(&self.inner.enabled);
        match self.get_or_insert(name, || Instrument::Counter(Counter::with_flag(flag))) {
            Instrument::Counter(c) => c,
            other => panic!("metric `{name}` already registered as {}", kind_of(&other)),
        }
    }

    /// Gets or creates the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let flag = Arc::clone(&self.inner.enabled);
        match self.get_or_insert(name, || Instrument::Gauge(Gauge::with_flag(flag))) {
            Instrument::Gauge(g) => g,
            other => panic!("metric `{name}` already registered as {}", kind_of(&other)),
        }
    }

    /// Gets or creates the histogram `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let flag = Arc::clone(&self.inner.enabled);
        match self.get_or_insert(name, || Instrument::Histogram(Histogram::with_flag(flag))) {
            Instrument::Histogram(h) => h,
            other => panic!("metric `{name}` already registered as {}", kind_of(&other)),
        }
    }

    /// Registers an existing counter under `name`, replacing any previous
    /// registration. The handle keeps its own enabled flag — this is how
    /// always-on `ServiceStats` counters surface in an exported snapshot
    /// without losing their pre-attach values.
    pub fn adopt_counter(&self, name: &str, counter: &Counter) {
        self.adopt(name, Instrument::Counter(counter.clone()));
    }

    /// Registers an existing gauge under `name` (see
    /// [`Registry::adopt_counter`]).
    pub fn adopt_gauge(&self, name: &str, gauge: &Gauge) {
        self.adopt(name, Instrument::Gauge(gauge.clone()));
    }

    /// Registers an existing histogram under `name` (see
    /// [`Registry::adopt_counter`]).
    pub fn adopt_histogram(&self, name: &str, histogram: &Histogram) {
        self.adopt(name, Instrument::Histogram(histogram.clone()));
    }

    fn adopt(&self, name: &str, instrument: Instrument) {
        self.shard(name)
            .write()
            .expect("registry shard poisoned")
            .insert(name.to_owned(), instrument);
    }

    /// A sorted snapshot of every registered instrument.
    pub(crate) fn snapshot(&self) -> BTreeMap<String, Instrument> {
        let mut merged = BTreeMap::new();
        for shard in &self.inner.shards {
            let map = shard.read().expect("registry shard poisoned");
            for (name, instrument) in map.iter() {
                merged.insert(name.clone(), instrument.clone());
            }
        }
        merged
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.read().expect("registry shard poisoned").len())
            .sum()
    }

    /// Whether no instrument has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Installs a structured event sink receiving every [`Span`]
    /// completion (and any direct [`Registry::emit`] calls).
    ///
    /// [`Span`]: crate::Span
    pub fn set_sink(&self, sink: Arc<dyn crate::EventSink>) {
        *self.inner.sink.write().expect("sink lock poisoned") = Some(sink);
    }

    /// Removes the event sink.
    pub fn clear_sink(&self) {
        *self.inner.sink.write().expect("sink lock poisoned") = None;
    }

    pub(crate) fn sink(&self) -> Option<Arc<dyn crate::EventSink>> {
        self.inner.sink.read().expect("sink lock poisoned").clone()
    }

    /// Emits a structured event directly to the sink, if one is set and
    /// the registry is enabled.
    pub fn emit(&self, name: &str, fields: &[(String, f64)]) {
        if !self.is_enabled() {
            return;
        }
        if let Some(sink) = self.sink() {
            sink.event(name, fields);
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.is_enabled())
            .field("instruments", &self.len())
            .finish()
    }
}

fn kind_of(instrument: &Instrument) -> &'static str {
    match instrument {
        Instrument::Counter(_) => "a counter",
        Instrument::Gauge(_) => "a gauge",
        Instrument::Histogram(_) => "a histogram",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_clones_share_the_cell() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        c.store(42);
        assert_eq!(c2.get(), 42);
    }

    #[test]
    fn disabled_counter_records_nothing_but_store_wins() {
        let c = Counter::disabled();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        // Stores are ungated: snapshot restore must work regardless.
        c.store(7);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn gauge_set_add_get() {
        let g = Gauge::new();
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
        let off = Gauge::disabled();
        off.set(9.0);
        assert_eq!(off.get(), 0.0);
    }

    #[test]
    fn histogram_exact_count_and_sum() {
        let h = Histogram::new();
        for v in [0.001, 0.004, 0.004, 1.5, 300.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 301.509).abs() < 1e-9);
        assert!((h.mean() - 301.509 / 5.0).abs() < 1e-9);
        let buckets = h.bucket_counts();
        assert_eq!(buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn histogram_bucket_bounds_bracket_the_value() {
        for v in [1e-9, 0.001, 0.5, 1.0, 2.0, 3.7, 1024.0, 5e8] {
            let i = Histogram::bucket_index(v);
            assert!(
                v < Histogram::bucket_le(i),
                "v={v} le={}",
                Histogram::bucket_le(i)
            );
            if i > 0 {
                assert!(
                    v >= Histogram::bucket_le(i - 1),
                    "v={v} prev_le={}",
                    Histogram::bucket_le(i - 1)
                );
            }
        }
        // Out-of-range and pathological inputs stay in-bounds.
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(-3.0), 0);
        assert_eq!(Histogram::bucket_index(f64::NAN), 0);
        assert_eq!(Histogram::bucket_index(1e300), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_le(HISTOGRAM_BUCKETS - 1), f64::INFINITY);
    }

    #[test]
    fn histogram_quantiles_interpolate_within_the_bucket() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.observe(0.003); // -> bucket [2^-9, 2^-8) = [0.001953125, 0.00390625)
        }
        for _ in 0..10 {
            h.observe(3.0); // -> bucket [2, 4)
        }
        // rank 50 of 90 in [0.001953125, 0.00390625): lower + width·(50/90).
        let p50 = 0.001953125 + 0.001953125 * (50.0 / 90.0);
        assert!((h.quantile(0.5) - p50).abs() < 1e-15, "{}", h.quantile(0.5));
        // rank 90 exhausts the first bucket exactly: estimate is its le.
        assert_eq!(h.quantile(0.9), 0.00390625);
        // rank 99 is the 9th of 10 observations in [2, 4): 2 + 2·0.9.
        assert!(
            (h.quantile(0.99) - 3.8).abs() < 1e-12,
            "{}",
            h.quantile(0.99)
        );
        assert_eq!(Histogram::new().quantile(0.5), 0.0);
    }

    #[test]
    fn histogram_quantile_handles_edge_buckets_and_stays_monotone() {
        // Bucket 0 interpolates down towards zero.
        let tiny = Histogram::new();
        tiny.observe(1e-12);
        let q = tiny.quantile(0.5);
        assert!(q > 0.0 && q <= Histogram::bucket_le(0), "q={q}");
        // The unbounded top bucket reports its (finite) lower bound.
        let huge = Histogram::new();
        huge.observe(1e300);
        assert_eq!(
            huge.quantile(0.99),
            Histogram::bucket_le(HISTOGRAM_BUCKETS - 2)
        );
        // Quantile estimates are monotone in q.
        let h = Histogram::new();
        for i in 1..=1000u32 {
            h.observe(f64::from(i) * 0.001);
        }
        let mut prev = 0.0;
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let est = h.quantile(q);
            assert!(est >= prev, "quantile({q})={est} < {prev}");
            prev = est;
        }
        // ... and the p50 estimate lands within the true value's bucket.
        let p50 = h.quantile(0.5);
        assert!((0.25..=1.0).contains(&p50), "p50={p50}");
    }

    #[test]
    fn registry_get_or_create_returns_the_same_cell() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn registry_kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x_total");
        r.gauge("x_total");
    }

    #[test]
    fn disabled_registry_instruments_record_nothing_until_enabled() {
        let r = Registry::disabled();
        let c = r.counter("c_total");
        let h = r.histogram("h_seconds");
        c.inc();
        h.observe(1.0);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        r.set_enabled(true);
        c.inc();
        h.observe(1.0);
        assert_eq!(c.get(), 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn adopt_preserves_existing_values_and_flags() {
        let standalone = Counter::new();
        standalone.add(17);
        let r = Registry::disabled();
        r.adopt_counter("svc_total", &standalone);
        // The adopted handle keeps counting despite the registry being
        // disabled: it carries its own always-on flag.
        standalone.inc();
        let via_registry = match r.snapshot().get("svc_total") {
            Some(Instrument::Counter(c)) => c.get(),
            other => panic!("expected adopted counter, got {other:?}"),
        };
        assert_eq!(via_registry, 18);
    }

    #[test]
    fn snapshot_is_sorted_across_shards() {
        let r = Registry::new();
        for name in ["zeta", "alpha", "mid", "beta_total"] {
            r.counter(name);
        }
        let names: Vec<String> = r.snapshot().keys().cloned().collect();
        assert_eq!(names, vec!["alpha", "beta_total", "mid", "zeta"]);
    }
}
