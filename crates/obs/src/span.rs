//! Scoped timers, spans, and structured event sinks.

use crate::{Histogram, Registry};
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A scoped wall-clock timer recording into a [`Histogram`] when stopped
/// or dropped.
///
/// When the histogram is disabled, [`Timer::start`] never calls
/// [`Instant::now`] and the whole start/stop cycle is a couple of atomic
/// loads with no allocation.
#[derive(Debug)]
pub struct Timer {
    hist: Histogram,
    start: Option<Instant>,
}

impl Timer {
    /// Starts timing into `hist`.
    pub fn start(hist: &Histogram) -> Timer {
        Timer {
            hist: hist.clone(),
            start: hist.is_enabled().then(Instant::now),
        }
    }

    /// Stops the timer, records the elapsed seconds, and returns them
    /// (`0.0` when the histogram was disabled at start).
    pub fn stop(mut self) -> f64 {
        self.finish()
    }

    /// Abandons the timer without recording anything.
    pub fn discard(mut self) {
        self.start = None;
    }

    fn finish(&mut self) -> f64 {
        match self.start.take() {
            Some(t0) => {
                let dt = t0.elapsed().as_secs_f64();
                self.hist.observe(dt);
                dt
            }
            None => 0.0,
        }
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        self.finish();
    }
}

/// One structured trace event: a name plus `(key, value)` fields.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event (span) name.
    pub name: String,
    /// Ordered fields; spans append `duration_seconds` last.
    pub fields: Vec<(String, f64)>,
}

impl TraceEvent {
    /// The value of the first field named `key`, if any.
    pub fn field(&self, key: &str) -> Option<f64> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// Receiver for completed spans and ad-hoc events.
pub trait EventSink: Send + Sync {
    /// Called once per event; `fields` are `(key, value)` pairs.
    fn event(&self, name: &str, fields: &[(String, f64)]);
}

/// An in-memory sink for test assertions.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A copy of every event captured so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("sink lock poisoned").clone()
    }

    /// Drains and returns the captured events.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("sink lock poisoned"))
    }
}

impl EventSink for MemorySink {
    fn event(&self, name: &str, fields: &[(String, f64)]) {
        self.events
            .lock()
            .expect("sink lock poisoned")
            .push(TraceEvent {
                name: name.to_owned(),
                fields: fields.to_vec(),
            });
    }
}

impl fmt::Debug for MemorySink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemorySink")
            .field("events", &self.events().len())
            .finish()
    }
}

/// A sink printing one `trace:` line per event to stderr — the `--trace`
/// CLI output. Stdout is never touched, preserving golden fixtures.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSink;

impl EventSink for StderrSink {
    fn event(&self, name: &str, fields: &[(String, f64)]) {
        let mut line = format!("trace: {name}");
        for (k, v) in fields {
            line.push_str(&format!(" {k}={v}"));
        }
        line.push('\n');
        // A broken stderr pipe is not worth panicking over.
        let _ = std::io::stderr().write_all(line.as_bytes());
    }
}

/// A scoped span: times a region into the histogram
/// `span_<name>_seconds` and, on drop, emits a [`TraceEvent`] (fields +
/// `duration_seconds`) to the registry's sink if one is installed.
///
/// Spans are for coarse regions (a CLI timestep, a planner run); unlike
/// [`Timer`] they allocate for the name/fields, so keep them off
/// per-observation paths.
#[derive(Debug)]
pub struct Span {
    name: String,
    hist: Option<Histogram>,
    sink: Option<Arc<dyn EventSink>>,
    fields: Vec<(String, f64)>,
    start: Option<Instant>,
}

impl fmt::Debug for dyn EventSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("dyn EventSink")
    }
}

impl Span {
    /// An inert span that records nothing.
    fn noop() -> Span {
        Span {
            name: String::new(),
            hist: None,
            sink: None,
            fields: Vec::new(),
            start: None,
        }
    }

    /// Attaches a `(key, value)` field, forwarded to the sink on drop.
    pub fn annotate(&mut self, key: &str, value: f64) {
        if self.start.is_some() {
            self.fields.push((key.to_owned(), value));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(t0) = self.start.take() else {
            return;
        };
        let dt = t0.elapsed().as_secs_f64();
        if let Some(hist) = &self.hist {
            hist.observe(dt);
        }
        if let Some(sink) = &self.sink {
            self.fields.push(("duration_seconds".to_owned(), dt));
            sink.event(&self.name, &self.fields);
        }
    }
}

impl Registry {
    /// Opens a span named `name`. Disabled registries return an inert
    /// span without touching the clock.
    pub fn span(&self, name: &str) -> Span {
        if !self.is_enabled() {
            return Span::noop();
        }
        Span {
            hist: Some(self.histogram(&format!("span_{name}_seconds"))),
            sink: self.sink(),
            name: name.to_owned(),
            fields: Vec::new(),
            start: Some(Instant::now()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_records_monotone_nonnegative_durations() {
        let h = Histogram::new();
        let t1 = Timer::start(&h);
        let d1 = t1.stop();
        let t2 = Timer::start(&h);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let d2 = t2.stop();
        assert!(d1 >= 0.0);
        assert!(d2 >= 0.002, "slept 2ms but recorded {d2}");
        assert_eq!(h.count(), 2);
        assert!((h.sum() - (d1 + d2)).abs() < 1e-12);
    }

    #[test]
    fn timer_on_disabled_histogram_is_inert_and_returns_zero() {
        let h = Histogram::disabled();
        let t = Timer::start(&h);
        assert_eq!(t.stop(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn timer_drop_records_and_discard_does_not() {
        let h = Histogram::new();
        {
            let _t = Timer::start(&h);
        }
        assert_eq!(h.count(), 1);
        Timer::start(&h).discard();
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn span_emits_event_with_duration_and_annotations() {
        let registry = Registry::new();
        let sink = Arc::new(MemorySink::new());
        registry.set_sink(sink.clone());
        {
            let mut span = registry.span("stream_step");
            span.annotate("users", 10.0);
        }
        let events = sink.take();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "stream_step");
        assert_eq!(events[0].field("users"), Some(10.0));
        assert!(events[0].field("duration_seconds").unwrap() >= 0.0);
        assert_eq!(registry.histogram("span_stream_step_seconds").count(), 1);
    }

    #[test]
    fn span_on_disabled_registry_is_inert() {
        let registry = Registry::disabled();
        let sink = Arc::new(MemorySink::new());
        registry.set_sink(sink.clone());
        {
            let mut span = registry.span("quiet");
            span.annotate("k", 1.0);
        }
        assert!(sink.events().is_empty());
        assert!(registry.is_empty(), "no span histogram should be created");
    }

    #[test]
    fn registry_emit_respects_enabled_flag() {
        let registry = Registry::new();
        let sink = Arc::new(MemorySink::new());
        registry.set_sink(sink.clone());
        registry.emit("tick", &[("t".to_owned(), 3.0)]);
        registry.set_enabled(false);
        registry.emit("tick", &[("t".to_owned(), 4.0)]);
        let events = sink.take();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].field("t"), Some(3.0));
    }
}
