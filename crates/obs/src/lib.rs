//! `priste-obs` — dependency-free observability for the PriSTE stack.
//!
//! The workspace's north star is a long-running privacy service, and a
//! long-running service needs operational signals: throughput, suppression
//! rate, per-release ε spend, WAL fsync latency, recovery time. This crate
//! provides the substrate without pulling a single external dependency:
//!
//! * [`Registry`] — a sharded, lock-light metric registry handing out
//!   cheap clonable handles: [`Counter`] (atomic `u64`), [`Gauge`]
//!   (atomic `f64` bits), and [`Histogram`] (64 log₂-bucketed atomic
//!   buckets with exact count/sum and p50/p90/p99 estimation).
//! * [`Timer`] and [`Span`] — scoped timers that record wall time into a
//!   histogram on drop; spans additionally emit a structured event to an
//!   optional [`EventSink`] ([`MemorySink`] for test assertions,
//!   [`StderrSink`] for `--trace` CLI output).
//! * Exporters — [`Registry::render_prometheus`] (text exposition format,
//!   ready for a future `priste-serve` `/metrics` endpoint) and
//!   [`Registry::render_json`] (machine-readable snapshot for
//!   `stream --metrics-json` and the bench regression gate).
//! * [`json`] — a minimal recursive-descent JSON value parser so tests and
//!   `bench_export --compare` can read the artifacts back without serde.
//!
//! # Cost model
//!
//! Handles are designed so a *disabled* instrument costs a few atomic
//! loads and performs **no allocation** on the record path: `inc`,
//! `observe`, and `Timer::start` check a shared [`AtomicBool`] first and
//! return immediately. `Instant::now()` is never called while disabled.
//! Handle *creation* (name lookup) may allocate — create handles once and
//! keep them, as every instrumented PriSTE layer does.
//!
//! ```
//! use priste_obs::{Registry, Timer};
//!
//! let registry = Registry::new();
//! let releases = registry.counter("guard_releases_total");
//! let latency = registry.histogram("online_ingest_batch_seconds");
//!
//! releases.inc();
//! let timer = Timer::start(&latency);
//! // ... do the work being measured ...
//! timer.stop();
//!
//! assert_eq!(releases.get(), 1);
//! assert_eq!(latency.count(), 1);
//! let text = registry.render_prometheus();
//! assert!(text.contains("guard_releases_total 1"));
//! ```
//!
//! [`AtomicBool`]: std::sync::atomic::AtomicBool

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod export;
pub mod json;
mod metrics;
mod span;

pub use export::JSON_SCHEMA;
pub use metrics::{Counter, Gauge, Histogram, Registry, HISTOGRAM_BUCKETS};
pub use span::{EventSink, MemorySink, Span, StderrSink, Timer, TraceEvent};
