//! A minimal recursive-descent JSON parser.
//!
//! The workspace hand-rolls its JSON artifacts (`BENCH_*.json`, the
//! metrics snapshots) rather than depending on serde; this module is the
//! matching reader so `bench_export --compare` and the e2e tests can load
//! them back. It accepts standard JSON (RFC 8259) with two deliberate
//! simplifications: numbers parse through [`f64`] (ints above 2⁵³ lose
//! precision) and `\uXXXX` escapes outside the BMP must be paired
//! surrogates.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys are unique (last write wins) and iterate sorted.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if this is an object and the key exists.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Element `i` of an array.
    pub fn at(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `u64`, if numeric, non-negative, and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
/// A human-readable message with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {pos}",
            char::from(want),
            pos = *pos
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let slice = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    slice
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{slice}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let first = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: must be followed by \uXXXX low.
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let low = parse_hex4(bytes, pos)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("invalid low surrogate".to_owned());
                                }
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                return Err("lone surrogate escape".to_owned());
                            }
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code).ok_or_else(|| "invalid \\u escape".to_owned())?,
                        );
                        continue; // parse_hex4 already advanced past the digits
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).expect("input was a str");
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let end = *pos + 4;
    if end > bytes.len() {
        return Err("truncated \\u escape".to_owned());
    }
    let digits =
        std::str::from_utf8(&bytes[*pos..end]).map_err(|_| "non-ASCII \\u escape".to_owned())?;
    let code = u32::from_str_radix(digits, 16).map_err(|_| "non-hex \\u escape".to_owned())?;
    *pos = end;
    Ok(code)
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -3.5e2 ").unwrap(), Json::Num(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".to_owned()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, 2, {"b": false}], "c": {"d": null}}"#).unwrap();
        assert_eq!(
            doc.get("a").and_then(|a| a.at(1)).and_then(Json::as_f64),
            Some(2.0)
        );
        assert_eq!(
            doc.get("a")
                .and_then(|a| a.at(2))
                .and_then(|o| o.get("b"))
                .and_then(Json::as_bool),
            Some(false)
        );
        assert!(doc.get("c").and_then(|c| c.get("d")).unwrap().is_null());
    }

    #[test]
    fn parses_escapes_including_quotes_in_metric_names() {
        let doc = parse(r#"{"online_shard_panics_total{shard=\"3\"}": 2}"#).unwrap();
        assert_eq!(
            doc.get("online_shard_panics_total{shard=\"3\"}")
                .and_then(Json::as_u64),
            Some(2)
        );
        let s = parse(r#""a\n\tA😀""#).unwrap();
        assert_eq!(s.as_str(), Some("a\n\tA😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "1 2", "{'a': 1}", "tru"] {
            assert!(parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn as_u64_guards_range_and_integrality() {
        assert_eq!(parse("18").unwrap().as_u64(), Some(18));
        assert_eq!(parse("18.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
