//! Concurrency and property tests for the metrics registry: concurrent
//! increments/observes lose nothing, and a histogram's exact count always
//! equals the sum of its bucket counts.

use priste_obs::{Histogram, Registry, HISTOGRAM_BUCKETS};
use proptest::prelude::*;
use std::sync::Arc;

#[test]
fn concurrent_counter_increments_lose_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let registry = Registry::new();
    let counter = registry.counter("stress_total");
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let handle = counter.clone();
            scope.spawn(move || {
                for _ in 0..PER_THREAD {
                    handle.inc();
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
}

#[test]
fn concurrent_histogram_observes_keep_count_sum_and_buckets_consistent() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 5_000;
    let registry = Registry::new();
    let hist = registry.histogram("stress_seconds");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let handle = hist.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic spread across several buckets.
                    let v = ((t * PER_THREAD + i) % 1_000) as f64 * 1e-4;
                    handle.observe(v);
                }
            });
        }
    });
    let expected = (THREADS * PER_THREAD) as u64;
    assert_eq!(hist.count(), expected);
    assert_eq!(hist.bucket_counts().iter().sum::<u64>(), expected);
    // The sum is a CAS-loop f64 accumulation: no observation may be lost,
    // so it must equal the sequential sum of the same multiset (same
    // values, addition reordering only).
    let sequential: f64 = (0..THREADS)
        .flat_map(|t| (0..PER_THREAD).map(move |i| ((t * PER_THREAD + i) % 1_000) as f64 * 1e-4))
        .sum();
    assert!(
        (hist.sum() - sequential).abs() < 1e-6 * sequential.max(1.0),
        "sum {} vs sequential {}",
        hist.sum(),
        sequential
    );
}

#[test]
fn concurrent_get_or_create_yields_one_cell_per_name() {
    let registry = Registry::new();
    let registry = Arc::new(registry);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let r = Arc::clone(&registry);
            scope.spawn(move || {
                for i in 0..64 {
                    r.counter(&format!("racy_{i}_total")).inc();
                }
            });
        }
    });
    assert_eq!(registry.len(), 64);
    for i in 0..64 {
        assert_eq!(registry.counter(&format!("racy_{i}_total")).get(), 8);
    }
}

proptest! {
    #[test]
    fn histogram_count_equals_bucket_sum(values in proptest::collection::vec(-1e6f64..1e6, 0..200)) {
        let hist = Histogram::new();
        for v in &values {
            hist.observe(*v);
        }
        let buckets = hist.bucket_counts();
        prop_assert_eq!(hist.count(), values.len() as u64);
        prop_assert_eq!(buckets.iter().sum::<u64>(), values.len() as u64);
        // Every value landed in the bucket its bound bracket says.
        for v in &values {
            let i = Histogram::bucket_index(*v);
            prop_assert!(i < HISTOGRAM_BUCKETS);
            prop_assert!(buckets[i] > 0);
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q(values in proptest::collection::vec(1e-9f64..1e6, 1..200)) {
        let hist = Histogram::new();
        for v in &values {
            hist.observe(*v);
        }
        let (p50, p90, p99) = (hist.quantile(0.5), hist.quantile(0.9), hist.quantile(0.99));
        prop_assert!(p50 <= p90 && p90 <= p99, "p50={} p90={} p99={}", p50, p90, p99);
        // Quantile bounds are real bucket upper bounds: at least one
        // observation is <= the p50 bound.
        prop_assert!(values.iter().any(|v| *v <= p50));
    }
}
