//! Disabled instruments must not allocate on the record path — the
//! tentpole's "near-zero-cost handle" contract. A counting global
//! allocator wraps the system one; the assertion is exact, so any
//! accidental `format!`/`Vec` on a disabled path fails loudly.
//!
//! This lives in its own integration-test binary: the allocator is
//! process-global, and the crate-level `forbid(unsafe_code)` applies to
//! the library, not to this test crate (a `GlobalAlloc` impl is
//! necessarily `unsafe`).

use priste_obs::{Counter, Registry, Timer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn disabled_handles_do_not_allocate_on_the_record_path() {
    // Handle creation may allocate — do it all up front.
    let registry = Registry::disabled();
    let counter = registry.counter("c_total");
    let standalone = Counter::disabled();
    let gauge = registry.gauge("g");
    let hist = registry.histogram("h_seconds");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..1_000 {
        counter.inc();
        counter.add(3);
        standalone.inc();
        gauge.set(1.5);
        gauge.add(-0.5);
        hist.observe(0.01);
        let timer = Timer::start(&hist);
        drop(timer);
        let span = registry.span("quiet");
        drop(span);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled record path allocated {} times",
        after - before
    );

    // Sanity: nothing was recorded either.
    assert_eq!(counter.get(), 0);
    assert_eq!(hist.count(), 0);

    // Phase two (same test: the counter is process-global, so concurrent
    // tests would alias it): the *enabled* counter/histogram record path
    // is allocation-free too.
    let registry = Registry::new();
    let counter = registry.counter("hot_total");
    let hist = registry.histogram("hot_seconds");
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..1_000 {
        counter.inc();
        hist.observe(0.001);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "enabled hot path allocated");
    assert_eq!(counter.get(), 1_000);
}
