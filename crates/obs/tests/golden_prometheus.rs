//! Golden pin of the Prometheus text rendering.
//!
//! The registry is populated with fixed, dyadic values (so bucket bounds
//! and sums are float-exact) using the same metric names the instrumented
//! stack emits; the rendering must stay byte-identical to the committed
//! fixture. Any change to the exposition format is a deliberate,
//! review-visible fixture update.

use priste_obs::Registry;

/// A deterministic registry resembling a small durable enforcing run.
fn deterministic_run() -> Registry {
    let r = Registry::new();
    r.counter("online_observations_total").add(4000);
    r.counter("online_suppressed_total").add(1);
    r.counter("online_shard_panics_total").add(2);
    r.counter("online_shard_panics_total{shard=\"3\"}").add(2);
    r.gauge("online_sessions").set(500.0);
    r.gauge("online_shard_imbalance").set(1.125);
    r.gauge("online_recovery_duration_seconds").set(0.0625);
    r.counter("online_recovery_torn_records_total").add(1);
    r.counter("guard_releases_total").add(3);
    r.counter("guard_suppressions_total").add(1);
    let eps = r.histogram("guard_epsilon_spent");
    eps.observe(0.25); // le 0.5
    eps.observe(0.75); // le 1
    eps.observe(1.0); // le 2
    let depth = r.histogram("guard_backoff_depth");
    depth.observe(1.0); // le 2
    depth.observe(1.0);
    depth.observe(3.0); // le 4
    let wal = r.histogram("durable_wal_append_seconds");
    wal.observe(0.0001220703125); // 2^-13 -> le 2^-12
    wal.observe(0.0001220703125);
    wal.observe(0.0001220703125);
    wal.observe(0.0009765625); // 2^-10 -> le 2^-9
    r.counter("durable_wal_bytes_total").add(4096);
    r
}

#[test]
fn prometheus_rendering_matches_the_committed_golden_fixture() {
    let rendered = deterministic_run().render_prometheus();
    let golden = include_str!("fixtures/metrics_golden.prom");
    assert_eq!(
        rendered, golden,
        "Prometheus text rendering drifted from tests/fixtures/metrics_golden.prom"
    );
}

#[test]
fn json_rendering_of_the_same_run_parses_and_agrees() {
    let r = deterministic_run();
    let doc = priste_obs::json::parse(&r.render_json()).expect("snapshot must parse");
    let counters = doc.get("counters").expect("counters");
    assert_eq!(
        counters
            .get("online_observations_total")
            .and_then(|j| j.as_u64()),
        Some(4000)
    );
    let eps = doc
        .get("histograms")
        .and_then(|h| h.get("guard_epsilon_spent"))
        .expect("guard_epsilon_spent");
    assert_eq!(eps.get("count").and_then(|j| j.as_u64()), Some(3));
    assert_eq!(eps.get("sum").and_then(|j| j.as_f64()), Some(2.0));
}
