use crate::{GeoError, Result};

/// Typed index of a state (grid cell) in the domain `S = {s_1, …, s_m}`.
///
/// Internally 0-based. The paper numbers states from 1; use
/// [`CellId::from_one_based`] / [`CellId::one_based`] at the boundary where
/// paper notation (event DSL strings, experiment configs) meets code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub usize);

impl CellId {
    /// Builds a cell id from the paper's 1-based state number.
    ///
    /// # Panics
    /// Panics if `one_based == 0`.
    pub fn from_one_based(one_based: usize) -> Self {
        assert!(one_based > 0, "1-based cell index must be >= 1");
        CellId(one_based - 1)
    }

    /// The paper's 1-based state number for this cell.
    pub fn one_based(self) -> usize {
        self.0 + 1
    }

    /// Raw 0-based index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for CellId {
    fn from(i: usize) -> Self {
        CellId(i)
    }
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Render in paper notation for logs and experiment output.
        write!(f, "s{}", self.one_based())
    }
}

/// A rectangular grid over a map, defining the finite state domain.
///
/// Cells are numbered row-major: cell `(r, c)` has index `r * cols + c`.
/// Each cell is a `cell_size_km × cell_size_km` square; cell centers provide
/// the geometry for the Planar Laplace mechanism and for the Euclidean
/// distance utility metric (paper §V.A measures utility in km).
#[derive(Debug, Clone, PartialEq)]
pub struct GridMap {
    rows: usize,
    cols: usize,
    cell_size_km: f64,
}

impl GridMap {
    /// Creates a `rows × cols` grid of square cells with side `cell_size_km`.
    ///
    /// # Errors
    /// [`GeoError::EmptyGrid`] if either dimension is zero;
    /// [`GeoError::InvalidDimension`] for a non-positive or non-finite cell
    /// size.
    pub fn new(rows: usize, cols: usize, cell_size_km: f64) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(GeoError::EmptyGrid);
        }
        if !(cell_size_km.is_finite() && cell_size_km > 0.0) {
            return Err(GeoError::InvalidDimension {
                what: "cell size (km)",
                value: cell_size_km,
            });
        }
        Ok(GridMap {
            rows,
            cols,
            cell_size_km,
        })
    }

    /// The paper's default synthetic world: a 20×20 grid (§V.A) with 1 km
    /// cells.
    pub fn paper_synthetic() -> Self {
        GridMap::new(20, 20, 1.0).expect("static dimensions are valid")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Side length of each (square) cell in kilometres.
    pub fn cell_size_km(&self) -> f64 {
        self.cell_size_km
    }

    /// Total number of cells `m = rows × cols`.
    pub fn num_cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Converts a cell id to `(row, col)`.
    ///
    /// # Errors
    /// [`GeoError::CellOutOfRange`] if the id exceeds the domain.
    pub fn to_row_col(&self, cell: CellId) -> Result<(usize, usize)> {
        if cell.0 >= self.num_cells() {
            return Err(GeoError::CellOutOfRange {
                cell: cell.0,
                num_cells: self.num_cells(),
            });
        }
        Ok((cell.0 / self.cols, cell.0 % self.cols))
    }

    /// Converts `(row, col)` to a cell id.
    ///
    /// # Errors
    /// [`GeoError::CellOutOfRange`] if either coordinate is out of bounds.
    pub fn from_row_col(&self, row: usize, col: usize) -> Result<CellId> {
        if row >= self.rows || col >= self.cols {
            return Err(GeoError::CellOutOfRange {
                cell: row * self.cols + col,
                num_cells: self.num_cells(),
            });
        }
        Ok(CellId(row * self.cols + col))
    }

    /// Center of a cell in local planar km coordinates `(x, y)`, with the
    /// grid's north-west corner at the origin, `x` growing eastwards along
    /// columns and `y` growing southwards along rows.
    ///
    /// # Errors
    /// [`GeoError::CellOutOfRange`] if the id exceeds the domain.
    pub fn cell_center_km(&self, cell: CellId) -> Result<(f64, f64)> {
        let (r, c) = self.to_row_col(cell)?;
        Ok((
            (c as f64 + 0.5) * self.cell_size_km,
            (r as f64 + 0.5) * self.cell_size_km,
        ))
    }

    /// Euclidean distance between two cell centers in kilometres — the
    /// utility metric of §V.A.
    ///
    /// # Errors
    /// [`GeoError::CellOutOfRange`] if either id exceeds the domain.
    pub fn distance_km(&self, a: CellId, b: CellId) -> Result<f64> {
        let (ax, ay) = self.cell_center_km(a)?;
        let (bx, by) = self.cell_center_km(b)?;
        Ok(((ax - bx).powi(2) + (ay - by).powi(2)).sqrt())
    }

    /// Maps an arbitrary planar point (km) to the nearest cell, clamping
    /// points outside the grid onto the boundary. Used to discretize
    /// continuous Planar-Laplace samples.
    pub fn nearest_cell(&self, x_km: f64, y_km: f64) -> CellId {
        let col = ((x_km / self.cell_size_km).floor().max(0.0) as usize).min(self.cols - 1);
        let row = ((y_km / self.cell_size_km).floor().max(0.0) as usize).min(self.rows - 1);
        CellId(row * self.cols + col)
    }

    /// Precomputes the full pairwise distance table (km). `O(m²)` memory;
    /// callers cache it when the Planar Laplace emission matrix is rebuilt
    /// per budget-halving step.
    pub fn distance_table(&self) -> Vec<Vec<f64>> {
        let m = self.num_cells();
        let centers: Vec<(f64, f64)> = (0..m)
            .map(|i| self.cell_center_km(CellId(i)).expect("index in range"))
            .collect();
        centers
            .iter()
            .map(|&(ax, ay)| {
                centers
                    .iter()
                    .map(|&(bx, by)| ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt())
                    .collect()
            })
            .collect()
    }

    /// Iterator over all cell ids in index order.
    pub fn cells(&self) -> impl Iterator<Item = CellId> {
        (0..self.num_cells()).map(CellId)
    }

    /// The 4-neighbourhood (N/S/E/W) of a cell, clipped at grid borders.
    ///
    /// # Errors
    /// [`GeoError::CellOutOfRange`] if the id exceeds the domain.
    pub fn neighbors4(&self, cell: CellId) -> Result<Vec<CellId>> {
        let (r, c) = self.to_row_col(cell)?;
        let mut out = Vec::with_capacity(4);
        if r > 0 {
            out.push(CellId((r - 1) * self.cols + c));
        }
        if r + 1 < self.rows {
            out.push(CellId((r + 1) * self.cols + c));
        }
        if c > 0 {
            out.push(CellId(r * self.cols + c - 1));
        }
        if c + 1 < self.cols {
            out.push(CellId(r * self.cols + c + 1));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_based_roundtrip() {
        let c = CellId::from_one_based(1);
        assert_eq!(c.index(), 0);
        assert_eq!(c.one_based(), 1);
        assert_eq!(c.to_string(), "s1");
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn zero_one_based_panics() {
        let _ = CellId::from_one_based(0);
    }

    #[test]
    fn grid_construction_validates() {
        assert!(matches!(GridMap::new(0, 5, 1.0), Err(GeoError::EmptyGrid)));
        assert!(matches!(GridMap::new(5, 0, 1.0), Err(GeoError::EmptyGrid)));
        assert!(matches!(
            GridMap::new(2, 2, 0.0),
            Err(GeoError::InvalidDimension { .. })
        ));
        assert!(matches!(
            GridMap::new(2, 2, f64::NAN),
            Err(GeoError::InvalidDimension { .. })
        ));
    }

    #[test]
    fn paper_synthetic_is_20_by_20() {
        let g = GridMap::paper_synthetic();
        assert_eq!(g.num_cells(), 400);
        assert_eq!(g.rows(), 20);
    }

    #[test]
    fn row_col_roundtrip() {
        let g = GridMap::new(3, 4, 1.0).unwrap();
        for cell in g.cells() {
            let (r, c) = g.to_row_col(cell).unwrap();
            assert_eq!(g.from_row_col(r, c).unwrap(), cell);
        }
        assert!(g.to_row_col(CellId(12)).is_err());
        assert!(g.from_row_col(3, 0).is_err());
        assert!(g.from_row_col(0, 4).is_err());
    }

    #[test]
    fn centers_and_distances() {
        let g = GridMap::new(2, 2, 2.0).unwrap();
        assert_eq!(g.cell_center_km(CellId(0)).unwrap(), (1.0, 1.0));
        assert_eq!(g.cell_center_km(CellId(3)).unwrap(), (3.0, 3.0));
        let d = g.distance_km(CellId(0), CellId(3)).unwrap();
        assert!((d - 8.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(g.distance_km(CellId(1), CellId(1)).unwrap(), 0.0);
    }

    #[test]
    fn nearest_cell_clamps_to_grid() {
        let g = GridMap::new(2, 2, 1.0).unwrap();
        assert_eq!(g.nearest_cell(0.5, 0.5), CellId(0));
        assert_eq!(g.nearest_cell(1.5, 0.5), CellId(1));
        assert_eq!(g.nearest_cell(-10.0, -10.0), CellId(0));
        assert_eq!(g.nearest_cell(100.0, 100.0), CellId(3));
    }

    #[test]
    fn nearest_cell_inverts_center() {
        let g = GridMap::new(5, 7, 0.5).unwrap();
        for cell in g.cells() {
            let (x, y) = g.cell_center_km(cell).unwrap();
            assert_eq!(g.nearest_cell(x, y), cell);
        }
    }

    #[test]
    fn distance_table_is_symmetric_with_zero_diagonal() {
        let g = GridMap::new(3, 3, 1.0).unwrap();
        let t = g.distance_table();
        for (i, row) in t.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, &v) in row.iter().enumerate() {
                assert!((v - t[j][i]).abs() < 1e-15);
            }
        }
        // Known distance: cells 0 and 8 of a 3x3 unit grid are 2√2 apart.
        assert!((t[0][8] - 8.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn neighbors_clip_at_borders() {
        let g = GridMap::new(3, 3, 1.0).unwrap();
        let corner = g.neighbors4(CellId(0)).unwrap();
        assert_eq!(corner.len(), 2);
        let center = g.neighbors4(CellId(4)).unwrap();
        assert_eq!(center.len(), 4);
        let edge = g.neighbors4(CellId(1)).unwrap();
        assert_eq!(edge.len(), 3);
    }
}
