//! Spatial substrate for PriSTE.
//!
//! The paper models space as a finite domain `S = {s_1, …, s_m}` of *states*
//! (grid cells over a map). This crate provides:
//!
//! * [`CellId`] — a typed index into the state domain (0-based internally,
//!   with explicit 1-based conversions matching the paper's `s_1 …` naming).
//! * [`GridMap`] — a rectangular grid with physical cell size, cell-center
//!   geometry and Euclidean distances in kilometres (the utility metric of
//!   §V.A).
//! * [`Region`] — a set of cells backed by a bitset, convertible to the
//!   paper's indicator vector `s ∈ {0,1}^m` (Definition II.2).
//! * [`GpsPoint`] / geodesy helpers — haversine distances and the
//!   equirectangular projection used to discretize raw GPS trajectories
//!   (Geolife) onto a grid.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod grid;
mod latlon;
mod region;

pub use error::GeoError;
pub use grid::{CellId, GridMap};
pub use latlon::{haversine_km, GeoBounds, GpsPoint};
pub use region::Region;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, GeoError>;
