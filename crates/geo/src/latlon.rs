//! GPS coordinates and the projection used to discretize raw trajectories
//! (e.g. Geolife `.plt` records) onto a [`GridMap`](crate::GridMap).

use crate::{CellId, GeoError, GridMap, Result};

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A timestamped GPS fix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsPoint {
    /// Latitude in degrees, `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, `[-180, 180]`.
    pub lon: f64,
    /// Seconds since an arbitrary epoch (dataset-relative).
    pub timestamp_s: f64,
}

impl GpsPoint {
    /// Creates a validated GPS point.
    ///
    /// # Errors
    /// [`GeoError::InvalidCoordinate`] for out-of-range or non-finite
    /// coordinates.
    pub fn new(lat: f64, lon: f64, timestamp_s: f64) -> Result<Self> {
        if !(lat.is_finite()
            && lon.is_finite()
            && (-90.0..=90.0).contains(&lat)
            && (-180.0..=180.0).contains(&lon))
        {
            return Err(GeoError::InvalidCoordinate { lat, lon });
        }
        Ok(GpsPoint {
            lat,
            lon,
            timestamp_s,
        })
    }
}

/// Great-circle (haversine) distance between two GPS fixes in kilometres.
pub fn haversine_km(a: &GpsPoint, b: &GpsPoint) -> f64 {
    let (la1, lo1) = (a.lat.to_radians(), a.lon.to_radians());
    let (la2, lo2) = (b.lat.to_radians(), b.lon.to_radians());
    let dlat = la2 - la1;
    let dlon = lo2 - lo1;
    let h = (dlat / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

/// A geographic bounding box paired with a grid, providing the
/// equirectangular projection `(lat, lon) → (x_km, y_km) → cell`.
///
/// The projection treats the box as locally flat — accurate to well under a
/// cell width for metro-scale areas like the Geolife Beijing extent.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoBounds {
    /// Northernmost latitude (top edge, y = 0).
    pub north: f64,
    /// Southernmost latitude.
    pub south: f64,
    /// Westernmost longitude (left edge, x = 0).
    pub west: f64,
    /// Easternmost longitude.
    pub east: f64,
}

impl GeoBounds {
    /// Creates a validated bounding box.
    ///
    /// # Errors
    /// [`GeoError::InvalidCoordinate`] if the box is degenerate or inverted.
    pub fn new(north: f64, south: f64, west: f64, east: f64) -> Result<Self> {
        let ok = north.is_finite()
            && south.is_finite()
            && west.is_finite()
            && east.is_finite()
            && north > south
            && east > west
            && (-90.0..=90.0).contains(&north)
            && (-90.0..=90.0).contains(&south)
            && (-180.0..=180.0).contains(&west)
            && (-180.0..=180.0).contains(&east);
        if !ok {
            return Err(GeoError::InvalidCoordinate {
                lat: north,
                lon: west,
            });
        }
        Ok(GeoBounds {
            north,
            south,
            west,
            east,
        })
    }

    /// A bounding box covering urban Beijing — the region where the bulk of
    /// Geolife activity concentrates (Zheng et al., IEEE Data Eng. Bull. '10).
    pub fn beijing() -> Self {
        GeoBounds::new(40.1, 39.7, 116.1, 116.7).expect("static bounds are valid")
    }

    /// Physical extent of the box as `(width_km, height_km)` under the
    /// equirectangular approximation at the box's mid-latitude.
    pub fn extent_km(&self) -> (f64, f64) {
        let mid_lat = 0.5 * (self.north + self.south);
        let height = (self.north - self.south).to_radians() * EARTH_RADIUS_KM;
        let width =
            (self.east - self.west).to_radians() * EARTH_RADIUS_KM * mid_lat.to_radians().cos();
        (width, height)
    }

    /// Projects a GPS point into local km coordinates with the north-west
    /// corner at the origin (x east, y south) — the same frame as
    /// [`GridMap::cell_center_km`].
    pub fn project_km(&self, p: &GpsPoint) -> (f64, f64) {
        let (width, height) = self.extent_km();
        let fx = (p.lon - self.west) / (self.east - self.west);
        let fy = (self.north - p.lat) / (self.north - self.south);
        (fx * width, fy * height)
    }

    /// Maps a GPS point to the grid cell containing it, or `None` for points
    /// outside the box (the Geolife pipeline drops out-of-box fixes, which
    /// are sparse travel segments far from Beijing).
    pub fn to_cell(&self, p: &GpsPoint, grid: &GridMap) -> Option<CellId> {
        if p.lat > self.north || p.lat < self.south || p.lon < self.west || p.lon > self.east {
            return None;
        }
        let (x, y) = self.project_km(p);
        // Rescale from physical extent to the grid's own extent so any grid
        // granularity can tile the box.
        let (width, height) = self.extent_km();
        let gx = x / width * (grid.cols() as f64) * grid.cell_size_km();
        let gy = y / height * (grid.rows() as f64) * grid.cell_size_km();
        Some(grid.nearest_cell(gx, gy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gps_point_validation() {
        assert!(GpsPoint::new(39.9, 116.4, 0.0).is_ok());
        assert!(GpsPoint::new(91.0, 0.0, 0.0).is_err());
        assert!(GpsPoint::new(0.0, 181.0, 0.0).is_err());
        assert!(GpsPoint::new(f64::NAN, 0.0, 0.0).is_err());
    }

    #[test]
    fn haversine_known_distance() {
        // Beijing to Shanghai ≈ 1067 km.
        let beijing = GpsPoint::new(39.9042, 116.4074, 0.0).unwrap();
        let shanghai = GpsPoint::new(31.2304, 121.4737, 0.0).unwrap();
        let d = haversine_km(&beijing, &shanghai);
        assert!((d - 1067.0).abs() < 10.0, "got {d}");
    }

    #[test]
    fn haversine_zero_for_same_point() {
        let p = GpsPoint::new(40.0, 116.0, 0.0).unwrap();
        assert_eq!(haversine_km(&p, &p), 0.0);
    }

    #[test]
    fn bounds_validation() {
        assert!(GeoBounds::new(40.0, 41.0, 116.0, 117.0).is_err()); // inverted lat
        assert!(GeoBounds::new(41.0, 40.0, 117.0, 116.0).is_err()); // inverted lon
        assert!(GeoBounds::new(41.0, 40.0, 116.0, 117.0).is_ok());
    }

    #[test]
    fn beijing_extent_is_metro_scale() {
        let b = GeoBounds::beijing();
        let (w, h) = b.extent_km();
        assert!((30.0..70.0).contains(&w), "width {w}");
        assert!((30.0..60.0).contains(&h), "height {h}");
    }

    #[test]
    fn projection_corners() {
        let b = GeoBounds::beijing();
        let nw = GpsPoint::new(b.north, b.west, 0.0).unwrap();
        let (x, y) = b.project_km(&nw);
        assert!(x.abs() < 1e-9 && y.abs() < 1e-9);
        let se = GpsPoint::new(b.south, b.east, 0.0).unwrap();
        let (x, y) = b.project_km(&se);
        let (w, h) = b.extent_km();
        assert!((x - w).abs() < 1e-9 && (y - h).abs() < 1e-9);
    }

    #[test]
    fn to_cell_covers_grid_and_drops_outside() {
        let b = GeoBounds::beijing();
        let grid = GridMap::new(20, 20, 1.0).unwrap();
        let nw = GpsPoint::new(b.north - 1e-6, b.west + 1e-6, 0.0).unwrap();
        assert_eq!(b.to_cell(&nw, &grid), Some(CellId(0)));
        let se = GpsPoint::new(b.south + 1e-6, b.east - 1e-6, 0.0).unwrap();
        assert_eq!(b.to_cell(&se, &grid), Some(CellId(399)));
        let outside = GpsPoint::new(50.0, 116.4, 0.0).unwrap();
        assert_eq!(b.to_cell(&outside, &grid), None);
    }

    #[test]
    fn to_cell_is_monotone_in_lon() {
        let b = GeoBounds::beijing();
        let grid = GridMap::new(10, 10, 1.0).unwrap();
        let mid_lat = 0.5 * (b.north + b.south);
        let mut last_col = 0usize;
        for k in 0..10 {
            let lon = b.west + (b.east - b.west) * (k as f64 + 0.5) / 10.0;
            let p = GpsPoint::new(mid_lat, lon, 0.0).unwrap();
            let cell = b.to_cell(&p, &grid).unwrap();
            let col = cell.index() % 10;
            assert!(col >= last_col);
            last_col = col;
        }
        assert_eq!(last_col, 9);
    }
}
