use std::fmt;

/// Errors produced by spatial constructions and lookups.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GeoError {
    /// A cell index exceeded the state-domain size.
    CellOutOfRange {
        /// Offending 0-based cell index.
        cell: usize,
        /// Number of cells in the domain.
        num_cells: usize,
    },
    /// A grid was requested with zero rows or columns.
    EmptyGrid,
    /// A cell size or physical dimension was non-positive or non-finite.
    InvalidDimension {
        /// Name of the offending parameter.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A latitude/longitude pair was outside valid Earth coordinates.
    InvalidCoordinate {
        /// Latitude in degrees.
        lat: f64,
        /// Longitude in degrees.
        lon: f64,
    },
    /// Two objects defined over different state domains were combined.
    DomainMismatch {
        /// Domain size of the left operand.
        left: usize,
        /// Domain size of the right operand.
        right: usize,
    },
    /// A region construction referenced an empty or inverted range.
    InvalidRange {
        /// 1-based inclusive start.
        start: usize,
        /// 1-based inclusive end.
        end: usize,
    },
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::CellOutOfRange { cell, num_cells } => {
                write!(
                    f,
                    "cell index {cell} out of range for domain of {num_cells} cells"
                )
            }
            GeoError::EmptyGrid => write!(f, "grid must have at least one row and one column"),
            GeoError::InvalidDimension { what, value } => {
                write!(f, "invalid {what}: {value} (must be positive and finite)")
            }
            GeoError::InvalidCoordinate { lat, lon } => {
                write!(f, "invalid GPS coordinate ({lat}, {lon})")
            }
            GeoError::DomainMismatch { left, right } => {
                write!(f, "state-domain mismatch: {left} vs {right} cells")
            }
            GeoError::InvalidRange { start, end } => {
                write!(f, "invalid 1-based cell range {start}:{end}")
            }
        }
    }
}

impl std::error::Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_fields() {
        let e = GeoError::CellOutOfRange {
            cell: 10,
            num_cells: 9,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('9'));
    }
}
