use crate::{CellId, GeoError, Result};
use priste_linalg::Vector;
use std::sync::OnceLock;

/// A set of cells over a state domain of `m` cells — the paper's region
/// `s ∈ {0,1}^{m×1}` (Definition II.2).
///
/// Backed by a `u64` bitset so membership tests in the hot quantification
/// loops are branch-free word operations. The `{0,1}^m` indicator vectors
/// consumed by the lifted kernels are materialized once on first use and
/// cached ([`Region::masks`]), so steady-state quantification borrows them
/// instead of allocating two fresh `O(m)` vectors per observation.
#[derive(Clone)]
pub struct Region {
    num_cells: usize,
    words: Vec<u64>,
    /// Lazily-built `(indicator, complement_indicator)` pair. Invalidated by
    /// the mutating set operations; equality/cloning semantics ignore it.
    masks: OnceLock<(Vector, Vector)>,
}

/// Matches the previously-derived format while omitting the mask cache:
/// the cache is a performance detail, and downstream scenario fingerprints
/// hash this representation — it must not change as masks materialize.
impl std::fmt::Debug for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Region")
            .field("num_cells", &self.num_cells)
            .field("words", &self.words)
            .finish()
    }
}

impl PartialEq for Region {
    fn eq(&self, other: &Self) -> bool {
        self.num_cells == other.num_cells && self.words == other.words
    }
}

impl Eq for Region {}

impl Region {
    /// Creates an empty region over a domain of `num_cells` states.
    pub fn empty(num_cells: usize) -> Self {
        Region {
            num_cells,
            words: vec![0; num_cells.div_ceil(64)],
            masks: OnceLock::new(),
        }
    }

    /// Creates the full region containing every cell.
    pub fn full(num_cells: usize) -> Self {
        let mut r = Self::empty(num_cells);
        for i in 0..num_cells {
            r.insert(CellId(i)).expect("index in range");
        }
        r
    }

    /// Creates a region from an iterator of cells.
    ///
    /// # Errors
    /// [`GeoError::CellOutOfRange`] if any cell exceeds the domain.
    pub fn from_cells<I: IntoIterator<Item = CellId>>(num_cells: usize, cells: I) -> Result<Self> {
        let mut r = Self::empty(num_cells);
        for c in cells {
            r.insert(c)?;
        }
        Ok(r)
    }

    /// Creates a region from the paper's 1-based inclusive range notation,
    /// e.g. `S = {1:10}` → `from_one_based_range(m, 1, 10)` covers states
    /// `s_1 … s_10`.
    ///
    /// # Errors
    /// [`GeoError::InvalidRange`] for `start == 0` or `start > end`;
    /// [`GeoError::CellOutOfRange`] if `end` exceeds the domain.
    pub fn from_one_based_range(num_cells: usize, start: usize, end: usize) -> Result<Self> {
        if start == 0 || start > end {
            return Err(GeoError::InvalidRange { start, end });
        }
        if end > num_cells {
            return Err(GeoError::CellOutOfRange {
                cell: end - 1,
                num_cells,
            });
        }
        Self::from_cells(num_cells, (start - 1..end).map(CellId))
    }

    /// Number of cells in the underlying domain (the paper's `m`).
    pub fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// Adds a cell to the region.
    ///
    /// # Errors
    /// [`GeoError::CellOutOfRange`] if the cell exceeds the domain.
    pub fn insert(&mut self, cell: CellId) -> Result<()> {
        if cell.0 >= self.num_cells {
            return Err(GeoError::CellOutOfRange {
                cell: cell.0,
                num_cells: self.num_cells,
            });
        }
        self.words[cell.0 / 64] |= 1u64 << (cell.0 % 64);
        self.masks.take();
        Ok(())
    }

    /// Removes a cell from the region.
    ///
    /// # Errors
    /// [`GeoError::CellOutOfRange`] if the cell exceeds the domain.
    pub fn remove(&mut self, cell: CellId) -> Result<()> {
        if cell.0 >= self.num_cells {
            return Err(GeoError::CellOutOfRange {
                cell: cell.0,
                num_cells: self.num_cells,
            });
        }
        self.words[cell.0 / 64] &= !(1u64 << (cell.0 % 64));
        self.masks.take();
        Ok(())
    }

    /// Membership test. Cells outside the domain are reported absent.
    pub fn contains(&self, cell: CellId) -> bool {
        if cell.0 >= self.num_cells {
            return false;
        }
        self.words[cell.0 / 64] & (1u64 << (cell.0 % 64)) != 0
    }

    /// Number of cells in the region.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the region contains no cells.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterator over member cells in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.num_cells)
            .map(CellId)
            .filter(|&c| self.contains(c))
    }

    /// The paper's indicator vector `s ∈ {0,1}^m`: entry `i` is 1 iff cell
    /// `i` belongs to the region. Returns a copy; hot paths should borrow
    /// the cached pair via [`Region::masks`] instead.
    pub fn indicator(&self) -> Vector {
        self.masks().0.clone()
    }

    /// The complementary indicator `1 − s`. Returns a copy; hot paths should
    /// borrow the cached pair via [`Region::masks`] instead.
    pub fn complement_indicator(&self) -> Vector {
        self.masks().1.clone()
    }

    /// Borrowed `(indicator, complement_indicator)` pair, materialized on
    /// first use and cached for the life of the region (or until the next
    /// mutation). The lifted kernels apply one of these masks per
    /// observation per user; borrowing keeps that steady-state path free of
    /// `O(m)` allocations.
    pub fn masks(&self) -> &(Vector, Vector) {
        self.masks.get_or_init(|| {
            let ind: Vector = (0..self.num_cells)
                .map(|i| if self.contains(CellId(i)) { 1.0 } else { 0.0 })
                .collect();
            let comp: Vector = ind.as_slice().iter().map(|&v| 1.0 - v).collect();
            (ind, comp)
        })
    }

    /// Set union.
    ///
    /// # Errors
    /// [`GeoError::DomainMismatch`] if the domains differ.
    pub fn union(&self, other: &Region) -> Result<Region> {
        self.check_domain(other)?;
        Ok(Region {
            num_cells: self.num_cells,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
            masks: OnceLock::new(),
        })
    }

    /// Set intersection.
    ///
    /// # Errors
    /// [`GeoError::DomainMismatch`] if the domains differ.
    pub fn intersection(&self, other: &Region) -> Result<Region> {
        self.check_domain(other)?;
        Ok(Region {
            num_cells: self.num_cells,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            masks: OnceLock::new(),
        })
    }

    /// Set complement within the domain.
    pub fn complement(&self) -> Region {
        let mut out = Region {
            num_cells: self.num_cells,
            words: self.words.iter().map(|w| !w).collect(),
            masks: OnceLock::new(),
        };
        // Clear phantom bits above num_cells.
        let excess = out.words.len() * 64 - self.num_cells;
        if excess > 0 {
            let last = out.words.len() - 1;
            out.words[last] &= u64::MAX >> excess;
        }
        out
    }

    fn check_domain(&self, other: &Region) -> Result<()> {
        if self.num_cells != other.num_cells {
            return Err(GeoError::DomainMismatch {
                left: self.num_cells,
                right: other.num_cells,
            });
        }
        Ok(())
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = Region::empty(100);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let fl = Region::full(100);
        assert_eq!(fl.len(), 100);
        assert!(fl.contains(CellId(99)));
        assert!(!fl.contains(CellId(100)));
    }

    #[test]
    fn one_based_range_matches_paper_notation() {
        // S = {1:10} on a 400-cell grid covers s_1..s_10 = indices 0..=9.
        let r = Region::from_one_based_range(400, 1, 10).unwrap();
        assert_eq!(r.len(), 10);
        assert!(r.contains(CellId(0)));
        assert!(r.contains(CellId(9)));
        assert!(!r.contains(CellId(10)));
    }

    #[test]
    fn range_validation() {
        assert!(matches!(
            Region::from_one_based_range(10, 0, 5),
            Err(GeoError::InvalidRange { .. })
        ));
        assert!(matches!(
            Region::from_one_based_range(10, 5, 3),
            Err(GeoError::InvalidRange { .. })
        ));
        assert!(matches!(
            Region::from_one_based_range(10, 1, 11),
            Err(GeoError::CellOutOfRange { .. })
        ));
    }

    #[test]
    fn insert_remove_contains() {
        let mut r = Region::empty(70); // spans two words
        r.insert(CellId(0)).unwrap();
        r.insert(CellId(65)).unwrap();
        assert!(r.contains(CellId(65)));
        r.remove(CellId(65)).unwrap();
        assert!(!r.contains(CellId(65)));
        assert!(r.insert(CellId(70)).is_err());
        assert!(r.remove(CellId(70)).is_err());
    }

    #[test]
    fn indicator_matches_membership() {
        let r = Region::from_cells(5, [CellId(1), CellId(3)]).unwrap();
        assert_eq!(r.indicator().as_slice(), &[0.0, 1.0, 0.0, 1.0, 0.0]);
        assert_eq!(
            r.complement_indicator().as_slice(),
            &[1.0, 0.0, 1.0, 0.0, 1.0]
        );
    }

    #[test]
    fn cached_masks_track_mutation() {
        let mut r = Region::from_cells(4, [CellId(0)]).unwrap();
        assert_eq!(r.masks().0.as_slice(), &[1.0, 0.0, 0.0, 0.0]);
        // Borrowing twice yields the same cached allocation.
        let first = r.masks() as *const _;
        assert_eq!(first, r.masks() as *const _);
        r.insert(CellId(2)).unwrap();
        assert_eq!(r.masks().0.as_slice(), &[1.0, 0.0, 1.0, 0.0]);
        r.remove(CellId(0)).unwrap();
        assert_eq!(r.masks().1.as_slice(), &[1.0, 1.0, 0.0, 1.0]);
        // Equality ignores the cache state.
        let fresh = Region::from_cells(4, [CellId(2)]).unwrap();
        assert_eq!(r, fresh);
    }

    #[test]
    fn set_algebra() {
        let a = Region::from_cells(8, [CellId(0), CellId(1)]).unwrap();
        let b = Region::from_cells(8, [CellId(1), CellId(2)]).unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.len(), 3);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![CellId(1)]);
        let c = a.complement();
        assert_eq!(c.len(), 6);
        assert!(!c.contains(CellId(0)));
        assert!(c.contains(CellId(7)));
    }

    #[test]
    fn complement_clears_phantom_bits() {
        let r = Region::empty(65).complement(); // full region, 2 words
        assert_eq!(r.len(), 65);
        assert_eq!(r.complement().len(), 0);
    }

    #[test]
    fn domain_mismatch_detected() {
        let a = Region::empty(4);
        let b = Region::empty(5);
        assert!(matches!(a.union(&b), Err(GeoError::DomainMismatch { .. })));
        assert!(matches!(
            a.intersection(&b),
            Err(GeoError::DomainMismatch { .. })
        ));
    }

    #[test]
    fn display_uses_paper_names() {
        let r = Region::from_cells(5, [CellId(0), CellId(2)]).unwrap();
        assert_eq!(r.to_string(), "{s1,s3}");
    }

    #[test]
    fn iter_in_order() {
        let r = Region::from_cells(130, [CellId(128), CellId(3), CellId(64)]).unwrap();
        let cells: Vec<usize> = r.iter().map(|c| c.index()).collect();
        assert_eq!(cells, vec![3, 64, 128]);
    }
}
