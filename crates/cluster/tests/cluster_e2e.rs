//! End-to-end tests for the router tier over real TCP: in-process
//! `priste_serve` workers on ephemeral ports fronted by a `Router`,
//! driven by a hand-rolled keep-alive client. Covers routing, the admin
//! plane, shard handoff over the durable substrate, and every upstream
//! failure mode the at-most-once policy distinguishes.

use priste_calibrate::GuardConfig;
use priste_cluster::{jump_hash, PoolConfig, Router, RouterConfig, ShardMap, METRIC_SCHEMA};
use priste_event::Presence;
use priste_geo::{GridMap, Region};
use priste_linalg::Vector;
use priste_lppm::{Lppm, PlanarLaplace};
use priste_markov::{gaussian_kernel_chain, Homogeneous};
use priste_obs::{json, Registry};
use priste_online::{DurableOptions, OnlineConfig, SessionManager, UserId};
use priste_serve::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn unique_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "priste-cluster-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn online_config() -> OnlineConfig {
    OnlineConfig {
        epsilon: 0.8,
        num_shards: 2,
        linger: 2,
        budget: 1e6,
    }
}

fn presence_template(grid: &GridMap) -> Presence {
    Presence::new(
        Region::from_one_based_range(grid.num_cells(), 1, 3).unwrap(),
        2,
        4,
    )
    .unwrap()
}

/// A 3×3 enforcing commuter worker, optionally durable — the same
/// service every serve e2e uses, so the router fronts real spends.
fn build_worker(durable: Option<&Path>) -> (Server<Arc<Homogeneous>>, Registry) {
    let grid = GridMap::new(3, 3, 1.0).unwrap();
    let chain = gaussian_kernel_chain(&grid, 1.0).unwrap();
    let provider = Arc::new(Homogeneous::new(chain));
    let mut service = SessionManager::new(provider, online_config()).unwrap();
    service
        .register_template(presence_template(&grid).into())
        .unwrap();
    service
        .add_user(UserId(1), Vector::uniform(grid.num_cells()))
        .unwrap();
    service.attach_event(UserId(1), 0).unwrap();
    if let Some(dir) = durable {
        service
            .make_durable(
                dir,
                DurableOptions {
                    fsync: false,
                    snapshot_every: 0,
                },
            )
            .unwrap();
    }
    finish_worker(service, &grid)
}

/// Adopts a moved durable directory: recover-or-create, then the same
/// enforcement and server wiring as a fresh worker. This is step 3 of
/// the shard-handoff runbook.
fn adopt_worker(dir: &Path) -> (Server<Arc<Homogeneous>>, Registry) {
    let grid = GridMap::new(3, 3, 1.0).unwrap();
    let chain = gaussian_kernel_chain(&grid, 1.0).unwrap();
    let provider = Arc::new(Homogeneous::new(chain));
    let service = SessionManager::open_durable(
        provider,
        online_config(),
        vec![presence_template(&grid).into()],
        dir,
        DurableOptions {
            fsync: false,
            snapshot_every: 0,
        },
    )
    .unwrap();
    finish_worker(service, &grid)
}

fn finish_worker(
    mut service: SessionManager<Arc<Homogeneous>>,
    grid: &GridMap,
) -> (Server<Arc<Homogeneous>>, Registry) {
    let mechanism = PlanarLaplace::new(grid.clone(), 3.0).unwrap();
    service
        .enable_enforcement(
            Box::new(mechanism.clone()),
            GuardConfig {
                target_epsilon: 0.8,
                ..GuardConfig::default()
            },
        )
        .unwrap();
    let registry = Registry::new();
    service.observe(&registry);
    let server = Server::start(
        service,
        Some(Box::new(mechanism) as Box<dyn Lppm>),
        registry.clone(),
        ServerConfig {
            workers: 2,
            poll_interval: Duration::from_millis(5),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    (server, registry)
}

/// Router tuning for tests: fast probes, short timeouts, a recognisable
/// `Retry-After`.
fn quick_router_config() -> RouterConfig {
    RouterConfig {
        workers: 4,
        max_body_bytes: 64 * 1024,
        poll_interval: Duration::from_millis(5),
        probe_interval: Duration::from_millis(50),
        pool: PoolConfig {
            connect_attempts: 2,
            connect_backoff: Duration::from_millis(2),
            connect_timeout: Duration::from_millis(250),
            exchange_timeout: Duration::from_secs(5),
            pool_capacity: 8,
        },
        retry_after_seconds: 7,
        metrics_snapshot: None,
        handle_signals: false,
    }
}

fn start_router(addrs: &[String], registry: &Registry) -> Router {
    let map = ShardMap::from_workers(addrs.iter().cloned()).unwrap();
    Router::start(map, registry.clone(), quick_router_config(), "127.0.0.1:0").unwrap()
}

/// Tiny blocking test client over one keep-alive connection.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        Client {
            stream,
            buf: Vec::new(),
        }
    }

    fn send_raw(&mut self, wire: &str) {
        self.stream.write_all(wire.as_bytes()).unwrap();
    }

    /// Reads one response: (status, head, body).
    fn read_response(&mut self) -> (u16, String, String) {
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk).expect("read response");
            assert!(n > 0, "router closed mid-response");
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(self.buf[..head_end].to_vec()).unwrap();
        self.buf.drain(..head_end + 4);
        let status: u16 = head
            .lines()
            .next()
            .unwrap()
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.trim()
                    .eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().unwrap())
            })
            .unwrap_or(0);
        while self.buf.len() < length {
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk).expect("read body");
            assert!(n > 0, "router closed mid-body");
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8(self.buf.drain(..length).collect()).unwrap();
        (status, head, body)
    }

    fn get(&mut self, path: &str) -> (u16, String, String) {
        self.send_raw(&format!("GET {path} HTTP/1.1\r\nhost: t\r\n\r\n"));
        self.read_response()
    }

    fn post(&mut self, path: &str, body: &str) -> (u16, String, String) {
        self.send_raw(&format!(
            "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ));
        self.read_response()
    }

    fn ingest(&mut self, user: u64, observed: u64) -> (u16, String, String) {
        self.post(
            "/v1/ingest",
            &format!("{{\"user\": {user}, \"observed\": {observed}}}"),
        )
    }
}

/// First user id that jump-hashes onto `slot` of `buckets`.
fn user_on_slot(slot: u32, buckets: u32) -> u64 {
    (0..).find(|&u| jump_hash(u, buckets) == slot).unwrap()
}

#[test]
fn routes_by_user_id_and_exposes_the_cluster_plane() {
    let (worker_a, _) = build_worker(None);
    let (worker_b, _) = build_worker(None);
    let addrs = vec![
        worker_a.local_addr().to_string(),
        worker_b.local_addr().to_string(),
    ];
    let registry = Registry::new();
    let router = start_router(&addrs, &registry);
    let router_addr = router.local_addr().to_string();
    let mut client = Client::connect(&router_addr);

    let (status, _, body) = client.get("/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");
    let (status, _, body) = client.get("/readyz");
    assert_eq!(status, 200);
    assert_eq!(body, "ready\n");
    let (status, _, body) = client.get("/v1/config");
    assert_eq!(status, 200, "body: {body}");
    let doc = json::parse(&body).unwrap();
    assert_eq!(doc.get("num_cells").and_then(|j| j.as_u64()), Some(9));

    // Two ingests per user; each user's timestep advances monotonically
    // regardless of which worker its slot lives on — routing is sticky.
    // Not user 1: build_worker pre-registers it on every worker, so it
    // is the one id whose ledger legitimately exists on both.
    let users: Vec<u64> = (100..116).collect();
    for round in 1..=2u64 {
        for &user in &users {
            let (status, _, body) = client.ingest(user, (user + round) % 9);
            assert_eq!(status, 200, "user {user}: {body}");
            let doc = json::parse(&body).unwrap();
            assert_eq!(doc.get("t").and_then(|j| j.as_u64()), Some(round));
        }
    }

    // The spend ledger for a user lives on exactly the worker its slot
    // maps to: present through the router, present on that worker,
    // absent on the other.
    for &user in &users {
        let (status, _, body) = client.get(&format!("/v1/users/{user}/spend"));
        assert_eq!(status, 200);
        let doc = json::parse(&body).unwrap();
        assert_eq!(doc.get("observed").and_then(|j| j.as_u64()), Some(2));
        let slot = jump_hash(user, 2) as usize;
        let mut home = Client::connect(&addrs[slot]);
        let (status, _, _) = home.get(&format!("/v1/users/{user}/spend"));
        assert_eq!(status, 200, "user {user} missing from its home worker");
        let mut other = Client::connect(&addrs[1 - slot]);
        let (status, _, _) = other.get(&format!("/v1/users/{user}/spend"));
        assert_eq!(status, 404, "user {user} leaked onto the wrong worker");
    }

    // Request identity: a client-supplied id is propagated and echoed;
    // without one the router mints a cluster-scoped id.
    client.send_raw(
        "POST /v1/ingest HTTP/1.1\r\nhost: t\r\nx-request-id: trace-me\r\n\
         content-length: 26\r\n\r\n{\"user\": 0, \"observed\": 3}",
    );
    let (status, head, _) = client.read_response();
    assert_eq!(status, 200);
    assert!(head.contains("x-request-id: trace-me"), "head: {head}");
    let (status, head, _) = client.ingest(1, 4);
    assert_eq!(status, 200);
    assert!(head.contains("x-request-id: cluster-"), "head: {head}");

    // Admin plane: the live shard map with health.
    let (status, _, body) = client.get("/cluster/workers");
    assert_eq!(status, 200);
    let doc = json::parse(&body).unwrap();
    assert_eq!(doc.get("slots").and_then(|j| j.as_u64()), Some(2));
    assert_eq!(doc.get("draining").and_then(|j| j.as_bool()), Some(false));
    let workers = doc.get("workers").and_then(|j| j.as_array()).unwrap();
    assert_eq!(workers.len(), 2);
    for (slot, row) in workers.iter().enumerate() {
        assert_eq!(row.get("slot").and_then(|j| j.as_u64()), Some(slot as u64));
        assert_eq!(
            row.get("addr").and_then(|j| j.as_str()),
            Some(addrs[slot].as_str())
        );
        assert_eq!(row.get("healthy").and_then(|j| j.as_bool()), Some(true));
    }
    assert_eq!(
        router
            .workers_snapshot()
            .iter()
            .filter(|w| w.healthy)
            .count(),
        2
    );

    // Router metrics aggregate the cluster view.
    let (status, _, text) = client.get("/metrics");
    assert_eq!(status, 200);
    for series in [
        "# TYPE cluster_request_seconds histogram",
        "cluster_request_seconds_bucket{route=\"/v1/ingest\",status=\"200\",le=",
        "cluster_upstream_request_seconds_bucket{worker=\"0\",route=\"/v1/ingest\",status=\"200\",le=",
        "cluster_worker_up{worker=\"0\"} 1",
        "cluster_worker_up{worker=\"1\"} 1",
        "cluster_slots 2",
        "cluster_connections_total 1",
        "priste_build_info{version=\"0.1.0\"} 1",
        "span_cluster_request_seconds_count",
    ] {
        assert!(text.contains(series), "missing {series:?} in:\n{text}");
    }

    // Unroutable traffic is answered by the router itself.
    let (status, _, _) = client.get("/no/such/route");
    assert_eq!(status, 404);
    let (status, _, _) = client.get("/v1/ingest");
    assert_eq!(status, 405);

    router.drain_handle().drain();
    let summary = router.wait().unwrap();
    assert_eq!(summary.connections, 1);
    assert_eq!(summary.errors, 2); // the 404 and the 405
    for worker in [worker_a, worker_b] {
        worker.drain_handle().drain();
        worker.wait().unwrap();
    }
}

#[test]
fn shard_handoff_preserves_committed_spend() {
    // Slot 0's worker is durable; we hand its shard off to a new worker
    // by drain → move dir → adopt → remap, through the router the whole
    // way. The moved ledger must recover at least every committed spend.
    let dir_old = unique_dir("handoff-old");
    let dir_new = unique_dir("handoff-new");
    let (worker_a, _) = build_worker(Some(&dir_old));
    let (worker_b, _) = build_worker(None);
    let registry = Registry::new();
    let router = start_router(
        &[
            worker_a.local_addr().to_string(),
            worker_b.local_addr().to_string(),
        ],
        &registry,
    );
    let mut client = Client::connect(&router.local_addr().to_string());

    let user = user_on_slot(0, 2);
    let committed = 5u64;
    for t in 1..=committed {
        let (status, _, body) = client.ingest(user, t % 9);
        assert_eq!(status, 200, "step {t}: {body}");
    }

    // 1. Drain the old worker: wait() writes the durable checkpoint.
    worker_a.drain_handle().drain();
    let summary = worker_a.wait().unwrap();
    assert!(
        summary.checkpointed,
        "drain must checkpoint a durable worker"
    );

    // 2. Move the durable directory to its new home.
    std::fs::rename(&dir_old, &dir_new).unwrap();

    // 3. Adopt: recovery replays snapshot + WAL.
    let (worker_c, registry_c) = adopt_worker(&dir_new);

    // 4. Remap slot 0 through the admin plane.
    let (status, _, body) = client.post(
        "/cluster/remap",
        &format!("{{\"slot\": 0, \"addr\": \"{}\"}}", worker_c.local_addr()),
    );
    assert_eq!(status, 200, "body: {body}");
    let doc = json::parse(&body).unwrap();
    assert_eq!(doc.get("healthy").and_then(|j| j.as_bool()), Some(true));
    assert_eq!(registry.counter("cluster_remaps_total").get(), 1);

    // Recovered spend ≥ committed spend, observed through the router.
    let (status, _, body) = client.get(&format!("/v1/users/{user}/spend"));
    assert_eq!(status, 200, "body: {body}");
    let doc = json::parse(&body).unwrap();
    let recovered = doc.get("observed").and_then(|j| j.as_u64()).unwrap();
    assert!(
        recovered >= committed,
        "recovered {recovered} observations < committed {committed}"
    );
    // The adopted worker really did go through recovery.
    assert!(registry_c.gauge("online_recovery_duration_seconds").get() >= 0.0);

    // Certification continues where the old worker stopped: the next
    // ingest lands at the next timestep, not at 1.
    let (status, _, body) = client.ingest(user, 0);
    assert_eq!(status, 200, "body: {body}");
    let doc = json::parse(&body).unwrap();
    assert_eq!(
        doc.get("t").and_then(|j| j.as_u64()),
        Some(committed + 1),
        "handoff reset the user's session"
    );

    router.drain_handle().drain();
    router.wait().unwrap();
    for worker in [worker_b, worker_c] {
        worker.drain_handle().drain();
        worker.wait().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir_new);
}

#[test]
fn downed_workers_fail_fast_with_retry_after() {
    // An address nothing listens on: the bind succeeds, the listener is
    // dropped, and every connect is refused.
    let dead_addr = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let registry = Registry::new();
    let router = start_router(&[dead_addr], &registry);
    let mut client = Client::connect(&router.local_addr().to_string());

    // The synchronous startup probe already marked the worker down, so
    // requests fail fast — no connect timeout on the request path.
    assert_eq!(registry.gauge("cluster_worker_up{worker=\"0\"}").get(), 0.0);
    let started = std::time::Instant::now();
    let (status, head, body) = client.ingest(4, 2);
    assert_eq!(status, 503, "body: {body}");
    let head = head.to_ascii_lowercase();
    assert!(head.contains("retry-after: 7"), "head: {head}");
    assert!(
        started.elapsed() < Duration::from_millis(200),
        "fail-fast took {:?}",
        started.elapsed()
    );

    // Readiness reflects the cluster: no healthy workers → 503 too.
    let (status, head, _) = client.get("/readyz");
    assert_eq!(status, 503);
    assert!(head.to_ascii_lowercase().contains("retry-after: 7"));

    // Fail-fast means no connection retries were spent on the request.
    assert_eq!(registry.counter("cluster_upstream_retries_total").get(), 0);
    assert_eq!(
        registry
            .counter("cluster_errors_total{route=\"/v1/ingest\"}")
            .get(),
        1
    );

    router.drain_handle().drain();
    let summary = router.wait().unwrap();
    assert_eq!(summary.errors, 2);
}

/// A TCP endpoint that answers `/readyz` probes like a healthy worker
/// and hands every other request to `misbehave` — so the router trusts
/// it right up to the moment it forwards a spend.
fn spawn_fake_worker(misbehave: fn(&mut TcpStream)) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let mut buf = Vec::new();
            let mut chunk = [0u8; 4096];
            while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
                match stream.read(&mut chunk) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                }
            }
            if String::from_utf8_lossy(&buf).starts_with("GET /readyz") {
                let _ = stream.write_all(
                    b"HTTP/1.1 200 OK\r\ncontent-length: 6\r\n\
                      connection: close\r\n\r\nready\n",
                );
            } else {
                misbehave(&mut stream);
            }
        }
    });
    addr
}

#[test]
fn malformed_upstream_bytes_are_a_502_and_counted() {
    let addr = spawn_fake_worker(|stream| {
        let _ = stream.write_all(b"BLARG NOT HTTP\r\n\r\n");
    });
    let registry = Registry::new();
    let router = start_router(&[addr], &registry);
    let mut client = Client::connect(&router.local_addr().to_string());

    let (status, _, body) = client.ingest(3, 1);
    assert_eq!(status, 502, "body: {body}");
    assert!(body.contains("malformed"), "body: {body}");
    assert_eq!(
        registry
            .counter("cluster_upstream_errors_total{worker=\"0\",kind=\"malformed\"}")
            .get(),
        1
    );

    router.drain_handle().drain();
    let summary = router.wait().unwrap();
    assert_eq!(summary.errors, 1);
}

#[test]
fn mid_request_connection_loss_is_a_502_with_no_retry() {
    // The fake worker reads the request and closes without answering.
    // The spend may or may not have been applied, so the at-most-once
    // policy forbids a retry: the client gets a 502 and the worker's
    // durable ledger arbitrates.
    let addr = spawn_fake_worker(|stream| {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    });
    let registry = Registry::new();
    let router = start_router(&[addr], &registry);
    let mut client = Client::connect(&router.local_addr().to_string());

    let (status, _, body) = client.ingest(3, 1);
    assert_eq!(status, 502, "body: {body}");
    assert_eq!(
        registry
            .counter("cluster_upstream_errors_total{worker=\"0\",kind=\"io\"}")
            .get(),
        1
    );
    // No bytes were re-sent: the retry counter only ever moves for
    // connection establishment, which succeeded first try here.
    assert_eq!(registry.counter("cluster_upstream_retries_total").get(), 0);

    router.drain_handle().drain();
    let summary = router.wait().unwrap();
    assert_eq!(summary.errors, 1);
}

#[test]
fn metrics_schema_covers_router_exports() {
    // Exercise every router code path that creates a series — traffic,
    // errors, a remap, probes — then require each exported name to be a
    // documented METRIC_SCHEMA row. `priste_build_info` and
    // `process_uptime_seconds` are the process-wide rows every daemon
    // shares; the CLI metrics table documents them once.
    let (worker, _) = build_worker(None);
    let worker_addr = worker.local_addr().to_string();
    let registry = Registry::new();
    let router = start_router(std::slice::from_ref(&worker_addr), &registry);
    let mut client = Client::connect(&router.local_addr().to_string());

    client.ingest(2, 1);
    client.get("/v1/users/2/spend");
    client.get("/v1/config");
    client.get("/readyz");
    client.get("/no/such/route");
    client.post(
        "/cluster/remap",
        &format!("{{\"slot\": 0, \"addr\": \"{worker_addr}\"}}"),
    );
    client.get("/metrics");

    router.drain_handle().drain();
    router.wait().unwrap();
    worker.drain_handle().drain();
    worker.wait().unwrap();

    let documented: Vec<&str> = METRIC_SCHEMA
        .iter()
        .map(|(name, _, _)| *name)
        .chain(["priste_build_info", "process_uptime_seconds"])
        .collect();
    let doc = json::parse(&registry.render_json()).unwrap();
    let mut seen = 0;
    for section in ["counters", "gauges", "histograms"] {
        for name in doc.get(section).unwrap().as_object().unwrap().keys() {
            let base = name.split('{').next().unwrap();
            assert!(
                documented.contains(&base),
                "{name} exported but missing from METRIC_SCHEMA"
            );
            seen += 1;
        }
    }
    assert!(seen >= 10, "scenario exported only {seen} series");
}
