//! The router daemon: accepts client connections, maps each request's
//! user id onto a slot, and relays the exchange to that slot's worker.
//!
//! # Architecture
//!
//! The threading mirrors `priste_serve`: one non-blocking acceptor
//! feeds a fixed pool of serving threads over a channel, each owning
//! one keep-alive client connection at a time. A dedicated prober
//! thread walks every upstream's `/readyz` on a fixed interval so a
//! dead worker is noticed (and its slots fail fast with 503 +
//! `Retry-After`) without any client paying the discovery timeout.
//!
//! # Request identity across processes
//!
//! The router assigns (or echoes) `x-request-id` and forwards it to the
//! worker, which echoes it back on its own response; one id therefore
//! traces a request through both processes' logs and spans.
//!
//! # Admin plane
//!
//! `GET /cluster/workers` reports the live shard map with health;
//! `POST /cluster/remap {"slot": N, "addr": "H:P"}` rebinds a slot to a
//! new worker — the last step of a shard handoff — and counts into
//! `cluster_remaps_total`.

use crate::error::{ClusterError, Result};
use crate::hash::ShardMap;
use crate::pool::{validate_addr, ForwardError, PoolConfig, Upstream};
use priste_obs::json::{self, Json};
use priste_obs::{Counter, Gauge, Registry};
use priste_serve::http::{write_response, ReadError, Request, RequestReader, Response};
use priste_serve::proto::encode_error;
use priste_serve::signal;
use std::fmt::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning knobs for [`Router::start`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Serving threads — also the effective client-request concurrency.
    pub workers: usize,
    /// Largest accepted request body (413 beyond it).
    pub max_body_bytes: usize,
    /// Client-socket read timeout; bounds drain latency.
    pub poll_interval: Duration,
    /// How often the prober re-checks every worker's `/readyz`.
    pub probe_interval: Duration,
    /// Upstream transport tuning (retries, backoff, timeouts, pool).
    pub pool: PoolConfig,
    /// `Retry-After` seconds advertised on fail-fast 503s.
    pub retry_after_seconds: u64,
    /// Where [`Router::wait`] writes the final metrics snapshot.
    pub metrics_snapshot: Option<PathBuf>,
    /// Install SIGINT/SIGTERM handlers and treat them as a drain.
    pub handle_signals: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            workers: 8,
            max_body_bytes: 64 * 1024,
            poll_interval: Duration::from_millis(25),
            probe_interval: Duration::from_millis(250),
            pool: PoolConfig::default(),
            retry_after_seconds: 1,
            metrics_snapshot: None,
            handle_signals: false,
        }
    }
}

/// What the drained router did, returned by [`Router::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterSummary {
    /// Client connections accepted over the router's lifetime.
    pub connections: u64,
    /// Client requests answered (any status).
    pub requests: u64,
    /// Client requests answered with a 4xx/5xx status.
    pub errors: u64,
}

/// Clonable switch that starts a graceful router drain.
#[derive(Debug, Clone)]
pub struct RouterDrainHandle {
    flag: Arc<AtomicBool>,
}

impl RouterDrainHandle {
    /// Flips the router into draining mode (idempotent).
    pub fn drain(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// One row of [`Router::workers_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStatus {
    /// Slot index.
    pub slot: usize,
    /// Address currently bound to the slot.
    pub addr: String,
    /// Last probe/exchange verdict.
    pub healthy: bool,
}

struct Shared {
    upstreams: Vec<Upstream>,
    registry: Registry,
    config: RouterConfig,
    draining: Arc<AtomicBool>,
    started: Instant,
    requests: AtomicU64,
    errors: AtomicU64,
    next_request_id: AtomicU64,
    in_flight: Gauge,
    connections_total: Counter,
    remaps_total: Counter,
    uptime: Gauge,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn bump_error(&self, route: &str) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        self.registry
            .counter(&format!("cluster_errors_total{{route=\"{route}\"}}"))
            .inc();
    }

    fn slot_of(&self, user: u64) -> usize {
        crate::hash::jump_hash(user, self.upstreams.len() as u32) as usize
    }

    fn first_healthy(&self) -> Option<&Upstream> {
        self.upstreams.iter().find(|u| u.is_healthy())
    }
}

/// A running router; dropping it without [`Router::wait`] detaches the
/// threads.
pub struct Router {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    prober: JoinHandle<()>,
}

impl Router {
    /// Binds `addr` (port 0 for ephemeral) and starts routing onto the
    /// workers in `map`. Every worker address is resolved eagerly and
    /// probed once synchronously, so the health picture is accurate
    /// before the first client request arrives.
    ///
    /// # Errors
    /// [`ClusterError::Io`] when the bind fails, or
    /// [`ClusterError::Config`] for an unresolvable worker address.
    pub fn start(
        map: ShardMap,
        registry: Registry,
        config: RouterConfig,
        addr: &str,
    ) -> Result<Router> {
        for addr in map.addrs() {
            validate_addr(addr)?;
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        registry
            .gauge(&format!(
                "priste_build_info{{version=\"{}\"}}",
                env!("CARGO_PKG_VERSION")
            ))
            .set(1.0);
        registry.gauge("cluster_slots").set(map.len() as f64);
        let uptime = registry.gauge("process_uptime_seconds");
        let in_flight = registry.gauge("cluster_requests_in_flight");
        let connections_total = registry.counter("cluster_connections_total");
        let remaps_total = registry.counter("cluster_remaps_total");
        if config.handle_signals {
            signal::install();
        }

        let upstreams: Vec<Upstream> = map
            .addrs()
            .iter()
            .enumerate()
            .map(|(slot, addr)| Upstream::new(slot, addr.clone(), config.pool.clone(), &registry))
            .collect();
        for upstream in &upstreams {
            upstream.probe();
        }

        let draining = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            upstreams,
            registry,
            config,
            draining,
            started: Instant::now(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            next_request_id: AtomicU64::new(0),
            in_flight,
            connections_total,
            remaps_total,
            uptime,
        });

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                thread::spawn(move || worker_loop(&shared, &rx))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&shared, &listener, &tx))
        };
        let prober = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || probe_loop(&shared))
        };
        Ok(Router {
            shared,
            local_addr,
            acceptor,
            workers,
            prober,
        })
    }

    /// The bound address (the resolved port when started on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A clonable handle that can start a drain from any thread.
    pub fn drain_handle(&self) -> RouterDrainHandle {
        RouterDrainHandle {
            flag: Arc::clone(&self.shared.draining),
        }
    }

    /// The live shard map with per-worker health.
    pub fn workers_snapshot(&self) -> Vec<WorkerStatus> {
        self.shared
            .upstreams
            .iter()
            .map(|u| WorkerStatus {
                slot: u.slot(),
                addr: u.addr(),
                healthy: u.is_healthy(),
            })
            .collect()
    }

    /// Rebinds `slot` to `addr` in-process — the programmatic face of
    /// `POST /cluster/remap`, used by handoff orchestration.
    ///
    /// # Errors
    /// [`ClusterError::Config`] for an out-of-range slot or an
    /// unresolvable address.
    pub fn rebind_slot(&self, slot: usize, addr: &str) -> Result<()> {
        rebind(&self.shared, slot, addr)
    }

    /// Blocks until a drain is requested and every in-flight client
    /// request has been answered, then writes the final metrics
    /// snapshot (when configured) and returns the [`RouterSummary`].
    ///
    /// # Errors
    /// Snapshot-write failures; the drain itself cannot fail.
    pub fn wait(self) -> Result<RouterSummary> {
        let _ = self.acceptor.join();
        for worker in self.workers {
            let _ = worker.join();
        }
        let _ = self.prober.join();
        let shared = self.shared;
        shared.uptime.set(shared.started.elapsed().as_secs_f64());
        if let Some(path) = &shared.config.metrics_snapshot {
            std::fs::write(path, shared.registry.render_json())?;
        }
        Ok(RouterSummary {
            connections: shared.connections_total.get(),
            requests: shared.requests.load(Ordering::Relaxed),
            errors: shared.errors.load(Ordering::Relaxed),
        })
    }
}

fn rebind(shared: &Shared, slot: usize, addr: &str) -> Result<()> {
    let Some(upstream) = shared.upstreams.get(slot) else {
        return Err(ClusterError::Config(format!(
            "slot {slot} out of range (map has {} slots)",
            shared.upstreams.len()
        )));
    };
    validate_addr(addr)?;
    upstream.rebind(addr);
    shared.remaps_total.inc();
    Ok(())
}

fn accept_loop(shared: &Shared, listener: &TcpListener, tx: &mpsc::Sender<TcpStream>) {
    loop {
        if shared.config.handle_signals && signal::triggered() {
            shared.draining.store(true, Ordering::SeqCst);
        }
        if shared.draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.connections_total.inc();
                if tx.send(stream).is_err() {
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn probe_loop(shared: &Shared) {
    while !shared.draining() {
        for upstream in &shared.upstreams {
            upstream.probe();
        }
        // Sleep in poll-sized slices so a drain is noticed promptly.
        let mut remaining = shared.config.probe_interval;
        while !remaining.is_zero() && !shared.draining() {
            let step = remaining.min(Duration::from_millis(25));
            thread::sleep(step);
            remaining = remaining.saturating_sub(step);
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        let stream = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        match stream {
            Ok(stream) => handle_connection(shared, stream),
            Err(_) => return,
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = RequestReader::new(stream, shared.config.max_body_bytes);
    loop {
        match reader.read_request() {
            Ok(req) => {
                shared.in_flight.add(1.0);
                let mut resp = handle_request(shared, &req);
                shared.in_flight.add(-1.0);
                shared.requests.fetch_add(1, Ordering::Relaxed);
                if shared.draining() || req.wants_close() {
                    resp.close = true;
                }
                if write_response(&mut writer, &resp).is_err() || resp.close {
                    return;
                }
            }
            Err(ReadError::Idle) => {
                if shared.draining() {
                    return;
                }
            }
            Err(ReadError::Closed) | Err(ReadError::Io(_)) => return,
            Err(ReadError::Malformed(msg)) => {
                shared.bump_error("malformed");
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let mut resp = Response::json(400, encode_error(&msg));
                resp.close = true;
                let _ = write_response(&mut writer, &resp);
                return;
            }
            Err(ReadError::TooLarge) => {
                shared.bump_error("malformed");
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let mut resp = Response::json(413, encode_error("request too large"));
                resp.close = true;
                let _ = write_response(&mut writer, &resp);
                return;
            }
        }
    }
}

/// Stable route label for metrics (path parameters collapsed).
fn route_label(path: &str) -> &'static str {
    match path {
        "/v1/ingest" => "/v1/ingest",
        "/v1/release" => "/v1/release",
        "/v1/config" => "/v1/config",
        "/metrics" => "/metrics",
        "/healthz" => "/healthz",
        "/readyz" => "/readyz",
        "/cluster/workers" => "/cluster/workers",
        "/cluster/remap" => "/cluster/remap",
        _ if spend_user(path).is_some() => "/v1/users/:id/spend",
        _ => "unknown",
    }
}

/// Parses `/v1/users/<id>/spend`.
fn spend_user(path: &str) -> Option<u64> {
    path.strip_prefix("/v1/users/")?
        .strip_suffix("/spend")?
        .parse()
        .ok()
}

fn handle_request(shared: &Shared, req: &Request) -> Response {
    let route = route_label(&req.path);
    let start = Instant::now();
    let request_id = match req.header("x-request-id") {
        Some(id) => id.to_owned(),
        None => format!(
            "cluster-{}",
            shared.next_request_id.fetch_add(1, Ordering::Relaxed) + 1
        ),
    };
    let mut span = shared.registry.span("cluster_request");
    let mut resp = dispatch(shared, route, req, &request_id);
    let status = resp.status;
    span.annotate("status", f64::from(status));
    drop(span);
    shared
        .registry
        .histogram(&format!(
            "cluster_request_seconds{{route=\"{route}\",status=\"{status}\"}}"
        ))
        .observe(start.elapsed().as_secs_f64());
    if status >= 400 {
        shared.bump_error(route);
    }
    resp.request_id = Some(request_id);
    resp
}

fn dispatch(shared: &Shared, route: &'static str, req: &Request, request_id: &str) -> Response {
    match (req.method.as_str(), route) {
        ("POST", "/v1/ingest") | ("POST", "/v1/release") => {
            route_by_body(shared, route, req, request_id)
        }
        ("GET", "/v1/users/:id/spend") => {
            let user = spend_user(&req.path).expect("route_label matched");
            let slot = shared.slot_of(user);
            forward_to(shared, slot, route, req, request_id)
        }
        ("GET", "/v1/config") => match shared.first_healthy() {
            Some(upstream) => forward_to(shared, upstream.slot(), route, req, request_id),
            None => all_down(shared),
        },
        ("GET", "/metrics") => {
            shared.uptime.set(shared.started.elapsed().as_secs_f64());
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                body: shared.registry.render_prometheus().into_bytes(),
                request_id: None,
                retry_after: None,
                close: false,
            }
        }
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/readyz") => {
            if shared.draining() {
                Response::json(503, encode_error("draining"))
            } else if shared.first_healthy().is_none() {
                let mut resp = Response::json(503, encode_error("no healthy workers"));
                resp.retry_after = Some(shared.config.retry_after_seconds);
                resp
            } else {
                Response::text(200, "ready\n")
            }
        }
        ("GET", "/cluster/workers") => workers_response(shared),
        ("POST", "/cluster/remap") => remap_response(shared, &req.body),
        (_, "unknown") => Response::json(404, encode_error("no such route")),
        _ => Response::json(405, encode_error("method not allowed on this route")),
    }
}

/// Routes an ingest/release by the `"user"` field of its JSON body.
fn route_by_body(
    shared: &Shared,
    route: &'static str,
    req: &Request,
    request_id: &str,
) -> Response {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::json(400, encode_error("body is not valid UTF-8"));
    };
    let Ok(doc) = json::parse(text) else {
        return Response::json(400, encode_error("body is not valid JSON"));
    };
    let Some(user) = doc.get("user").and_then(Json::as_u64) else {
        return Response::json(400, encode_error("missing or non-integer field \"user\""));
    };
    let slot = shared.slot_of(user);
    forward_to(shared, slot, route, req, request_id)
}

/// Serializes `req` for the upstream (minimal rebuilt head, request id
/// propagated) and relays the worker's answer.
fn forward_to(
    shared: &Shared,
    slot: usize,
    route: &str,
    req: &Request,
    request_id: &str,
) -> Response {
    let upstream = &shared.upstreams[slot];
    let mut wire = format!(
        "{} {} HTTP/1.1\r\nhost: cluster\r\nx-request-id: {request_id}\r\n",
        req.method, req.path
    );
    if !req.body.is_empty() {
        let _ = write!(
            wire,
            "content-type: application/json\r\ncontent-length: {}\r\n",
            req.body.len()
        );
    } else {
        wire.push_str("content-length: 0\r\n");
    }
    wire.push_str("\r\n");
    let mut wire = wire.into_bytes();
    wire.extend_from_slice(&req.body);

    match upstream.forward(&wire, route) {
        Ok(up) => {
            let mut resp = Response::json(up.status, String::new());
            resp.body = up.body;
            resp.content_type = content_type_static(&up.content_type);
            resp
        }
        Err(ForwardError::Down) => {
            let mut resp = Response::json(
                503,
                encode_error(&format!("worker {slot} ({}) is down", upstream.addr())),
            );
            resp.retry_after = Some(shared.config.retry_after_seconds);
            resp
        }
        Err(ForwardError::Io(e)) => Response::json(
            502,
            encode_error(&format!("worker {slot} failed mid-exchange: {e}")),
        ),
        Err(ForwardError::Malformed(msg)) => Response::json(
            502,
            encode_error(&format!("worker {slot} sent a malformed response: {msg}")),
        ),
    }
}

/// [`Response::content_type`] is a `&'static str`; map the handful of
/// types a worker actually sends back onto their static spellings.
fn content_type_static(ct: &str) -> &'static str {
    match ct {
        "application/json" => "application/json",
        "text/plain; charset=utf-8" => "text/plain; charset=utf-8",
        "text/plain; version=0.0.4; charset=utf-8" => "text/plain; version=0.0.4; charset=utf-8",
        _ => "application/octet-stream",
    }
}

fn all_down(shared: &Shared) -> Response {
    let mut resp = Response::json(503, encode_error("no healthy workers"));
    resp.retry_after = Some(shared.config.retry_after_seconds);
    resp
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn workers_response(shared: &Shared) -> Response {
    let rows: Vec<String> = shared
        .upstreams
        .iter()
        .map(|u| {
            format!(
                "{{\"slot\": {}, \"addr\": {}, \"healthy\": {}}}",
                u.slot(),
                json_string(&u.addr()),
                u.is_healthy()
            )
        })
        .collect();
    Response::json(
        200,
        format!(
            "{{\"slots\": {}, \"draining\": {}, \"workers\": [{}]}}",
            shared.upstreams.len(),
            shared.draining(),
            rows.join(", ")
        ),
    )
}

fn remap_response(shared: &Shared, body: &[u8]) -> Response {
    let Ok(text) = std::str::from_utf8(body) else {
        return Response::json(400, encode_error("body is not valid UTF-8"));
    };
    let Ok(doc) = json::parse(text) else {
        return Response::json(400, encode_error("body is not valid JSON"));
    };
    let Some(slot) = doc.get("slot").and_then(Json::as_u64) else {
        return Response::json(400, encode_error("missing or non-integer field \"slot\""));
    };
    let Some(addr) = doc.get("addr").and_then(Json::as_str) else {
        return Response::json(400, encode_error("missing or non-string field \"addr\""));
    };
    match rebind(shared, slot as usize, addr) {
        Ok(()) => {
            let upstream = &shared.upstreams[slot as usize];
            Response::json(
                200,
                format!(
                    "{{\"slot\": {slot}, \"addr\": {}, \"healthy\": {}}}",
                    json_string(&upstream.addr()),
                    upstream.is_healthy()
                ),
            )
        }
        Err(e) => Response::json(400, encode_error(&e.to_string())),
    }
}
