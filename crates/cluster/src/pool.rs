//! Per-worker upstream client: keep-alive connection pool, `/readyz`
//! health probes, and the at-most-once forwarding policy.
//!
//! # At-most-once forwarding
//!
//! Application requests spend privacy budget, so the router must never
//! make a worker apply one request twice. The policy is therefore:
//!
//! * **Connection establishment** is retried with backoff — nothing has
//!   been sent, so retries are free ([`PoolConfig::connect_attempts`]).
//! * **Pooled connections are preflight-checked** (a non-blocking peek)
//!   before reuse, so a worker's idle keep-alive close is detected and
//!   the connection discarded instead of racing a request against it.
//! * **Once request bytes are on the wire, there are no retries.** A
//!   transport failure mid-exchange surfaces as [`ForwardError::Io`]
//!   (502 to the client), because the worker may or may not have
//!   committed the spend — only the client, which sees the error, may
//!   decide to retry, and the worker's durable ledger arbitrates.
//!
//! A worker that cannot be reached at all is marked unhealthy and every
//! request for its slots fails fast as [`ForwardError::Down`] (503 with
//! `Retry-After`) until a [`Upstream::probe`] — run by the router's
//! prober thread — sees `/readyz` answer 200 again.

use crate::error::{ClusterError, Result};
use priste_obs::{Counter, Gauge, Registry};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Transport tuning shared by every upstream.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Fresh-connection attempts per request (at least 1); only
    /// connection *establishment* is ever retried.
    pub connect_attempts: u32,
    /// Sleep between connection attempts, doubled each retry.
    pub connect_backoff: Duration,
    /// Per-attempt connection timeout.
    pub connect_timeout: Duration,
    /// Read/write timeout on an established upstream exchange.
    pub exchange_timeout: Duration,
    /// Idle keep-alive connections retained per worker.
    pub pool_capacity: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            connect_attempts: 3,
            connect_backoff: Duration::from_millis(5),
            connect_timeout: Duration::from_millis(500),
            exchange_timeout: Duration::from_secs(10),
            pool_capacity: 16,
        }
    }
}

/// Why a forward produced no upstream response.
#[derive(Debug)]
pub enum ForwardError {
    /// The worker is marked down or unreachable: fail fast, 503 +
    /// `Retry-After`.
    Down,
    /// Transport failed after request bytes were sent: 502, no retry.
    Io(io::Error),
    /// The worker answered bytes that do not parse as HTTP: 502.
    Malformed(String),
}

/// A parsed upstream response, minimally: what the router relays.
#[derive(Debug)]
pub struct UpstreamResponse {
    /// Status code.
    pub status: u16,
    /// `content-type` value (defaulted when the worker omits it).
    pub content_type: String,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Whether the worker asked to close the connection.
    pub close: bool,
}

/// One worker endpoint: remappable address, health flag, idle pool, and
/// its slice of the cluster metrics.
pub struct Upstream {
    slot: usize,
    addr: Mutex<String>,
    healthy: AtomicBool,
    idle: Mutex<Vec<TcpStream>>,
    config: PoolConfig,
    registry: Registry,
    up: Gauge,
    errors_connect: Counter,
    errors_io: Counter,
    errors_malformed: Counter,
    retries: Counter,
}

impl Upstream {
    /// A new upstream for `slot`, initially presumed healthy (the
    /// router probes synchronously at startup, so the presumption is
    /// corrected before traffic arrives).
    pub fn new(slot: usize, addr: String, config: PoolConfig, registry: &Registry) -> Upstream {
        let label = |name: &str, kind: &str| format!("{name}{{worker=\"{slot}\",kind=\"{kind}\"}}");
        Upstream {
            slot,
            addr: Mutex::new(addr),
            healthy: AtomicBool::new(true),
            idle: Mutex::new(Vec::new()),
            config,
            registry: registry.clone(),
            up: registry.gauge(&format!("cluster_worker_up{{worker=\"{slot}\"}}")),
            errors_connect: registry.counter(&label("cluster_upstream_errors_total", "connect")),
            errors_io: registry.counter(&label("cluster_upstream_errors_total", "io")),
            errors_malformed: registry
                .counter(&label("cluster_upstream_errors_total", "malformed")),
            retries: registry.counter("cluster_upstream_retries_total"),
        }
    }

    /// The slot this upstream serves.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Current address (changes across remaps).
    pub fn addr(&self) -> String {
        self.addr.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Rebinds the upstream to `addr` (shard handoff): the idle pool is
    /// discarded (those sockets point at the old worker) and health is
    /// re-established by an immediate probe.
    pub fn rebind(&self, addr: &str) {
        *self.addr.lock().unwrap_or_else(|e| e.into_inner()) = addr.to_owned();
        self.idle.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.set_healthy(self.probe());
    }

    /// Whether the last probe or exchange found the worker serving.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    fn set_healthy(&self, healthy: bool) {
        self.healthy.store(healthy, Ordering::SeqCst);
        self.up.set(if healthy { 1.0 } else { 0.0 });
        if !healthy {
            self.idle.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// One `/readyz` round trip on a fresh connection; updates the
    /// health flag and returns the verdict. A draining worker answers
    /// 503 and is treated as down, which is exactly what a handoff
    /// wants: the router stops sending while the worker checkpoints.
    pub fn probe(&self) -> bool {
        let verdict = self.probe_once().is_some_and(|status| status == 200);
        self.set_healthy(verdict);
        verdict
    }

    fn probe_once(&self) -> Option<u16> {
        let mut stream = self.connect_once().ok()?;
        let wire = "GET /readyz HTTP/1.1\r\nhost: cluster\r\nconnection: close\r\n\r\n";
        stream.write_all(wire.as_bytes()).ok()?;
        let resp = read_upstream_response(&mut stream, &mut Vec::new()).ok()?;
        Some(resp.status)
    }

    fn connect_once(&self) -> io::Result<TcpStream> {
        let addr = self.addr();
        let mut last = io::Error::new(io::ErrorKind::AddrNotAvailable, "no addresses resolved");
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, self.config.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.config.exchange_timeout))?;
                    stream.set_write_timeout(Some(self.config.exchange_timeout))?;
                    stream.set_nodelay(true)?;
                    return Ok(stream);
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Pops an idle connection that still looks alive. A worker closing
    /// an idle keep-alive connection leaves a readable EOF behind; the
    /// non-blocking peek sees it (or any stray bytes) and the stale
    /// socket is dropped instead of being raced against a request.
    fn checkout_idle(&self) -> Option<TcpStream> {
        loop {
            let conn = self.idle.lock().unwrap_or_else(|e| e.into_inner()).pop()?;
            if connection_is_fresh(&conn) {
                return Some(conn);
            }
        }
    }

    fn checkin(&self, conn: TcpStream) {
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        if idle.len() < self.config.pool_capacity {
            idle.push(conn);
        }
    }

    /// Obtains a connection: pooled if fresh, otherwise fresh connects
    /// with exponential backoff. Failure here means the worker is
    /// unreachable — mark it down and fail fast.
    fn obtain(&self) -> std::result::Result<TcpStream, ForwardError> {
        if !self.is_healthy() {
            return Err(ForwardError::Down);
        }
        if let Some(conn) = self.checkout_idle() {
            return Ok(conn);
        }
        let mut backoff = self.config.connect_backoff;
        for attempt in 0..self.config.connect_attempts.max(1) {
            if attempt > 0 {
                self.retries.inc();
                std::thread::sleep(backoff);
                backoff *= 2;
            }
            match self.connect_once() {
                Ok(conn) => return Ok(conn),
                Err(_) => self.errors_connect.inc(),
            }
        }
        self.set_healthy(false);
        Err(ForwardError::Down)
    }

    /// Sends `wire` (a fully serialized request) and reads the response.
    /// This is the single-attempt exchange the at-most-once policy
    /// allows once bytes are moving; `route` labels the latency series.
    pub fn forward(
        &self,
        wire: &[u8],
        route: &str,
    ) -> std::result::Result<UpstreamResponse, ForwardError> {
        let started = std::time::Instant::now();
        let mut conn = self.obtain()?;
        let outcome = self.exchange(&mut conn, wire);
        match &outcome {
            Ok(resp) => {
                self.registry
                    .histogram(&format!(
                        "cluster_upstream_request_seconds{{worker=\"{}\",route=\"{route}\",\
                         status=\"{}\"}}",
                        self.slot, resp.status
                    ))
                    .observe(started.elapsed().as_secs_f64());
                if !resp.close {
                    self.checkin(conn);
                }
            }
            Err(ForwardError::Io(_)) => self.errors_io.inc(),
            Err(ForwardError::Malformed(_)) => self.errors_malformed.inc(),
            Err(ForwardError::Down) => {}
        }
        outcome
    }

    fn exchange(
        &self,
        conn: &mut TcpStream,
        wire: &[u8],
    ) -> std::result::Result<UpstreamResponse, ForwardError> {
        conn.write_all(wire).map_err(ForwardError::Io)?;
        let mut buf = Vec::new();
        read_upstream_response(conn, &mut buf)
    }
}

/// `true` when the socket has no pending EOF or stray bytes.
fn connection_is_fresh(conn: &TcpStream) -> bool {
    if conn.set_nonblocking(true).is_err() {
        return false;
    }
    let mut probe = [0u8; 1];
    let verdict = match conn.peek(&mut probe) {
        // EOF (0) or unsolicited bytes: the worker is done with it.
        Ok(_) => false,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => true,
        Err(_) => false,
    };
    conn.set_nonblocking(false).is_ok() && verdict
}

/// Parses one upstream HTTP/1.1 response: status line, headers (for
/// `content-length`, `content-type`, `connection`), explicit-length
/// body. Anything else is [`ForwardError::Malformed`].
pub fn read_upstream_response(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
) -> std::result::Result<UpstreamResponse, ForwardError> {
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        if buf.len() > 64 * 1024 {
            return Err(ForwardError::Malformed(
                "response head exceeds 64 KiB".into(),
            ));
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).map_err(ForwardError::Io)?;
        if n == 0 {
            return Err(if buf.is_empty() {
                ForwardError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "worker closed before responding",
                ))
            } else {
                ForwardError::Malformed("worker closed mid-response head".into())
            });
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    buf.drain(..head_end + 4);
    let mut lines = head.lines();
    let status_line = lines.next().unwrap_or("");
    if !status_line.starts_with("HTTP/1.") {
        return Err(ForwardError::Malformed(format!(
            "bad status line: {status_line:?}"
        )));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ForwardError::Malformed(format!("bad status line: {status_line:?}")))?;
    let mut length = 0usize;
    let mut content_type = "application/octet-stream".to_owned();
    let mut close = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ForwardError::Malformed(format!(
                "bad header line: {line:?}"
            )));
        };
        let value = value.trim();
        if name.trim().eq_ignore_ascii_case("content-length") {
            length = value
                .parse()
                .map_err(|_| ForwardError::Malformed(format!("bad content-length: {value:?}")))?;
        } else if name.trim().eq_ignore_ascii_case("content-type") {
            content_type = value.to_owned();
        } else if name.trim().eq_ignore_ascii_case("connection") {
            close = value.eq_ignore_ascii_case("close");
        }
    }
    while buf.len() < length {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).map_err(ForwardError::Io)?;
        if n == 0 {
            return Err(ForwardError::Malformed("worker closed mid-body".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = buf.drain(..length).collect();
    Ok(UpstreamResponse {
        status,
        content_type,
        body,
        close,
    })
}

/// Resolves an address string eagerly, so a typo'd `--worker-addrs`
/// entry fails at startup instead of on the first routed request.
pub fn validate_addr(addr: &str) -> Result<()> {
    addr.to_socket_addrs()
        .map_err(|e| ClusterError::Config(format!("cannot resolve {addr:?}: {e}")))?
        .next()
        .map(|_| ())
        .ok_or_else(|| ClusterError::Config(format!("{addr:?} resolves to no addresses")))
}
