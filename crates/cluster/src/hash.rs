//! User-to-shard assignment: jump consistent hashing over a slot table.
//!
//! The router's unit of placement is the **slot**: [`jump_hash`] maps a
//! user id onto one of `n` slots, and the [`ShardMap`] maps each slot
//! onto a worker address. Handoff therefore never moves users between
//! slots — it rebinds one slot to a different address — so the
//! user-partition is invariant across rebalances and a user's budget
//! ledger always lives in exactly one worker's durable directory.
//!
//! Jump hash (Lamping & Veach, "A Fast, Minimal Memory, Consistent Hash
//! Algorithm") was chosen over a hash ring because it needs no stored
//! ring state, is exactly uniform, and moves the minimal 1/n of keys
//! when a slot is *added* — and we never remove slots, only rebind them.

use crate::error::{ClusterError, Result};
use std::fmt::Write as _;

/// Maps `key` onto a bucket in `0..buckets` (Lamping-Veach jump
/// consistent hash). `buckets` must be at least 1; passing 0 returns 0.
pub fn jump_hash(key: u64, buckets: u32) -> u32 {
    if buckets <= 1 {
        return 0;
    }
    let mut state = key;
    let mut bucket: i64 = -1;
    let mut next: i64 = 0;
    while next < i64::from(buckets) {
        bucket = next;
        // The sequence from the paper: an LCG step, then a jump whose
        // expected length keeps every bucket equally likely.
        state = state
            .wrapping_mul(2_862_933_555_777_941_757)
            .wrapping_add(1);
        let r = ((state >> 33).wrapping_add(1)) as f64;
        next = (((bucket + 1) as f64) * ((1u64 << 31) as f64 / r)) as i64;
    }
    bucket as u32
}

/// The routing table: one worker address per slot.
///
/// Slots are stable; addresses are not. A remap (shard handoff) swaps a
/// slot's address in place and leaves every user→slot assignment alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    slots: Vec<String>,
}

impl ShardMap {
    /// One slot per worker address, in the order given.
    ///
    /// # Errors
    /// [`ClusterError::Config`] when the list is empty or an address is
    /// blank.
    pub fn from_workers<I, S>(addrs: I) -> Result<ShardMap>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let slots: Vec<String> = addrs
            .into_iter()
            .map(Into::into)
            .map(|a| a.trim().to_owned())
            .collect();
        if slots.is_empty() {
            return Err(ClusterError::Config(
                "the shard map needs at least one worker".into(),
            ));
        }
        if let Some(blank) = slots.iter().position(String::is_empty) {
            return Err(ClusterError::Config(format!(
                "slot {blank} has an empty address"
            )));
        }
        Ok(ShardMap { slots })
    }

    /// Parses the static shard-map file format: one `HOST:PORT` per
    /// line, slot index = line order; blank lines and `#` comments are
    /// skipped.
    ///
    /// # Errors
    /// [`ClusterError::Config`] when no addresses remain after
    /// filtering.
    pub fn from_file_text(text: &str) -> Result<ShardMap> {
        ShardMap::from_workers(
            text.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#')),
        )
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the map is empty (never true for a constructed map).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot a user id routes to.
    pub fn slot_of(&self, user: u64) -> usize {
        jump_hash(user, self.slots.len() as u32) as usize
    }

    /// The address currently bound to `slot`.
    pub fn addr(&self, slot: usize) -> &str {
        &self.slots[slot]
    }

    /// All addresses, slot order.
    pub fn addrs(&self) -> &[String] {
        &self.slots
    }

    /// Rebinds `slot` to `addr` (shard handoff) and returns the old
    /// address.
    ///
    /// # Errors
    /// [`ClusterError::Config`] when the slot is out of range or the
    /// address is blank.
    pub fn remap(&mut self, slot: usize, addr: &str) -> Result<String> {
        if slot >= self.slots.len() {
            return Err(ClusterError::Config(format!(
                "slot {slot} out of range (map has {} slots)",
                self.slots.len()
            )));
        }
        let addr = addr.trim();
        if addr.is_empty() {
            return Err(ClusterError::Config("remap address is empty".into()));
        }
        Ok(std::mem::replace(&mut self.slots[slot], addr.to_owned()))
    }

    /// The shard-map file rendering of this map ([`ShardMap::from_file_text`]
    /// round-trips it).
    pub fn to_file_text(&self) -> String {
        let mut out = String::new();
        for addr in &self.slots {
            let _ = writeln!(out, "{addr}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jump_hash_is_deterministic_and_in_range() {
        for user in 0..1000u64 {
            let slot = jump_hash(user, 4);
            assert!(slot < 4);
            assert_eq!(slot, jump_hash(user, 4));
        }
        assert_eq!(jump_hash(123, 1), 0);
        assert_eq!(jump_hash(123, 0), 0);
    }

    #[test]
    fn jump_hash_is_roughly_uniform() {
        let buckets = 8u32;
        let mut counts = vec![0u32; buckets as usize];
        let n = 8000u64;
        for user in 0..n {
            counts[jump_hash(user, buckets) as usize] += 1;
        }
        let expect = n as u32 / buckets;
        for (slot, &c) in counts.iter().enumerate() {
            assert!(
                c > expect / 2 && c < expect * 2,
                "slot {slot} holds {c} of {n} keys (expected ~{expect})"
            );
        }
    }

    #[test]
    fn jump_hash_moves_few_keys_when_growing() {
        // The consistency property: going from n to n+1 buckets moves
        // roughly 1/(n+1) of the keys, never keys between old buckets.
        let n = 4000u64;
        let mut moved = 0u64;
        for user in 0..n {
            let before = jump_hash(user, 4);
            let after = jump_hash(user, 5);
            if before != after {
                assert_eq!(after, 4, "user {user} moved between old buckets");
                moved += 1;
            }
        }
        assert!(
            moved > n / 10 && moved < n / 3,
            "moved {moved} of {n} keys going 4→5 buckets"
        );
    }

    #[test]
    fn shard_map_routes_remaps_and_round_trips() {
        let mut map = ShardMap::from_workers(["127.0.0.1:1", "127.0.0.1:2"]).unwrap();
        assert_eq!(map.len(), 2);
        let slot = map.slot_of(42);
        assert!(slot < 2);
        let old = map.remap(slot, "127.0.0.1:9").unwrap();
        assert_eq!(old, format!("127.0.0.1:{}", slot + 1));
        assert_eq!(map.addr(slot), "127.0.0.1:9");
        // Routing is untouched by the remap.
        assert_eq!(map.slot_of(42), slot);

        let parsed = ShardMap::from_file_text(&map.to_file_text()).unwrap();
        assert_eq!(parsed, map);
        let parsed =
            ShardMap::from_file_text("# workers\n127.0.0.1:1\n\n  127.0.0.1:2  \n").unwrap();
        assert_eq!(parsed.addrs(), ["127.0.0.1:1", "127.0.0.1:2"]);
    }

    #[test]
    fn invalid_maps_are_rejected() {
        assert!(ShardMap::from_workers(Vec::<String>::new()).is_err());
        assert!(ShardMap::from_workers(["127.0.0.1:1", "  "]).is_err());
        assert!(ShardMap::from_file_text("# only comments\n").is_err());
        let mut map = ShardMap::from_workers(["a:1"]).unwrap();
        assert!(map.remap(1, "b:2").is_err());
        assert!(map.remap(0, "").is_err());
    }
}
