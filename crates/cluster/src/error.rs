//! The cluster crate's error enum, shaped like `priste_serve::ServeError`.

use std::fmt;
use std::io;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ClusterError>;

/// Everything that can go wrong starting or running the router.
#[derive(Debug)]
pub enum ClusterError {
    /// Socket-level failure (bind, accept, connect).
    Io(io::Error),
    /// A malformed shard map, remap request, or upstream address.
    Config(String),
    /// An upstream worker broke the HTTP/JSON protocol.
    Upstream(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Io(e) => write!(f, "i/o error: {e}"),
            ClusterError::Config(msg) => write!(f, "cluster configuration error: {msg}"),
            ClusterError::Upstream(msg) => write!(f, "upstream protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClusterError {
    fn from(e: io::Error) -> Self {
        ClusterError::Io(e)
    }
}
