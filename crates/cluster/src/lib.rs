//! `priste_cluster`: multi-process sharded serving for the PriSTE
//! streaming service.
//!
//! PriSTE's per-user ε-event accounting is independent across users, so
//! scaling past one `priste_serve` process is a correctness-preserving
//! horizontal split: every user's sessions, budget ledger, and durable
//! journal live in exactly one **worker** daemon, and a **router**
//! daemon consistent-hashes user ids onto workers. This crate is the
//! router tier — std-only, like the serve crate it fronts.
//!
//! | Piece | Contents |
//! |---|---|
//! | [`hash`] | jump consistent hash + the slot→address [`ShardMap`] |
//! | [`pool`] | per-worker keep-alive pools, `/readyz` probes, the at-most-once forward policy |
//! | [`router`] | the [`Router`] daemon: routing, admin plane, drain |
//!
//! # Topology
//!
//! ```text
//!              clients (JSON over HTTP/1.1, keep-alive)
//!                │
//!           ┌────▼────┐   slot = jump_hash(user, N)
//!           │ router  │───────────────┐
//!           └────┬────┘               │
//!       ┌────────┼────────┐          probes /readyz,
//!       ▼        ▼        ▼          remaps slots on handoff
//!   worker 0  worker 1  worker N-1
//!   (serve +  (serve +  (serve +
//!    durable   durable   durable
//!    dir 0)    dir 1)    dir N-1)
//! ```
//!
//! Workers are plain `priste_serve` daemons: same JSON protocol, same
//! drain semantics, each with its own durable directory. The router
//! adds fail-fast 503 + `Retry-After` when a worker is down,
//! retry-with-backoff on connection establishment (never after request
//! bytes are sent — budget spends must be at-most-once), and an
//! `x-request-id` that traces one request across both processes.
//!
//! # Shard handoff
//!
//! Moving a slot to a new worker never rehashes users:
//!
//! 1. **Drain** the old worker (SIGTERM or `DrainHandle::drain`) — its
//!    `wait()` writes a durable checkpoint.
//! 2. **Move** its durable directory to the new worker's host.
//! 3. **Adopt**: start a fresh worker on that directory
//!    (`SessionManager::open_durable`); recovery replays the journal,
//!    so recovered spend ≥ committed spend.
//! 4. **Remap**: `POST /cluster/remap {"slot": i, "addr": "H:P"}` — the
//!    router rebinds the slot, probes the new worker, and traffic
//!    resumes.
//!
//! # Cluster metrics
//!
//! The router exports [`METRIC_SCHEMA`] on the registry passed to
//! [`Router::start`]: request latency by route/status, per-worker
//! upstream latency and health, error/retry/remap counters. Scrape
//! `GET /metrics` on the router for the aggregated cluster view.

#![warn(missing_docs)]

pub mod error;
pub mod hash;
pub mod pool;
pub mod router;

pub use error::{ClusterError, Result};
pub use hash::{jump_hash, ShardMap};
pub use pool::PoolConfig;
pub use router::{Router, RouterConfig, RouterDrainHandle, RouterSummary, WorkerStatus};

/// Every metric the router exports, as `(base name, kind, help)` rows —
/// the cluster rows of the CLI `metrics` reference table, kept honest
/// by the crate's `metrics_schema_covers_router_exports` test.
pub const METRIC_SCHEMA: &[(&str, &str, &str)] = &[
    (
        "cluster_request_seconds",
        "histogram",
        "client-observed router request latency (also per route/status as {route=\"R\",status=\"S\"})",
    ),
    (
        "cluster_upstream_request_seconds",
        "histogram",
        "router→worker exchange latency per worker slot, route, and status",
    ),
    (
        "cluster_upstream_errors_total",
        "counter",
        "upstream failures per worker slot and kind (connect, io, malformed)",
    ),
    (
        "cluster_upstream_retries_total",
        "counter",
        "connection-establishment retries (the only retries the at-most-once policy allows)",
    ),
    (
        "cluster_worker_up",
        "gauge",
        "per-worker health from the /readyz prober (1 serving, 0 down or draining)",
    ),
    (
        "cluster_remaps_total",
        "counter",
        "slot rebinds applied via /cluster/remap or Router::rebind_slot (shard handoffs)",
    ),
    (
        "cluster_requests_in_flight",
        "gauge",
        "client requests currently being routed",
    ),
    (
        "cluster_connections_total",
        "counter",
        "client connections accepted by the router",
    ),
    (
        "cluster_errors_total",
        "counter",
        "router responses with a 4xx/5xx status, per route",
    ),
    (
        "cluster_slots",
        "gauge",
        "number of slots in the shard map (fixed at router start)",
    ),
    (
        "span_cluster_request_seconds",
        "histogram",
        "span timings for routed requests (same data as cluster_request_seconds, via the span API)",
    ),
];
