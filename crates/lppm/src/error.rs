use std::fmt;

/// Errors produced by mechanism construction and use.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LppmError {
    /// A privacy budget was non-positive or non-finite.
    InvalidBudget {
        /// The offending value.
        value: f64,
    },
    /// A δ parameter was outside `(0, 1)`.
    InvalidDelta {
        /// The offending value.
        value: f64,
    },
    /// A cell index exceeded the mechanism's domain.
    CellOutOfRange {
        /// Offending 0-based cell index.
        cell: usize,
        /// Domain size.
        num_cells: usize,
    },
    /// A prior distribution failed validation.
    InvalidPrior(priste_linalg::LinalgError),
    /// The restricted output domain became empty (δ-location set of size 0).
    EmptyOutputDomain,
}

impl fmt::Display for LppmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LppmError::InvalidBudget { value } => {
                write!(f, "privacy budget must be positive and finite, got {value}")
            }
            LppmError::InvalidDelta { value } => {
                write!(f, "delta must lie in (0, 1), got {value}")
            }
            LppmError::CellOutOfRange { cell, num_cells } => {
                write!(f, "cell {cell} out of range for {num_cells}-cell mechanism")
            }
            LppmError::InvalidPrior(e) => write!(f, "invalid prior distribution: {e}"),
            LppmError::EmptyOutputDomain => write!(f, "restricted output domain is empty"),
        }
    }
}

impl std::error::Error for LppmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LppmError::InvalidPrior(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_values() {
        assert!(LppmError::InvalidBudget { value: -1.0 }
            .to_string()
            .contains("-1"));
        assert!(LppmError::InvalidDelta { value: 2.0 }
            .to_string()
            .contains('2'));
    }
}
