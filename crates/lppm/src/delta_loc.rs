//! δ-location-set privacy (Xiao & Xiong, CCS'15) — the paper's §IV.D case
//! study.
//!
//! "The key idea is that hiding the true location in any impossible
//! locations … is a lost cause … it restricts the output domain of the
//! emission matrix to δ-location set, which is a set containing minimum
//! number of locations that have prior probability sum no less than 1 − δ."
//!
//! The mechanism is *adaptive*: at every timestamp the posterior from the
//! previous release is advanced through the Markov model (`p_t⁻ = p_{t−1}⁺·M`,
//! Algorithm 3 line 2), the δ-location set `ΔX_t` is carved from `p_t⁻`, an
//! α-PLM restricted to `ΔX_t` releases the location, and the posterior is
//! refreshed by Eq. (21). [`PosteriorTracker`] owns that loop's state;
//! [`DeltaLocationSet::mechanism_for`] materializes the per-step restricted
//! mechanism as an ordinary [`Lppm`] so the quantification engine treats it
//! like any other emission matrix (the engine already supports per-`t`
//! matrices — see §III.C's closing remark).

use crate::mechanism::{sample_row, Lppm};
use crate::planar_laplace::PlanarLaplace;
use crate::{LppmError, Result};
use priste_geo::{CellId, GridMap, Region};
use priste_linalg::{Matrix, Vector};
use rand::RngCore;

/// Factory for per-timestep δ-location-set mechanisms over a fixed grid.
#[derive(Debug, Clone)]
pub struct DeltaLocationSet {
    grid: GridMap,
    delta: f64,
}

impl DeltaLocationSet {
    /// Creates a factory with privacy parameter `delta ∈ (0, 1)`; larger δ
    /// means a smaller admissible output set (weaker privacy, better
    /// utility).
    ///
    /// # Errors
    /// [`LppmError::InvalidDelta`] for δ outside `(0, 1)`.
    pub fn new(grid: GridMap, delta: f64) -> Result<Self> {
        if !(delta.is_finite() && delta > 0.0 && delta < 1.0) {
            return Err(LppmError::InvalidDelta { value: delta });
        }
        Ok(DeltaLocationSet { grid, delta })
    }

    /// The δ parameter.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The underlying grid.
    pub fn grid(&self) -> &GridMap {
        &self.grid
    }

    /// Computes the δ-location set of a prior: the minimum number of cells
    /// (taken in descending prior order) whose mass reaches `1 − δ`. Never
    /// empty — the top cell is always included.
    ///
    /// # Errors
    /// [`LppmError::InvalidPrior`] if `prior` is not a distribution over the
    /// grid's cells.
    pub fn location_set(&self, prior: &Vector) -> Result<Region> {
        if prior.len() != self.grid.num_cells() {
            return Err(LppmError::InvalidPrior(
                priste_linalg::LinalgError::DimensionMismatch {
                    op: "delta-location-set prior",
                    expected: self.grid.num_cells(),
                    actual: prior.len(),
                },
            ));
        }
        prior
            .validate_distribution()
            .map_err(LppmError::InvalidPrior)?;
        let mut order: Vec<usize> = (0..prior.len()).collect();
        order.sort_by(|&i, &j| {
            prior[j]
                .partial_cmp(&prior[i])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut set = Region::empty(prior.len());
        let mut mass = 0.0;
        for &i in &order {
            set.insert(CellId(i)).expect("index in range");
            mass += prior[i];
            if mass >= 1.0 - self.delta {
                break;
            }
        }
        Ok(set)
    }

    /// Builds the restricted α-PLM for one timestep: PLM probabilities with
    /// output domain clipped to the δ-location set of `prior` and rows
    /// renormalized. True locations outside the set release through their
    /// *surrogate* — the nearest in-set cell — mirroring Xiao & Xiong's
    /// handling of drift outside the admissible set.
    ///
    /// # Errors
    /// Propagates prior validation and PLM construction errors.
    pub fn mechanism_for(&self, prior: &Vector, alpha: f64) -> Result<RestrictedPlm> {
        let set = self.location_set(prior)?;
        RestrictedPlm::new(self.grid.clone(), set, alpha)
    }
}

/// An α-PLM with its output domain restricted to a fixed cell set — the
/// concrete per-timestep mechanism of Algorithm 3 (line 4: "o_t ← α-PLM
/// within ∆X_t").
#[derive(Debug, Clone)]
pub struct RestrictedPlm {
    grid: GridMap,
    set: Region,
    alpha: f64,
    emission: Matrix,
}

impl RestrictedPlm {
    /// Restricts a fresh α-PLM over `grid` to the output domain `set`.
    ///
    /// # Errors
    /// [`LppmError::EmptyOutputDomain`] if `set` is empty;
    /// [`LppmError::InvalidBudget`] for a bad α.
    pub fn new(grid: GridMap, set: Region, alpha: f64) -> Result<Self> {
        if set.is_empty() {
            return Err(LppmError::EmptyOutputDomain);
        }
        let base = PlanarLaplace::new(grid.clone(), alpha)?;
        let m = grid.num_cells();
        let mask = set.indicator();
        // Surrogate per true cell: itself when inside the set, else the
        // nearest set member (ties broken by lower index).
        let surrogate: Vec<usize> = (0..m)
            .map(|i| {
                if set.contains(CellId(i)) {
                    i
                } else {
                    set.iter()
                        .min_by(|&a, &b| {
                            let da = grid.distance_km(CellId(i), a).expect("in range");
                            let db = grid.distance_km(CellId(i), b).expect("in range");
                            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .expect("set is non-empty")
                        .index()
                }
            })
            .collect();
        let mut emission = Matrix::zeros(m, m);
        for (i, &src) in surrogate.iter().enumerate() {
            let base_row = base.emission_matrix().row(src);
            let row = emission.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                *v = base_row[j] * mask[j];
            }
        }
        emission.normalize_rows_mut();
        Ok(RestrictedPlm {
            grid,
            set,
            alpha,
            emission,
        })
    }

    /// The admissible output set `ΔX_t`.
    pub fn output_set(&self) -> &Region {
        &self.set
    }
}

impl Lppm for RestrictedPlm {
    fn num_cells(&self) -> usize {
        self.grid.num_cells()
    }

    fn budget(&self) -> f64 {
        self.alpha
    }

    fn emission_matrix(&self) -> &Matrix {
        &self.emission
    }

    fn perturb(&self, true_loc: CellId, rng: &mut dyn RngCore) -> CellId {
        CellId(sample_row(self.emission.row(true_loc.index()), rng))
    }

    fn with_budget(&self, budget: f64) -> Result<Box<dyn Lppm>> {
        Ok(Box::new(RestrictedPlm::new(
            self.grid.clone(),
            self.set.clone(),
            budget,
        )?))
    }
}

/// Owns the prior/posterior recursion of Algorithm 3.
#[derive(Debug, Clone)]
pub struct PosteriorTracker {
    posterior: Vector,
}

impl PosteriorTracker {
    /// Starts the recursion at the initial distribution `π` (`p₀⁺ = π`,
    /// Algorithm 3's note below line 2).
    ///
    /// # Errors
    /// [`LppmError::InvalidPrior`] if `initial` is not a distribution.
    pub fn new(initial: Vector) -> Result<Self> {
        initial
            .validate_distribution()
            .map_err(LppmError::InvalidPrior)?;
        Ok(PosteriorTracker { posterior: initial })
    }

    /// Current posterior `p_t⁺`.
    pub fn posterior(&self) -> &Vector {
        &self.posterior
    }

    /// Markov construction step (line 2): `p_t⁻ = p_{t−1}⁺ · M`.
    ///
    /// # Errors
    /// [`LppmError::InvalidPrior`] on dimension mismatch.
    pub fn advance(&self, transition: &Matrix) -> Result<Vector> {
        transition
            .try_vecmat(&self.posterior)
            .map_err(LppmError::InvalidPrior)
    }

    /// Bayes update (Eq. (21)): given the prior `p_t⁻` used for this step,
    /// the released observation and its emission column, replaces the stored
    /// posterior with
    /// `p_t⁺[i] = Pr(o_t | u_t = s_i) · p_t⁻[i] / Σ_j Pr(o_t | u_t = s_j) · p_t⁻[j]`.
    ///
    /// # Errors
    /// [`LppmError::InvalidPrior`] if the update normalizer is zero (the
    /// observation was impossible under the prior — a mechanism bug).
    pub fn update(&mut self, prior: &Vector, emission_column: &Vector) -> Result<()> {
        let unnorm = prior
            .hadamard(emission_column)
            .map_err(LppmError::InvalidPrior)?;
        let mut post = unnorm;
        post.normalize_mut().map_err(LppmError::InvalidPrior)?;
        self.posterior = post;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid4() -> GridMap {
        GridMap::new(2, 2, 1.0).unwrap()
    }

    #[test]
    fn delta_validation() {
        assert!(DeltaLocationSet::new(grid4(), 0.0).is_err());
        assert!(DeltaLocationSet::new(grid4(), 1.0).is_err());
        assert!(DeltaLocationSet::new(grid4(), f64::NAN).is_err());
        assert!(DeltaLocationSet::new(grid4(), 0.3).is_ok());
    }

    #[test]
    fn location_set_takes_minimal_prefix() {
        let dls = DeltaLocationSet::new(grid4(), 0.3).unwrap();
        let prior = Vector::from(vec![0.5, 0.3, 0.15, 0.05]);
        // Need mass ≥ 0.7: {s1} has 0.5, {s1,s2} has 0.8 ⇒ two cells.
        let set = dls.location_set(&prior).unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.contains(CellId(0)) && set.contains(CellId(1)));
    }

    #[test]
    fn location_set_never_empty_even_for_huge_delta() {
        let dls = DeltaLocationSet::new(grid4(), 0.999).unwrap();
        let prior = Vector::uniform(4);
        let set = dls.location_set(&prior).unwrap();
        assert!(!set.is_empty());
    }

    #[test]
    fn location_set_rejects_bad_priors() {
        let dls = DeltaLocationSet::new(grid4(), 0.2).unwrap();
        assert!(dls.location_set(&Vector::uniform(5)).is_err());
        assert!(dls
            .location_set(&Vector::from(vec![0.5, 0.5, 0.5, 0.5]))
            .is_err());
    }

    #[test]
    fn smaller_delta_gives_larger_set() {
        let prior = Vector::from(vec![0.4, 0.3, 0.2, 0.1]);
        let tight = DeltaLocationSet::new(grid4(), 0.05).unwrap();
        let loose = DeltaLocationSet::new(grid4(), 0.5).unwrap();
        assert!(
            tight.location_set(&prior).unwrap().len() >= loose.location_set(&prior).unwrap().len()
        );
    }

    #[test]
    fn restricted_emission_only_outputs_inside_set() {
        let set = Region::from_cells(4, [CellId(0), CellId(1)]).unwrap();
        let plm = RestrictedPlm::new(grid4(), set, 1.0).unwrap();
        plm.emission_matrix().validate_stochastic().unwrap();
        for i in 0..4 {
            assert_eq!(plm.emission_matrix().get(i, 2), 0.0);
            assert_eq!(plm.emission_matrix().get(i, 3), 0.0);
        }
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let o = plm.perturb(CellId(3), &mut rng);
            assert!(o.index() < 2, "emitted {o:?} outside set");
        }
    }

    #[test]
    fn out_of_set_true_location_uses_nearest_surrogate() {
        // Grid 2x2, set = {cell 0}. Every row equals the row of cell 0,
        // restricted: all mass on cell 0.
        let set = Region::from_cells(4, [CellId(0)]).unwrap();
        let plm = RestrictedPlm::new(grid4(), set, 1.0).unwrap();
        for i in 0..4 {
            assert_eq!(plm.emission_matrix().get(i, 0), 1.0);
        }
    }

    #[test]
    fn surrogate_prefers_closer_cell() {
        // 1x4 grid, set {0, 3}: cell 1's surrogate is 0, cell 2's is 3.
        let grid = GridMap::new(1, 4, 1.0).unwrap();
        let set = Region::from_cells(4, [CellId(0), CellId(3)]).unwrap();
        let plm = RestrictedPlm::new(grid, set, 2.0).unwrap();
        let e = plm.emission_matrix();
        // Row 1 should match row 0; row 2 should match row 3.
        for j in 0..4 {
            assert!((e.get(1, j) - e.get(0, j)).abs() < 1e-12);
            assert!((e.get(2, j) - e.get(3, j)).abs() < 1e-12);
        }
        assert!(e.get(1, 0) > e.get(1, 3));
        assert!(e.get(2, 3) > e.get(2, 0));
    }

    #[test]
    fn empty_set_is_rejected() {
        assert!(matches!(
            RestrictedPlm::new(grid4(), Region::empty(4), 1.0),
            Err(LppmError::EmptyOutputDomain)
        ));
    }

    #[test]
    fn posterior_tracker_follows_bayes() {
        let mut tracker = PosteriorTracker::new(Vector::uniform(2)).unwrap();
        // Transition: stay with prob 0.9.
        let m = Matrix::from_rows(&[vec![0.9, 0.1], vec![0.1, 0.9]]).unwrap();
        let prior = tracker.advance(&m).unwrap();
        assert!((prior.sum() - 1.0).abs() < 1e-12);
        // Observation twice as likely under state 0.
        let emission = Vector::from(vec![0.6, 0.3]);
        tracker.update(&prior, &emission).unwrap();
        let post = tracker.posterior();
        assert!((post[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((post.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn posterior_update_rejects_impossible_observation() {
        let mut tracker = PosteriorTracker::new(Vector::from(vec![1.0, 0.0])).unwrap();
        let prior = Vector::from(vec![1.0, 0.0]);
        let emission = Vector::from(vec![0.0, 0.5]); // impossible given prior
        assert!(tracker.update(&prior, &emission).is_err());
    }

    #[test]
    fn tracker_rejects_non_distribution() {
        assert!(PosteriorTracker::new(Vector::from(vec![0.5, 0.2])).is_err());
    }

    #[test]
    fn mechanism_for_integrates_prior_and_budget() {
        let dls = DeltaLocationSet::new(grid4(), 0.2).unwrap();
        let prior = Vector::from(vec![0.7, 0.2, 0.08, 0.02]);
        let plm = dls.mechanism_for(&prior, 0.5).unwrap();
        assert_eq!(plm.budget(), 0.5);
        assert!(plm.output_set().contains(CellId(0)));
        assert!(!plm.output_set().contains(CellId(3)));
        let halved = plm.with_budget(0.25).unwrap();
        assert_eq!(halved.budget(), 0.25);
    }
}
