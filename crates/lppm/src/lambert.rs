//! Real branches of the Lambert W function.
//!
//! The Planar Laplace mechanism's radial inverse CDF is
//! `r = −(1/α)·(W₋₁((p−1)/e) + 1)` (Andrés et al., CCS'13 §4.1), so drawing
//! continuous geo-indistinguishable noise needs the secondary real branch
//! `W₋₁` on `[−1/e, 0)`. Both real branches are implemented from scratch:
//! an initial asymptotic/series guess polished by Halley iteration, accurate
//! to ~1e-14 across the domain.

/// `1/e`, the branch point of the real Lambert W function.
pub const INV_E: f64 = 1.0 / std::f64::consts::E;

/// Principal branch `W₀(x)` for `x ≥ −1/e`.
///
/// Satisfies `W₀(x)·e^{W₀(x)} = x` with `W₀(x) ≥ −1`.
/// Returns `NaN` outside the domain.
pub fn lambert_w0(x: f64) -> f64 {
    if x.is_nan() || x < -INV_E {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if (x + INV_E).abs() < 1e-300 {
        return -1.0;
    }
    // Initial guesses per region (Corless et al. 1996).
    let mut w = if x < -0.25 {
        // Series around the branch point: W ≈ −1 + p − p²/3, p = √(2(ex+1)).
        let p = (2.0 * (std::f64::consts::E * x + 1.0)).sqrt();
        -1.0 + p - p * p / 3.0
    } else if x < 1.0 {
        // Pade-like start near 0: W ≈ x(1 − x + 1.5x²)/(1 + 0.5x).
        x * (1.0 - x + 1.5 * x * x) / (1.0 + 0.5 * x)
    } else {
        // Asymptotic: W ≈ ln x − ln ln x.
        let l = x.ln();
        l - l.ln().max(0.0)
    };
    halley(x, &mut w);
    w
}

/// Secondary real branch `W₋₁(x)` for `x ∈ [−1/e, 0)`.
///
/// Satisfies `W₋₁(x)·e^{W₋₁(x)} = x` with `W₋₁(x) ≤ −1`.
/// Returns `NaN` outside the domain.
pub fn lambert_wm1(x: f64) -> f64 {
    if x.is_nan() || !(-INV_E..0.0).contains(&x) {
        return f64::NAN;
    }
    if (x + INV_E).abs() < 1e-300 {
        return -1.0;
    }
    // Initial guess: near the branch point use the √ series (negative root);
    // near zero use the asymptotic W₋₁ ≈ ln(−x) − ln(−ln(−x)).
    let mut w = if x < -0.25 {
        let p = (2.0 * (std::f64::consts::E * x + 1.0)).sqrt();
        -1.0 - p - p * p / 3.0
    } else {
        let l = (-x).ln();
        l - (-l).ln()
    };
    halley(x, &mut w);
    w
}

/// Halley's iteration for `w·e^w = x`; cubic convergence, ≤ 50 steps.
fn halley(x: f64, w: &mut f64) {
    for _ in 0..50 {
        let ew = w.exp();
        let f = *w * ew - x;
        if f == 0.0 {
            return;
        }
        let denom = ew * (*w + 1.0) - (*w + 2.0) * f / (2.0 * *w + 2.0);
        if denom == 0.0 || !denom.is_finite() {
            return;
        }
        let step = f / denom;
        *w -= step;
        if step.abs() <= 1e-16 * (1.0 + w.abs()) {
            return;
        }
    }
}

/// Inverse CDF of the radial component of planar Laplace noise with budget
/// `alpha`: given `p ∈ [0, 1)`, the radius `r` with
/// `P(R ≤ r) = 1 − (1 + αr)·e^{−αr} = p`, solved in closed form through
/// `W₋₁` (Andrés et al., CCS'13, Eq. for C_ε⁻¹).
///
/// # Panics
/// Panics if `alpha ≤ 0` or `p ∉ [0, 1)` (programmer errors — the sampler
/// always feeds uniform variates and a validated budget).
pub fn planar_laplace_radius_icdf(alpha: f64, p: f64) -> f64 {
    assert!(
        alpha > 0.0 && alpha.is_finite(),
        "alpha must be positive, got {alpha}"
    );
    assert!((0.0..1.0).contains(&p), "p must lie in [0,1), got {p}");
    if p == 0.0 {
        return 0.0;
    }
    let w = lambert_wm1((p - 1.0) * INV_E);
    -(w + 1.0) / alpha
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_inverse(w: f64, x: f64) {
        let back = w * w.exp();
        assert!(
            (back - x).abs() <= 1e-12 * (1.0 + x.abs()),
            "w={w} gives w·e^w={back}, wanted {x}"
        );
    }

    #[test]
    fn w0_known_values() {
        assert!((lambert_w0(0.0)).abs() < 1e-15);
        // W0(e) = 1.
        assert!((lambert_w0(std::f64::consts::E) - 1.0).abs() < 1e-14);
        // W0(1) = Ω ≈ 0.5671432904097838.
        assert!((lambert_w0(1.0) - 0.567_143_290_409_783_8).abs() < 1e-14);
    }

    #[test]
    fn w0_is_functional_inverse_across_domain() {
        for &x in &[-INV_E + 1e-9, -0.3, -0.1, 0.1, 0.5, 1.0, 5.0, 100.0, 1e6] {
            check_inverse(lambert_w0(x), x);
        }
    }

    #[test]
    fn wm1_known_values() {
        // W₋₁(−1/e) = −1.
        assert!((lambert_wm1(-INV_E) + 1.0).abs() < 1e-7);
        // W₋₁(−0.1) ≈ −3.577152063957297.
        assert!((lambert_wm1(-0.1) + 3.577_152_063_957_297).abs() < 1e-12);
    }

    #[test]
    fn wm1_is_functional_inverse_across_domain() {
        for &x in &[-INV_E + 1e-12, -0.35, -0.2, -0.1, -0.01, -1e-6, -1e-12] {
            check_inverse(lambert_wm1(x), x);
        }
    }

    #[test]
    fn wm1_is_below_w0_on_shared_domain() {
        for &x in &[-0.3, -0.2, -0.05, -0.001] {
            assert!(lambert_wm1(x) < lambert_w0(x));
            assert!(lambert_wm1(x) <= -1.0);
            assert!(lambert_w0(x) >= -1.0);
        }
    }

    #[test]
    fn out_of_domain_is_nan() {
        assert!(lambert_w0(-1.0).is_nan());
        assert!(lambert_wm1(0.1).is_nan());
        assert!(lambert_wm1(-1.0).is_nan());
        assert!(lambert_w0(f64::NAN).is_nan());
    }

    #[test]
    fn radius_icdf_inverts_radial_cdf() {
        let alpha = 0.7;
        for &p in &[0.0, 0.1, 0.5, 0.9, 0.999] {
            let r = planar_laplace_radius_icdf(alpha, p);
            assert!(r >= 0.0);
            let cdf = 1.0 - (1.0 + alpha * r) * (-alpha * r).exp();
            assert!((cdf - p).abs() < 1e-10, "p={p}: r={r}, cdf={cdf}");
        }
    }

    #[test]
    fn radius_icdf_is_monotone_and_scales_with_alpha() {
        let r1 = planar_laplace_radius_icdf(1.0, 0.5);
        let r2 = planar_laplace_radius_icdf(1.0, 0.9);
        assert!(r2 > r1);
        // Larger budget ⇒ tighter noise ⇒ smaller radius at the same p.
        let tight = planar_laplace_radius_icdf(2.0, 0.5);
        assert!(tight < r1);
        // Exact scaling: r(α, p) = r(1, p)/α.
        assert!((tight - r1 / 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn radius_icdf_rejects_bad_alpha() {
        let _ = planar_laplace_radius_icdf(0.0, 0.5);
    }
}
