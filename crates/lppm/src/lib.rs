//! Location Privacy-Preserving Mechanisms (LPPMs) for PriSTE.
//!
//! The paper models every LPPM as an *emission matrix* (§II.A): a
//! row-stochastic matrix taking the true cell as input and emitting a
//! perturbed cell. This crate provides:
//!
//! * [`Lppm`] — the emission-matrix abstraction consumed by the
//!   quantification engine and the PriSTE framework, including the
//!   budget-scaling hook that Algorithm 2's exponential decay drives.
//! * [`PlanarLaplace`] — the α-Planar-Laplace mechanism of
//!   Geo-indistinguishability (Andrés et al., CCS'13), §IV.C's case study:
//!   continuous polar-Laplace sampling via the Lambert `W₋₁` function plus a
//!   grid-discretized emission matrix.
//! * [`DeltaLocationSet`] — δ-location-set privacy (Xiao & Xiong, CCS'15),
//!   §IV.D's case study: the emission domain restricted to the smallest cell
//!   set carrying prior mass ≥ 1−δ, with the Eq. (21) posterior update.
//! * [`UniformMechanism`] / [`RandomizedResponse`] /
//!   [`ExponentialMechanism`] — baselines: the α→0 limit that §IV.C's
//!   convergence argument relies on, the classic discrete ε-DP mechanism,
//!   and an exactly geo-indistinguishable discrete alternative to the
//!   truncated Planar Laplace.
//! * [`lambert`] — a from-scratch Lambert W implementation (both real
//!   branches), the only special function the continuous sampler needs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod delta_loc;
mod error;
pub mod lambert;
mod mechanism;
mod planar_laplace;
mod simple;

pub use delta_loc::{DeltaLocationSet, PosteriorTracker};
pub use error::LppmError;
pub use mechanism::Lppm;
pub use planar_laplace::PlanarLaplace;
pub use simple::{ExponentialMechanism, RandomizedResponse, UniformMechanism};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, LppmError>;
