//! Baseline mechanisms: uniform release, randomized response, and the
//! discrete exponential mechanism.

use crate::mechanism::{sample_row, Lppm};
use crate::{LppmError, Result};
use priste_geo::{CellId, GridMap};
use priste_linalg::Matrix;
use rand::RngCore;

/// The uniform mechanism: every output cell is equally likely regardless of
/// the true location.
///
/// This is the `α → 0` limit of the Planar Laplace mechanism, and the reason
/// Algorithm 2's budget halving always terminates (§IV.C: "When α = 0, it
/// releases no useful information about the true location … Equations (15)
/// and (16) are always true in this situation").
#[derive(Debug, Clone)]
pub struct UniformMechanism {
    emission: Matrix,
}

impl UniformMechanism {
    /// Builds the uniform mechanism over `num_cells` states.
    ///
    /// # Panics
    /// Panics if `num_cells == 0`.
    pub fn new(num_cells: usize) -> Self {
        assert!(num_cells > 0, "uniform mechanism over zero cells");
        let mut e = Matrix::zeros(num_cells, num_cells);
        let p = 1.0 / num_cells as f64;
        for r in 0..num_cells {
            for v in e.row_mut(r) {
                *v = p;
            }
        }
        UniformMechanism { emission: e }
    }
}

impl Lppm for UniformMechanism {
    fn num_cells(&self) -> usize {
        self.emission.rows()
    }

    fn budget(&self) -> f64 {
        0.0
    }

    fn emission_matrix(&self) -> &Matrix {
        &self.emission
    }

    fn perturb(&self, _true_loc: CellId, rng: &mut dyn RngCore) -> CellId {
        CellId(sample_row(self.emission.row(0), rng))
    }

    fn with_budget(&self, _budget: f64) -> Result<Box<dyn Lppm>> {
        Ok(Box::new(self.clone()))
    }
}

/// Randomized response over the discrete cell domain: report the true cell
/// with probability `e^ε / (e^ε + m − 1)`, otherwise a uniformly random
/// *other* cell. Satisfies ε-differential privacy over locations and serves
/// as a shape-contrast baseline to the distance-aware Planar Laplace.
#[derive(Debug, Clone)]
pub struct RandomizedResponse {
    epsilon: f64,
    emission: Matrix,
}

impl RandomizedResponse {
    /// Builds an ε-randomized-response mechanism over `num_cells` states.
    ///
    /// # Errors
    /// [`LppmError::InvalidBudget`] for a non-positive or non-finite `ε`.
    ///
    /// # Panics
    /// Panics if `num_cells == 0`.
    pub fn new(num_cells: usize, epsilon: f64) -> Result<Self> {
        assert!(num_cells > 0, "randomized response over zero cells");
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(LppmError::InvalidBudget { value: epsilon });
        }
        let e_eps = epsilon.exp();
        let denom = e_eps + (num_cells as f64 - 1.0);
        let p_true = e_eps / denom;
        let p_other = 1.0 / denom;
        let mut e = Matrix::zeros(num_cells, num_cells);
        for r in 0..num_cells {
            for (c, v) in e.row_mut(r).iter_mut().enumerate() {
                *v = if c == r { p_true } else { p_other };
            }
        }
        Ok(RandomizedResponse {
            epsilon,
            emission: e,
        })
    }
}

impl Lppm for RandomizedResponse {
    fn num_cells(&self) -> usize {
        self.emission.rows()
    }

    fn budget(&self) -> f64 {
        self.epsilon
    }

    fn emission_matrix(&self) -> &Matrix {
        &self.emission
    }

    fn perturb(&self, true_loc: CellId, rng: &mut dyn RngCore) -> CellId {
        CellId(sample_row(self.emission.row(true_loc.index()), rng))
    }

    fn with_budget(&self, budget: f64) -> Result<Box<dyn Lppm>> {
        Ok(Box::new(RandomizedResponse::new(self.num_cells(), budget)?))
    }
}

/// The discrete exponential mechanism over grid cells with the negative
/// Euclidean distance as quality score: `Pr(o = s_j | u = s_i) ∝
/// exp(−α·d(i,j)/2)`.
///
/// Unlike the grid-discretized [`crate::PlanarLaplace`] (whose boundary
/// truncation perturbs the bound — see `PlanarLaplace::inside_mass`), this
/// mechanism satisfies α-geo-indistinguishability **exactly** on the cell
/// domain: by the triangle inequality,
/// `Pr(o|x₁)/Pr(o|x₂) ≤ exp(α·d(x₁,x₂))` — the normalizers contribute a
/// second `exp(α·d/2)` factor, which is why the score uses `α/2`.
#[derive(Debug, Clone)]
pub struct ExponentialMechanism {
    grid: GridMap,
    alpha: f64,
    emission: Matrix,
}

impl ExponentialMechanism {
    /// Builds the mechanism over `grid` at budget `alpha`.
    ///
    /// # Errors
    /// [`LppmError::InvalidBudget`] for a non-positive or non-finite α.
    pub fn new(grid: GridMap, alpha: f64) -> Result<Self> {
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(LppmError::InvalidBudget { value: alpha });
        }
        let m = grid.num_cells();
        let dist = grid.distance_table();
        let mut e = Matrix::zeros(m, m);
        for (i, dist_row) in dist.iter().enumerate() {
            for (j, v) in e.row_mut(i).iter_mut().enumerate() {
                *v = (-0.5 * alpha * dist_row[j]).exp();
            }
        }
        e.normalize_rows_mut();
        Ok(ExponentialMechanism {
            grid,
            alpha,
            emission: e,
        })
    }

    /// The underlying grid.
    pub fn grid(&self) -> &GridMap {
        &self.grid
    }
}

impl Lppm for ExponentialMechanism {
    fn num_cells(&self) -> usize {
        self.grid.num_cells()
    }

    fn budget(&self) -> f64 {
        self.alpha
    }

    fn emission_matrix(&self) -> &Matrix {
        &self.emission
    }

    fn perturb(&self, true_loc: CellId, rng: &mut dyn RngCore) -> CellId {
        CellId(sample_row(self.emission.row(true_loc.index()), rng))
    }

    fn with_budget(&self, budget: f64) -> Result<Box<dyn Lppm>> {
        Ok(Box::new(ExponentialMechanism::new(
            self.grid.clone(),
            budget,
        )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_rows_are_uniform() {
        let u = UniformMechanism::new(4);
        u.emission_matrix().validate_stochastic().unwrap();
        for r in 0..4 {
            assert_eq!(u.emission_matrix().row(r), &[0.25; 4]);
        }
        assert_eq!(u.budget(), 0.0);
    }

    #[test]
    fn uniform_perturb_ignores_input() {
        let u = UniformMechanism::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[u.perturb(CellId(2), &mut rng).index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rr_satisfies_exact_dp_ratio() {
        let m = 5;
        let eps = 1.3;
        let rr = RandomizedResponse::new(m, eps).unwrap();
        let e = rr.emission_matrix();
        e.validate_stochastic().unwrap();
        let bound = eps.exp() * (1.0 + 1e-12);
        for x1 in 0..m {
            for x2 in 0..m {
                for o in 0..m {
                    assert!(e.get(x1, o) <= bound * e.get(x2, o));
                }
            }
        }
        // The bound is tight at (o = x1, x2 ≠ x1).
        let ratio = e.get(0, 0) / e.get(1, 0);
        assert!((ratio - eps.exp()).abs() < 1e-12);
    }

    #[test]
    fn rr_rejects_bad_epsilon() {
        assert!(matches!(
            RandomizedResponse::new(3, 0.0),
            Err(LppmError::InvalidBudget { .. })
        ));
        assert!(RandomizedResponse::new(3, f64::NAN).is_err());
    }

    #[test]
    fn rr_with_budget_rebuilds() {
        let rr = RandomizedResponse::new(4, 2.0).unwrap();
        let half = rr.with_budget(1.0).unwrap();
        assert_eq!(half.budget(), 1.0);
        // Smaller ε ⇒ less probability on the truth.
        assert!(half.emission_matrix().get(0, 0) < rr.emission_matrix().get(0, 0));
    }

    #[test]
    fn single_cell_domain_is_degenerate_but_valid() {
        let u = UniformMechanism::new(1);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(u.perturb(CellId(0), &mut rng), CellId(0));
    }

    #[test]
    fn exponential_mechanism_satisfies_exact_geo_indistinguishability() {
        let grid = GridMap::new(4, 4, 1.0).unwrap();
        let alpha = 1.3;
        let em = ExponentialMechanism::new(grid.clone(), alpha).unwrap();
        em.emission_matrix().validate_stochastic().unwrap();
        let e = em.emission_matrix();
        for x1 in 0..16 {
            for x2 in 0..16 {
                let d = grid.distance_km(CellId(x1), CellId(x2)).unwrap();
                let bound = (alpha * d).exp() * (1.0 + 1e-12);
                for o in 0..16 {
                    assert!(
                        e.get(x1, o) <= bound * e.get(x2, o),
                        "({x1},{x2})→{o}: exact geo-ind violated"
                    );
                }
            }
        }
    }

    #[test]
    fn exponential_mechanism_decays_with_distance() {
        let grid = GridMap::new(1, 6, 1.0).unwrap();
        let em = ExponentialMechanism::new(grid, 2.0).unwrap();
        let row = em.emission_matrix().row(0);
        for w in row.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn exponential_mechanism_budget_api() {
        let grid = GridMap::new(2, 2, 1.0).unwrap();
        assert!(ExponentialMechanism::new(grid.clone(), 0.0).is_err());
        let em = ExponentialMechanism::new(grid, 1.0).unwrap();
        assert_eq!(em.budget(), 1.0);
        let half = em.with_budget(0.5).unwrap();
        assert_eq!(half.budget(), 0.5);
        // Looser budget ⇒ flatter rows.
        assert!(half.emission_matrix().get(0, 0) < em.emission_matrix().get(0, 0));
    }

    #[test]
    fn exponential_mechanism_sampling_matches_rows() {
        let grid = GridMap::new(2, 2, 1.0).unwrap();
        let em = ExponentialMechanism::new(grid, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let n = 40_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[em.perturb(CellId(0), &mut rng).index()] += 1;
        }
        for (c, &expect) in counts.iter().zip(em.emission_matrix().row(0)) {
            let f = *c as f64 / n as f64;
            assert!((f - expect).abs() < 0.01, "{f} vs {expect}");
        }
    }
}
