use crate::Result;
use priste_geo::CellId;
use priste_linalg::{Matrix, Vector};
use rand::RngCore;

/// The paper's LPPM abstraction (§II.A): "the LPPM can be considered as an
/// emission matrix that takes user's true location as input and outputs a
/// perturbed one".
///
/// Implementations guarantee that [`Lppm::perturb`] samples exactly from the
/// row of [`Lppm::emission_matrix`] for the true cell — the quantification
/// engine's privacy accounting is only sound if the matrix *is* the
/// mechanism, not an approximation of it.
///
/// `Send + Sync` are supertraits: a mechanism is immutable matrix data, and
/// requiring thread-safety here is what lets `Box<dyn Lppm>` live inside
/// the `Send + Sync` streaming service and its parallel release path.
pub trait Lppm: Send + Sync {
    /// State-domain size `m`.
    fn num_cells(&self) -> usize;

    /// Current privacy budget (the α of α-PLM; mechanisms without a
    /// meaningful budget report the value they were constructed with).
    fn budget(&self) -> f64;

    /// The row-stochastic emission matrix: entry `(i, j)` is
    /// `Pr(o = s_j | u = s_i)`.
    fn emission_matrix(&self) -> &Matrix;

    /// Emission column `p̃_o` for a given observation (paper Table I): the
    /// vector of `Pr(o | u = s_i)` over all true cells `s_i`. This is the
    /// quantity the Lemma III.2/III.3 recurrences consume.
    fn emission_column(&self, observation: CellId) -> Vector {
        self.emission_matrix().col(observation.index())
    }

    /// Samples a perturbed location for the given true location.
    ///
    /// # Panics
    /// Implementations may panic if `true_loc` is out of domain; callers
    /// inside the framework validate locations at the boundary.
    fn perturb(&self, true_loc: CellId, rng: &mut dyn RngCore) -> CellId;

    /// Builds the *same family* of mechanism at a different budget — the
    /// hook Algorithm 2's exponential budget decay (`α ← α/2`) calls.
    ///
    /// # Errors
    /// [`crate::LppmError::InvalidBudget`] for non-positive budgets.
    fn with_budget(&self, budget: f64) -> Result<Box<dyn Lppm>>;
}

/// Samples an index from a normalized probability row. Shared by all
/// emission-matrix-backed implementations so sampling semantics are uniform.
pub(crate) fn sample_row(row: &[f64], rng: &mut dyn RngCore) -> usize {
    let mut u = rand::Rng::gen::<f64>(rng);
    for (i, &w) in row.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    row.iter().rposition(|&w| w > 0.0).unwrap_or(row.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_row_respects_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let row = [0.0, 0.0, 1.0, 0.0];
        for _ in 0..200 {
            assert_eq!(sample_row(&row, &mut rng), 2);
        }
    }

    #[test]
    fn sample_row_empirical_frequencies() {
        let mut rng = StdRng::seed_from_u64(2);
        let row = [0.25, 0.5, 0.25];
        let n = 40_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[sample_row(&row, &mut rng)] += 1;
        }
        for (c, expect) in counts.iter().zip(row) {
            let f = *c as f64 / n as f64;
            assert!((f - expect).abs() < 0.02, "{f} vs {expect}");
        }
    }
}
