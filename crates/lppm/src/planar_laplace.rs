use crate::lambert::planar_laplace_radius_icdf;
use crate::mechanism::{sample_row, Lppm};
use crate::{LppmError, Result};
use priste_geo::{CellId, GridMap};
use priste_linalg::Matrix;
use rand::{Rng, RngCore};

/// The α-Planar-Laplace mechanism (α-PLM) of Geo-indistinguishability
/// (Andrés et al., CCS'13) — the paper's §IV.C case-study LPPM.
///
/// The continuous mechanism adds polar-Laplace noise with density
/// `p(z|x) = α²/(2π) · e^{−α·d(x,z)}`; on the grid it becomes an emission
/// matrix whose row `i` integrates that density over each cell (midpoint
/// rule with `supersample × supersample` points per cell) and renormalizes —
/// grid truncation sends the small out-of-map mass back onto the map
/// proportionally, keeping rows stochastic.
///
/// [`Lppm::perturb`] samples from the *discrete emission row*, so releases
/// and privacy accounting use the identical distribution;
/// [`PlanarLaplace::sample_continuous`] exposes the textbook continuous
/// sampler (angle uniform, radius via the Lambert `W₋₁` inverse CDF) for
/// applications working in the continuous plane.
#[derive(Debug, Clone)]
pub struct PlanarLaplace {
    grid: GridMap,
    alpha: f64,
    supersample: usize,
    emission: Matrix,
    inside_mass: Vec<f64>,
}

/// Default number of integration points per cell axis; 3×3 midpoints keep
/// the row error well under the stochasticity tolerance at the paper's grid
/// sizes while costing only 9 density evaluations per matrix entry.
const DEFAULT_SUPERSAMPLE: usize = 3;

impl PlanarLaplace {
    /// Builds an α-PLM over `grid` with the default discretization quality.
    ///
    /// # Errors
    /// [`LppmError::InvalidBudget`] for a non-positive or non-finite `alpha`.
    pub fn new(grid: GridMap, alpha: f64) -> Result<Self> {
        Self::with_supersample(grid, alpha, DEFAULT_SUPERSAMPLE)
    }

    /// Builds an α-PLM with `supersample²` integration points per cell
    /// (≥ 1). Higher values tighten the discretization at quadratic cost.
    ///
    /// # Errors
    /// [`LppmError::InvalidBudget`] for a non-positive or non-finite `alpha`.
    pub fn with_supersample(grid: GridMap, alpha: f64, supersample: usize) -> Result<Self> {
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(LppmError::InvalidBudget { value: alpha });
        }
        let supersample = supersample.max(1);
        let (emission, inside_mass) = build_emission(&grid, alpha, supersample);
        Ok(PlanarLaplace {
            grid,
            alpha,
            supersample,
            emission,
            inside_mass,
        })
    }

    /// The underlying grid.
    pub fn grid(&self) -> &GridMap {
        &self.grid
    }

    /// Per-source-cell fraction of the continuous mechanism's mass that the
    /// grid captures (before row renormalization).
    ///
    /// Renormalization re-injects the lost `1 − inside_mass[i]` onto the
    /// grid, so the *discrete* mechanism satisfies geo-indistinguishability
    /// only up to the factor `inside_mass[x₂] / inside_mass[x₁]`: values
    /// near 1 (tight budgets, interior cells) mean the nominal `e^{α·d}`
    /// bound holds essentially exactly; boundary cells with loose budgets
    /// deviate by this measurable factor. PriSTE's event-privacy accounting
    /// is unaffected either way — it always consumes the actual emission
    /// matrix.
    pub fn inside_mass(&self) -> &[f64] {
        &self.inside_mass
    }

    /// Draws a continuous planar-Laplace perturbation of the true cell's
    /// center: returns `(x_km, y_km)` in grid coordinates. The caller may
    /// re-discretize with [`GridMap::nearest_cell`].
    ///
    /// # Errors
    /// [`LppmError::CellOutOfRange`] for an out-of-domain cell.
    pub fn sample_continuous<R: Rng + ?Sized>(
        &self,
        true_loc: CellId,
        rng: &mut R,
    ) -> Result<(f64, f64)> {
        let (cx, cy) =
            self.grid
                .cell_center_km(true_loc)
                .map_err(|_| LppmError::CellOutOfRange {
                    cell: true_loc.index(),
                    num_cells: self.grid.num_cells(),
                })?;
        let theta = rng.gen::<f64>() * std::f64::consts::TAU;
        let r = planar_laplace_radius_icdf(self.alpha, rng.gen::<f64>());
        Ok((cx + r * theta.cos(), cy + r * theta.sin()))
    }
}

impl Lppm for PlanarLaplace {
    fn num_cells(&self) -> usize {
        self.grid.num_cells()
    }

    fn budget(&self) -> f64 {
        self.alpha
    }

    fn emission_matrix(&self) -> &Matrix {
        &self.emission
    }

    fn perturb(&self, true_loc: CellId, rng: &mut dyn RngCore) -> CellId {
        CellId(sample_row(self.emission.row(true_loc.index()), rng))
    }

    fn with_budget(&self, budget: f64) -> Result<Box<dyn Lppm>> {
        Ok(Box::new(PlanarLaplace::with_supersample(
            self.grid.clone(),
            budget,
            self.supersample,
        )?))
    }
}

/// Integrates the continuous density over every (true cell, output cell)
/// pair; returns the row-normalized emission matrix and the per-row
/// inside-grid mass fraction (see [`PlanarLaplace::inside_mass`]).
fn build_emission(grid: &GridMap, alpha: f64, supersample: usize) -> (Matrix, Vec<f64>) {
    let m = grid.num_cells();
    let cell = grid.cell_size_km();
    let step = cell / supersample as f64;
    // Integration offsets inside a cell, relative to its top-left corner.
    let offsets: Vec<f64> = (0..supersample).map(|k| (k as f64 + 0.5) * step).collect();

    let centers: Vec<(f64, f64)> = (0..m)
        .map(|i| grid.cell_center_km(CellId(i)).expect("index in range"))
        .collect();
    let corners: Vec<(f64, f64)> = centers
        .iter()
        .map(|&(x, y)| (x - cell / 2.0, y - cell / 2.0))
        .collect();

    let mut e = Matrix::zeros(m, m);
    let mut inside = Vec::with_capacity(m);
    // Full-plane integral of the kernel e^{−αd} is 2π/α²; the midpoint sum
    // approximates ∫_cell e^{−αd} / step².
    let full_plane = std::f64::consts::TAU / (alpha * alpha);
    for (i, &(sx, sy)) in centers.iter().enumerate() {
        let row = e.row_mut(i);
        let mut row_sum = 0.0;
        for (j, v) in row.iter_mut().enumerate() {
            let (jx, jy) = corners[j];
            let mut mass = 0.0;
            for &ox in &offsets {
                for &oy in &offsets {
                    let d = ((jx + ox - sx).powi(2) + (jy + oy - sy).powi(2)).sqrt();
                    mass += (-alpha * d).exp();
                }
            }
            // The per-sample area factors cancel in the row normalization
            // below; accumulate the raw kernel sum.
            *v = mass;
            row_sum += mass;
        }
        inside.push((row_sum * step * step / full_plane).min(1.0));
    }
    e.normalize_rows_mut();
    (e, inside)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid5() -> GridMap {
        GridMap::new(5, 5, 1.0).unwrap()
    }

    #[test]
    fn rejects_invalid_budget() {
        assert!(matches!(
            PlanarLaplace::new(grid5(), 0.0),
            Err(LppmError::InvalidBudget { .. })
        ));
        assert!(PlanarLaplace::new(grid5(), f64::INFINITY).is_err());
        assert!(PlanarLaplace::new(grid5(), -1.0).is_err());
    }

    #[test]
    fn emission_is_stochastic() {
        for alpha in [0.1, 0.5, 1.0, 5.0] {
            let plm = PlanarLaplace::new(grid5(), alpha).unwrap();
            plm.emission_matrix().validate_stochastic().unwrap();
        }
    }

    #[test]
    fn diagonal_dominates_for_tight_budget() {
        let plm = PlanarLaplace::new(grid5(), 5.0).unwrap();
        let e = plm.emission_matrix();
        for i in 0..25 {
            let row = e.row(i);
            let diag = row[i];
            for (j, &p) in row.iter().enumerate() {
                if j != i {
                    assert!(diag > p, "row {i}: diag {diag} <= off {p} at {j}");
                }
            }
        }
    }

    #[test]
    fn emission_decays_with_distance() {
        let grid = GridMap::new(1, 8, 1.0).unwrap();
        let plm = PlanarLaplace::new(grid, 1.0).unwrap();
        let row = plm.emission_matrix().row(0);
        for w in row.windows(2) {
            assert!(w[0] > w[1], "row not decaying: {row:?}");
        }
    }

    #[test]
    fn geo_indistinguishability_bound_holds_up_to_truncation() {
        // For the continuous mechanism p(o|x₁) ≤ e^{α·d(x₁,x₂)}·p(o|x₂)
        // exactly; grid truncation renormalizes each row by 1/inside_mass,
        // so the discrete bound carries the factor inside[x₂]/inside[x₁].
        // Verify that corrected bound with small quadrature headroom.
        let grid = grid5();
        let alpha = 1.0;
        let plm = PlanarLaplace::with_supersample(grid.clone(), alpha, 4).unwrap();
        let e = plm.emission_matrix();
        let inside = plm.inside_mass();
        for x1 in 0..25 {
            for x2 in 0..25 {
                let d = grid.distance_km(CellId(x1), CellId(x2)).unwrap();
                let bound = (alpha * d).exp() * (inside[x2] / inside[x1]) * 1.02;
                for o in 0..25 {
                    let p1 = e.get(x1, o);
                    let p2 = e.get(x2, o);
                    assert!(p1 <= bound * p2, "({x1},{x2})→{o}: {p1} vs {bound} · {p2}");
                }
            }
        }
    }

    #[test]
    fn geo_indistinguishability_is_essentially_exact_for_tight_budgets() {
        // With α = 4 on a 5×5 grid almost no mass leaves the map, so the
        // nominal e^{α·d} bound holds with only quadrature slack.
        let grid = grid5();
        let alpha = 4.0;
        let plm = PlanarLaplace::with_supersample(grid.clone(), alpha, 8).unwrap();
        let e = plm.emission_matrix();
        // Interior cells capture nearly all mass at this budget (the ~2%
        // deficit is midpoint-rule error at the density cusp, not leakage).
        assert!(
            plm.inside_mass()[12] > 0.95,
            "inside mass {}",
            plm.inside_mass()[12]
        );
        for x1 in 0..25 {
            for x2 in 0..25 {
                let d = grid.distance_km(CellId(x1), CellId(x2)).unwrap();
                let bound = (alpha * d).exp() * 1.10;
                for o in 0..25 {
                    assert!(e.get(x1, o) <= bound * e.get(x2, o));
                }
            }
        }
    }

    #[test]
    fn inside_mass_reflects_boundary_truncation() {
        let plm = PlanarLaplace::new(grid5(), 1.0).unwrap();
        let inside = plm.inside_mass();
        // Center keeps more mass than a corner; all fractions in (0, 1].
        assert!(inside[12] > inside[0]);
        for &f in inside {
            assert!(f > 0.0 && f <= 1.0);
        }
    }

    #[test]
    fn smaller_alpha_is_flatter() {
        let tight = PlanarLaplace::new(grid5(), 2.0).unwrap();
        let loose = PlanarLaplace::new(grid5(), 0.1).unwrap();
        // Self-emission probability shrinks as the budget loosens.
        assert!(tight.emission_matrix().get(12, 12) > loose.emission_matrix().get(12, 12));
        // And the loose mechanism approaches uniform: max/min ratio is small.
        let row = loose.emission_matrix().row(12);
        let max = row.iter().cloned().fold(0.0_f64, f64::max);
        let min = row.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < (0.1 * 6.0_f64.hypot(6.0)).exp() * 1.1);
    }

    #[test]
    fn perturb_matches_emission_row_frequencies() {
        let plm = PlanarLaplace::new(GridMap::new(2, 2, 1.0).unwrap(), 0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let n = 60_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[plm.perturb(CellId(1), &mut rng).index()] += 1;
        }
        let row = plm.emission_matrix().row(1);
        for (c, &expect) in counts.iter().zip(row) {
            let f = *c as f64 / n as f64;
            assert!((f - expect).abs() < 0.01, "{f} vs {expect}");
        }
    }

    #[test]
    fn with_budget_halves_cleanly() {
        let plm = PlanarLaplace::new(grid5(), 0.2).unwrap();
        let halved = plm.with_budget(0.1).unwrap();
        assert_eq!(halved.budget(), 0.1);
        assert_eq!(halved.num_cells(), 25);
        halved.emission_matrix().validate_stochastic().unwrap();
        assert!(halved.with_budget(0.0).is_err());
    }

    #[test]
    fn continuous_sampler_centers_on_true_location() {
        let plm = PlanarLaplace::new(grid5(), 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let (cx, cy) = plm.grid().cell_center_km(CellId(12)).unwrap();
        let n = 20_000;
        let (mut sx, mut sy) = (0.0, 0.0);
        for _ in 0..n {
            let (x, y) = plm.sample_continuous(CellId(12), &mut rng).unwrap();
            sx += x;
            sy += y;
        }
        // Noise is symmetric: the sample mean converges to the center.
        assert!((sx / n as f64 - cx).abs() < 0.05);
        assert!((sy / n as f64 - cy).abs() < 0.05);
    }

    #[test]
    fn continuous_radius_has_expected_mean() {
        // Polar Laplace radius has mean 2/α.
        let plm = PlanarLaplace::new(grid5(), 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let (cx, cy) = plm.grid().cell_center_km(CellId(12)).unwrap();
        let n = 30_000;
        let mut sum_r = 0.0;
        for _ in 0..n {
            let (x, y) = plm.sample_continuous(CellId(12), &mut rng).unwrap();
            sum_r += ((x - cx).powi(2) + (y - cy).powi(2)).sqrt();
        }
        let mean = sum_r / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean radius {mean}, expected 4.0");
    }

    #[test]
    fn continuous_sampler_rejects_bad_cell() {
        let plm = PlanarLaplace::new(grid5(), 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        assert!(matches!(
            plm.sample_continuous(CellId(25), &mut rng),
            Err(LppmError::CellOutOfRange { .. })
        ));
    }
}
