//! Pluggable per-step utility models for the budget planners.
//!
//! `plan_greedy` maximizes per-step budget lexicographically; its only
//! utility proxy is the mean per-step ε. That ignores *where* budget buys
//! the most accuracy: the expected error of a planar-Laplace release is
//! convex in ε, so moving slack from a budget-rich step to a budget-starved
//! one lowers total error even at the same total ε-mass. A [`UtilityModel`]
//! makes that objective explicit — [`plan_knapsack`](crate::plan_knapsack)
//! maximizes `Σ_t u(ε_t)` subject to every prefix still certifying the
//! Theorem IV.1 oracle.
//!
//! The closed forms follow the per-release utility analysis of *Protecting
//! Locations with Differential Privacy under Temporal Correlations*
//! (arXiv:1410.5919): the expected Euclidean error of a planar Laplace
//! mechanism with budget ε is `2/ε`, and a discretized PLM's quality loss
//! saturates at the world's diameter (released cells cannot be further away
//! than that).

use priste_geo::GridMap;

/// A per-step utility objective `u(ε)` for the budget planners: larger
/// location budgets mean less noise, so implementations must be monotone
/// nondecreasing in ε. Utilities are summed across the horizon; only
/// differences matter, so negated-loss models are fine.
///
/// The knapsack planner samples `u` on the geometric budget ladder and
/// concavifies the samples (upper concave envelope), so models need not be
/// concave — but the planner's allocation is only *exactly* optimal for the
/// envelope, not for any convex dips the envelope bridges.
///
/// ```
/// use priste_calibrate::{MeanEpsilon, PlanarLaplaceError, UtilityModel};
///
/// // More budget is never worse, under any bundled model.
/// let planar = PlanarLaplaceError;
/// assert!(planar.utility(1.0) > planar.utility(0.5));
///
/// // `MeanEpsilon` reproduces the legacy mean-budget proxy: utilities are
/// // the budgets themselves, so plan totals order exactly like mean ε.
/// assert_eq!(MeanEpsilon.utility(0.25), 0.25);
/// ```
pub trait UtilityModel {
    /// Utility of releasing one timestep at location budget `epsilon`.
    fn utility(&self, epsilon: f64) -> f64;

    /// Short stable name for tables and plan summaries.
    fn name(&self) -> &str;
}

/// The legacy proxy: `u(ε) = ε`, so total utility is `T ×` the plan's mean
/// per-step budget. Linear — it never prefers redistribution, which makes
/// [`plan_knapsack`](crate::plan_knapsack) with this model fall back to the
/// greedy plan (the greedy search is already per-step budget-maximal).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeanEpsilon;

impl UtilityModel for MeanEpsilon {
    fn utility(&self, epsilon: f64) -> f64 {
        epsilon
    }

    fn name(&self) -> &str {
        "mean-epsilon"
    }
}

/// Negated expected Euclidean error of the (continuous) planar Laplace
/// mechanism: `u(ε) = −2/ε` (arXiv:1410.5919, §VII). Strictly concave and
/// increasing, so equal budgets beat lopsided ones at the same total mass —
/// the regime where the knapsack planner wins over greedy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanarLaplaceError;

impl UtilityModel for PlanarLaplaceError {
    fn utility(&self, epsilon: f64) -> f64 {
        if epsilon <= 0.0 {
            return f64::NEG_INFINITY;
        }
        -2.0 / epsilon
    }

    fn name(&self) -> &str {
        "planar-laplace-error"
    }
}

/// Negated quality loss of a *discretized* PLM over a finite world:
/// `u(ε) = −min(2/ε, D)` where `D` is the saturation distance (a released
/// cell is never further than the grid diameter, so the loss of an almost
/// uninformative mechanism flattens out instead of diverging).
///
/// Not concave — the saturated plateau followed by the concave rise has an
/// upward kink — which exercises the planner's concavification: budgets
/// inside the plateau carry zero marginal utility and attract no mass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlmQualityLoss {
    saturation: f64,
}

impl PlmQualityLoss {
    /// A model saturating at the given maximum loss (must be positive and
    /// finite; falls back to [`PlmQualityLoss::default`] otherwise).
    pub fn new(saturation: f64) -> Self {
        if saturation > 0.0 && saturation.is_finite() {
            PlmQualityLoss { saturation }
        } else {
            PlmQualityLoss::default()
        }
    }

    /// Saturation at the grid's diameter — the largest error a release over
    /// this world can exhibit.
    pub fn for_grid(grid: &GridMap) -> Self {
        let w = grid.cols() as f64 * grid.cell_size_km();
        let h = grid.rows() as f64 * grid.cell_size_km();
        PlmQualityLoss::new(w.hypot(h))
    }

    /// The saturation distance `D`.
    pub fn saturation(&self) -> f64 {
        self.saturation
    }
}

impl Default for PlmQualityLoss {
    /// Saturates at the diameter of the paper's synthetic world.
    fn default() -> Self {
        PlmQualityLoss::for_grid(&GridMap::paper_synthetic())
    }
}

impl UtilityModel for PlmQualityLoss {
    fn utility(&self, epsilon: f64) -> f64 {
        if epsilon <= 0.0 {
            return -self.saturation;
        }
        -(2.0 / epsilon).min(self.saturation)
    }

    fn name(&self) -> &str {
        "plm-quality-loss"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_are_monotone_on_the_ladder() {
        let models: [&dyn UtilityModel; 3] = [
            &MeanEpsilon,
            &PlanarLaplaceError,
            &PlmQualityLoss::default(),
        ];
        for model in models {
            let mut prev = f64::NEG_INFINITY;
            let mut eps = 1e-3;
            while eps <= 4.0 {
                let u = model.utility(eps);
                assert!(
                    u >= prev,
                    "{} not monotone at ε = {eps}: {u} < {prev}",
                    model.name()
                );
                prev = u;
                eps *= 2.0;
            }
        }
    }

    #[test]
    fn planar_laplace_error_is_strictly_concave_increasing() {
        let m = PlanarLaplaceError;
        let (a, b, c) = (m.utility(0.5), m.utility(1.0), m.utility(1.5));
        assert!(a < b && b < c);
        // Midpoint above the chord.
        assert!(m.utility(1.0) > 0.5 * (a + c));
    }

    #[test]
    fn plm_quality_loss_saturates_below_the_knee() {
        let m = PlmQualityLoss::new(4.0);
        // 2/ε ≥ 4 for ε ≤ 0.5: flat plateau at −4.
        assert_eq!(m.utility(0.1), -4.0);
        assert_eq!(m.utility(0.5), -4.0);
        assert!(m.utility(1.0) > -4.0);
        assert_eq!(m.saturation(), 4.0);
    }

    #[test]
    fn bad_saturation_falls_back_to_default() {
        assert_eq!(
            PlmQualityLoss::new(-1.0).saturation(),
            PlmQualityLoss::default().saturation()
        );
        assert_eq!(
            PlmQualityLoss::new(f64::INFINITY).saturation(),
            PlmQualityLoss::default().saturation()
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(MeanEpsilon.name(), "mean-epsilon");
        assert_eq!(PlanarLaplaceError.name(), "planar-laplace-error");
        assert_eq!(PlmQualityLoss::default().name(), "plm-quality-loss");
    }
}
