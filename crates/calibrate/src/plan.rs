//! The offline budget planner: given a mobility model, a protected event,
//! a horizon, and a target event budget ε*, search per-timestep location
//! budgets ε_t such that *every observation the mechanism can emit*
//! certifies Theorem IV.1 at ε* — for every adversarial initial
//! distribution, the strongest guarantee the framework defines.
//!
//! Two planners share one evaluation oracle:
//!
//! * [`plan_greedy`] — greedy-forward: each timestep starts from the
//!   previous step's budget, descends the geometric ladder until all `m`
//!   emission columns certify at ε*, and climbs back toward the base
//!   budget when slack allows (utility recovers after the event window).
//! * [`plan_uniform_split`] — the sequential-composition baseline from
//!   the per-timestep budget semantics of arXiv:1410.5919: the target is
//!   split evenly, `ε_t = ε*/T`. Provably conservative; the planner
//!   evaluates it with the same oracle so the two plans are directly
//!   comparable (greedy should certify at a much larger mean budget).
//!
//! ### The canonical history
//! Theorem IV.1 at timestep `t` conditions on the committed prefix
//! `o_1..o_{t−1}`. A plan cannot enumerate all `m^{t−1}` prefixes, so the
//! planner advances its [`TheoremBuilder`] along the **worst-column
//! path**: after each step it commits the most revealing emission column
//! the planned mechanism could have produced, selected by its exact
//! uniform-prior realized loss (a closed form, so the choice is invariant
//! under the `threads` knob). Per-step verdicts are exact for that
//! canonical history and a deliberate stress test for the others; the
//! online [`guard`](crate::guard) is what certifies the *realized* prefix
//! at run time.

use crate::guard::MechanismCache;
use crate::{CalibrateError, Result};
use priste_event::StEvent;
use priste_geo::CellId;
use priste_linalg::Vector;
use priste_lppm::Lppm;
use priste_markov::TransitionProvider;
use priste_qp::{SolverConfig, TheoremChecker};
use priste_quantify::sweep::min_certifiable_epsilons;
use priste_quantify::{TheoremBuilder, TheoremInputs};

/// Tunables of the offline planners.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Geometric ladder factor in `(0, 1)` for the budget search.
    pub backoff: f64,
    /// Smallest per-step location budget before a step is declared
    /// infeasible.
    pub floor: f64,
    /// Lower end of the ε-capacity bisection bracket.
    pub eps_floor: f64,
    /// Upper end of the ε-capacity bisection bracket (raised to the target
    /// automatically); capacities beyond it are reported as `None`.
    pub eps_ceiling: f64,
    /// ε-capacity bisection tolerance.
    pub tolerance: f64,
    /// Worker threads for the per-column oracle fan-out (`std::thread`
    /// scoped; 1 = sequential).
    pub threads: usize,
    /// Budget and tolerances of the underlying Theorem IV.1 checks.
    pub solver: SolverConfig,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            backoff: 0.5,
            floor: 1e-3,
            eps_floor: 1e-4,
            eps_ceiling: 16.0,
            tolerance: 1e-3,
            threads: 1,
            solver: SolverConfig::default(),
        }
    }
}

impl PlannerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// [`CalibrateError::InvalidConfig`] naming the bad field.
    pub fn validate(&self) -> Result<()> {
        if !(self.backoff > 0.0 && self.backoff < 1.0) {
            return Err(CalibrateError::InvalidConfig {
                message: format!("backoff must be in (0, 1), got {}", self.backoff),
            });
        }
        if !(self.floor > 0.0 && self.floor.is_finite()) {
            return Err(CalibrateError::InvalidConfig {
                message: format!("floor must be positive and finite, got {}", self.floor),
            });
        }
        if !(self.eps_floor > 0.0 && self.eps_floor < self.eps_ceiling) {
            return Err(CalibrateError::InvalidConfig {
                message: format!(
                    "need 0 < eps_floor < eps_ceiling, got [{}, {}]",
                    self.eps_floor, self.eps_ceiling
                ),
            });
        }
        if !(self.tolerance > 0.0 && self.tolerance.is_finite()) {
            return Err(CalibrateError::InvalidConfig {
                message: format!("tolerance must be positive, got {}", self.tolerance),
            });
        }
        Ok(())
    }
}

/// One timestep of a [`BudgetPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedStep {
    /// Timestep (1-based).
    pub t: usize,
    /// The planned per-step location budget ε_t.
    pub budget: f64,
    /// Worst-case ε-capacity at that budget: the smallest event ε any of
    /// the mechanism's `m` emission columns can certify, maximized over
    /// columns. `None` when it exceeds the report ceiling.
    pub capacity: Option<f64>,
    /// `ε* − capacity` (`-∞` when the capacity is off the scale).
    pub slack: f64,
    /// Whether every emission column certifies ε* at this budget.
    pub certified: bool,
    /// Ladder rungs evaluated while searching this step's budget.
    pub rungs: usize,
}

/// A per-timestep budget assignment with its verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetPlan {
    /// The target event budget ε* the plan was built for.
    pub target: f64,
    /// Per-timestep budgets and verdicts.
    pub steps: Vec<PlannedStep>,
}

impl BudgetPlan {
    /// Whether every step certifies the target.
    pub fn all_certified(&self) -> bool {
        self.steps.iter().all(|s| s.certified)
    }

    /// Number of certified steps.
    pub fn certified_steps(&self) -> usize {
        self.steps.iter().filter(|s| s.certified).count()
    }

    /// The event budget the plan actually certifies — the worst per-step
    /// capacity — when every step is certified; `None` otherwise.
    pub fn certified_epsilon(&self) -> Option<f64> {
        if !self.all_certified() {
            return None;
        }
        self.steps
            .iter()
            .map(|s| s.capacity.unwrap_or(f64::INFINITY))
            .fold(None, |acc: Option<f64>, c| {
                Some(acc.map_or(c, |a| a.max(c)))
            })
    }

    /// Mean per-step location budget — the plan's utility proxy (larger
    /// budgets mean less noise).
    pub fn mean_budget(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().map(|s| s.budget).sum::<f64>() / self.steps.len() as f64
    }
}

/// Greedy-forward planner: per-step geometric budget search against the
/// all-columns Theorem IV.1 oracle, warm-started from the previous step.
/// See the module docs for the guarantee and the canonical-history caveat.
///
/// # Errors
/// Configuration validation; domain mismatches; mechanism rebuilds;
/// quantification failures.
pub fn plan_greedy<P: TransitionProvider>(
    lppm: Box<dyn Lppm>,
    event: &StEvent,
    provider: P,
    horizon: usize,
    target: f64,
    config: &PlannerConfig,
) -> Result<BudgetPlan> {
    let mut planner = Planner::new(lppm, event, provider, horizon, target, config)?;
    let mut previous = planner.cache.base_budget();
    for _ in 0..horizon {
        previous = planner.plan_step_greedy(previous)?;
    }
    Ok(planner.finish())
}

/// Uniform-split baseline: every timestep gets `ε*/T`, evaluated by the
/// same oracle (no search). The sequential-composition bound makes the
/// split provably safe when the per-step budget is read as a location-DP
/// level; here it is evaluated exactly, so over-conservatism shows up as
/// large per-step slack.
///
/// # Errors
/// See [`plan_greedy`].
pub fn plan_uniform_split<P: TransitionProvider>(
    lppm: Box<dyn Lppm>,
    event: &StEvent,
    provider: P,
    horizon: usize,
    target: f64,
    config: &PlannerConfig,
) -> Result<BudgetPlan> {
    let mut planner = Planner::new(lppm, event, provider, horizon, target, config)?;
    let split = target / horizon as f64;
    for _ in 0..horizon {
        planner.plan_step_fixed(split)?;
    }
    Ok(planner.finish())
}

/// Shared planner state: the mechanism ladder cache, the Theorem builder
/// advanced along the canonical worst-column history, and the accumulated
/// steps.
struct Planner<P> {
    cache: MechanismCache,
    builder: TheoremBuilder<P>,
    target: f64,
    eps_hi: f64,
    config: PlannerConfig,
    warm_capacity: Option<f64>,
    steps: Vec<PlannedStep>,
}

impl<P: TransitionProvider> Planner<P> {
    fn new(
        lppm: Box<dyn Lppm>,
        event: &StEvent,
        provider: P,
        horizon: usize,
        target: f64,
        config: &PlannerConfig,
    ) -> Result<Self> {
        config.validate()?;
        if horizon == 0 {
            return Err(CalibrateError::InvalidConfig {
                message: "horizon must be at least 1".into(),
            });
        }
        if !(target > 0.0 && target.is_finite()) {
            return Err(CalibrateError::InvalidConfig {
                message: format!("target must be positive and finite, got {target}"),
            });
        }
        crate::guard::validate_mechanism(lppm.as_ref(), provider.num_states(), config.floor)?;
        let builder = TheoremBuilder::new(event, provider)?;
        Ok(Planner {
            cache: MechanismCache::new(lppm),
            builder,
            target,
            eps_hi: config.eps_ceiling.max(target),
            config: config.clone(),
            warm_capacity: None,
            steps: Vec::with_capacity(horizon),
        })
    }

    /// All `m` candidate emission columns and their Theorem inputs at one
    /// budget, against the current committed history.
    fn step_inputs(&mut self, budget: f64) -> Result<(Vec<Vector>, Vec<TheoremInputs>)> {
        let mechanism = self.cache.at(budget)?;
        let m = mechanism.num_cells();
        let mut columns = Vec::with_capacity(m);
        let mut inputs = Vec::with_capacity(m);
        for o in 0..m {
            let col = mechanism.emission_column(CellId(o));
            inputs.push(self.builder.candidate(&col)?);
            columns.push(col);
        }
        Ok((columns, inputs))
    }

    /// Whether every candidate column certifies the target, fanned out over
    /// the configured worker threads.
    fn all_certify(&self, inputs: &[TheoremInputs]) -> bool {
        let epsilon = self.target;
        let solver = &self.config.solver;
        let check = |chunk: &[TheoremInputs]| {
            chunk.iter().all(|inp| {
                TheoremChecker::new(epsilon, solver.clone())
                    .check(&inp.a, &inp.b, &inp.c)
                    .satisfied()
            })
        };
        let threads = self.config.threads.clamp(1, inputs.len().max(1));
        if threads == 1 {
            return check(inputs);
        }
        let chunk_len = inputs.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(move || check(chunk)))
                .collect();
            handles
                .into_iter()
                .all(|h| h.join().expect("planner worker panicked"))
        })
    }

    /// Greedy search for one timestep starting from `start` (the previous
    /// step's budget); returns the chosen budget for warm-starting the
    /// next step.
    fn plan_step_greedy(&mut self, start: f64) -> Result<f64> {
        let base = self.cache.base_budget();
        let cfg = self.config.clone();
        let mut budget = start.clamp(cfg.floor, base);
        let mut rungs = 0usize;

        // Descend until feasible; the floor is always the last rung
        // actually evaluated before a step is declared infeasible.
        let (mut columns, mut inputs, feasible) = loop {
            rungs += 1;
            let (cols, inp) = self.step_inputs(budget)?;
            if self.all_certify(&inp) {
                break (cols, inp, true);
            }
            if budget <= cfg.floor {
                break (cols, inp, false);
            }
            budget = (budget * cfg.backoff).max(cfg.floor);
        };

        // Climb back toward the base budget while slack allows.
        if feasible {
            while budget < base {
                let up = (budget / cfg.backoff).min(base);
                rungs += 1;
                let (cols, inp) = self.step_inputs(up)?;
                if self.all_certify(&inp) {
                    budget = up;
                    columns = cols;
                    inputs = inp;
                } else {
                    break;
                }
            }
        }

        self.record_step(budget, feasible, rungs, &columns, &inputs)?;
        Ok(budget)
    }

    /// Evaluates one timestep at a fixed budget (no search).
    fn plan_step_fixed(&mut self, budget: f64) -> Result<()> {
        let budget = budget.max(self.config.floor);
        let (columns, inputs) = self.step_inputs(budget)?;
        let feasible = self.all_certify(&inputs);
        self.record_step(budget, feasible, 1, &columns, &inputs)
    }

    /// Bisects per-column capacities for reporting, records the step, and
    /// commits the most-revealing column as the canonical history.
    fn record_step(
        &mut self,
        budget: f64,
        certified: bool,
        rungs: usize,
        columns: &[Vector],
        inputs: &[TheoremInputs],
    ) -> Result<()> {
        let cfg = &self.config;
        let capacities = min_certifiable_epsilons(
            inputs,
            cfg.eps_floor,
            self.eps_hi,
            cfg.tolerance,
            &cfg.solver,
            cfg.threads,
            self.warm_capacity,
        );
        // Step capacity: the worst per-column capacity; off-scale columns
        // (`None`) make the whole step off-scale.
        let capacity = capacities
            .iter()
            .map(|c| c.min_epsilon)
            .try_fold(f64::NEG_INFINITY, |acc, c| c.map(|v| acc.max(v)));
        // Canonical history: commit the most-revealing column, selected by
        // its *exact* closed-form realized loss under the uniform prior —
        // NOT by the bisected capacities, whose trailing bits shift with
        // warm-start chunk boundaries and would make the plan depend on
        // the `threads` knob whenever symmetric columns tie.
        let uniform = Vector::uniform(columns[0].len());
        let (worst_idx, _) = inputs
            .iter()
            .map(|inp| inp.privacy_loss(&uniform).unwrap_or(f64::INFINITY))
            .enumerate()
            .fold((0, f64::NEG_INFINITY), |(bi, bv), (i, v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            });
        self.warm_capacity = capacity;
        self.steps.push(PlannedStep {
            t: self.steps.len() + 1,
            budget,
            capacity,
            slack: capacity.map_or(f64::NEG_INFINITY, |c| self.target - c),
            certified,
            rungs,
        });
        self.builder.commit(columns[worst_idx].clone())?;
        Ok(())
    }

    fn finish(self) -> BudgetPlan {
        BudgetPlan {
            target: self.target,
            steps: self.steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priste_event::Presence;
    use priste_geo::{GridMap, Region};
    use priste_lppm::PlanarLaplace;
    use priste_markov::{gaussian_kernel_chain, Homogeneous};

    fn world() -> (GridMap, Homogeneous) {
        let grid = GridMap::new(3, 3, 1.0).unwrap();
        let chain = gaussian_kernel_chain(&grid, 1.0).unwrap();
        (grid, Homogeneous::new(chain))
    }

    fn presence(m: usize) -> StEvent {
        Presence::new(Region::from_one_based_range(m, 1, 3).unwrap(), 2, 3)
            .unwrap()
            .into()
    }

    fn plm(grid: &GridMap, alpha: f64) -> Box<dyn Lppm> {
        Box::new(PlanarLaplace::new(grid.clone(), alpha).unwrap())
    }

    #[test]
    fn greedy_certifies_and_beats_uniform_split_on_utility() {
        let (grid, provider) = world();
        let event = presence(grid.num_cells());
        let cfg = PlannerConfig::default();
        let greedy = plan_greedy(plm(&grid, 2.0), &event, provider.clone(), 4, 1.0, &cfg).unwrap();
        assert!(greedy.all_certified(), "greedy plan: {greedy:?}");
        let certified = greedy.certified_epsilon().unwrap();
        assert!(
            certified <= 1.0 + cfg.tolerance,
            "certified ε {certified} must not exceed the target"
        );
        let uniform = plan_uniform_split(plm(&grid, 2.0), &event, provider, 4, 1.0, &cfg).unwrap();
        assert!(
            greedy.mean_budget() >= uniform.mean_budget(),
            "greedy {} must not waste more budget than the uniform split {}",
            greedy.mean_budget(),
            uniform.mean_budget()
        );
    }

    #[test]
    fn per_step_slack_is_consistent() {
        let (grid, provider) = world();
        let event = presence(grid.num_cells());
        let plan = plan_greedy(
            plm(&grid, 1.0),
            &event,
            provider,
            3,
            1.5,
            &PlannerConfig::default(),
        )
        .unwrap();
        assert_eq!(plan.steps.len(), 3);
        for (i, s) in plan.steps.iter().enumerate() {
            assert_eq!(s.t, i + 1);
            assert!(s.rungs >= 1);
            if let Some(c) = s.capacity {
                assert!((s.slack - (1.5 - c)).abs() < 1e-12);
                if s.certified {
                    assert!(c <= 1.5 + 1e-3, "certified step with capacity {c}");
                }
            }
        }
    }

    #[test]
    fn threaded_planning_matches_sequential() {
        let (grid, provider) = world();
        let event = presence(grid.num_cells());
        let seq_cfg = PlannerConfig::default();
        let par_cfg = PlannerConfig {
            threads: 3,
            ..PlannerConfig::default()
        };
        let seq = plan_greedy(plm(&grid, 2.0), &event, provider.clone(), 3, 0.8, &seq_cfg).unwrap();
        let par = plan_greedy(plm(&grid, 2.0), &event, provider, 3, 0.8, &par_cfg).unwrap();
        assert_eq!(seq.steps.len(), par.steps.len());
        for (s, p) in seq.steps.iter().zip(&par.steps) {
            assert_eq!(s.budget, p.budget, "budget choice must be thread-invariant");
            assert_eq!(s.certified, p.certified);
        }
    }

    #[test]
    fn infeasible_targets_are_reported_not_hidden() {
        let (grid, provider) = world();
        let event = presence(grid.num_cells());
        // A floor of 0.5 with a sharp mechanism cannot certify ε* = 1e-4.
        let cfg = PlannerConfig {
            floor: 0.5,
            ..PlannerConfig::default()
        };
        let plan = plan_greedy(plm(&grid, 2.0), &event, provider, 3, 1e-4, &cfg).unwrap();
        assert!(!plan.all_certified());
        assert_eq!(plan.certified_epsilon(), None);
        assert!(plan.steps.iter().any(|s| !s.certified && s.slack < 0.0));
    }

    #[test]
    fn planner_rejects_bad_inputs() {
        let (grid, provider) = world();
        let event = presence(grid.num_cells());
        let cfg = PlannerConfig::default();
        assert!(matches!(
            plan_greedy(plm(&grid, 1.0), &event, provider.clone(), 0, 1.0, &cfg),
            Err(CalibrateError::InvalidConfig { .. })
        ));
        assert!(matches!(
            plan_greedy(plm(&grid, 1.0), &event, provider.clone(), 3, -1.0, &cfg),
            Err(CalibrateError::InvalidConfig { .. })
        ));
        let other = GridMap::new(2, 2, 1.0).unwrap();
        assert!(matches!(
            plan_greedy(plm(&other, 1.0), &event, provider, 3, 1.0, &cfg),
            Err(CalibrateError::InvalidConfig { .. })
        ));
        let bad = PlannerConfig {
            backoff: 0.0,
            ..PlannerConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn planner_rejects_a_floor_above_the_base_budget() {
        let (grid, provider) = world();
        let event = presence(grid.num_cells());
        let cfg = PlannerConfig {
            floor: 3.0,
            ..PlannerConfig::default()
        };
        // α = 2 < floor = 3: must be a config error, not a clamp panic.
        assert!(matches!(
            plan_greedy(plm(&grid, 2.0), &event, provider, 2, 1.0, &cfg),
            Err(CalibrateError::InvalidConfig { .. })
        ));
    }
}
