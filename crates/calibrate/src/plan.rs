//! The offline budget planner: given a mobility model, a protected event,
//! a horizon, and a target event budget ε*, search per-timestep location
//! budgets ε_t such that *every observation the mechanism can emit*
//! certifies Theorem IV.1 at ε* — for every adversarial initial
//! distribution, the strongest guarantee the framework defines.
//!
//! Three planners share one evaluation oracle:
//!
//! * [`plan_greedy`] — greedy-forward: each timestep starts from the
//!   previous step's budget, descends the geometric ladder until all `m`
//!   emission columns certify at ε*, and climbs back toward the base
//!   budget when slack allows (utility recovers after the event window).
//! * [`plan_uniform_split`] — the sequential-composition baseline from
//!   the per-timestep budget semantics of arXiv:1410.5919: the target is
//!   split evenly, `ε_t = ε*/T` (clamped to the mechanism's `[floor,
//!   base]` range). Provably conservative; the planner evaluates it with
//!   the same oracle so the plans are directly comparable.
//! * [`plan_knapsack`] — utility-aware: maximizes `Σ_t u(ε_t)` for a
//!   pluggable [`UtilityModel`] by solving a piecewise-linear knapsack
//!   over `priste-qp`'s budgeted LP ([`priste_qp::max_budgeted`]) on the
//!   concavified per-step utility curves sampled on the geometric ladder,
//!   then restoring certified feasibility with the same
//!   descend-then-climb repair loop `plan_greedy` uses. Falls back to the
//!   greedy-feasible plan whenever the repaired allocation does not beat
//!   it (e.g. degenerate all-zero utility slopes).
//!
//! ### The canonical history
//! Theorem IV.1 at timestep `t` conditions on the committed prefix
//! `o_1..o_{t−1}`. A plan cannot enumerate all `m^{t−1}` prefixes, so the
//! planner advances its [`TheoremBuilder`] along the **worst-column
//! path**: after each step it commits the most revealing emission column
//! the planned mechanism could have produced, selected by its exact
//! uniform-prior realized loss (a closed form, so the choice is invariant
//! under the `threads` knob). Per-step verdicts are exact for that
//! canonical history and a deliberate stress test for the others; the
//! online [`guard`](crate::guard) is what certifies the *realized* prefix
//! at run time.

use crate::guard::MechanismCache;
use crate::utility::UtilityModel;
use crate::{CalibrateError, Result};
use priste_event::StEvent;
use priste_geo::CellId;
use priste_linalg::Vector;
use priste_lppm::Lppm;
use priste_markov::TransitionProvider;
use priste_qp::{knapsack::max_budgeted, SolverConfig, TheoremChecker};
use priste_quantify::sweep::min_certifiable_epsilons;
use priste_quantify::{TheoremBuilder, TheoremInputs};
use std::fmt;

/// Cap on the sampled budget-ladder length of the knapsack allocation
/// (mirrors the guard's attempt cap): a backoff close to 1 would otherwise
/// explode the item count. The final rung is always the floor.
const MAX_LADDER_RUNGS: usize = 64;

/// Tunables of the offline planners.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Geometric ladder factor in `(0, 1)` for the budget search.
    pub backoff: f64,
    /// Smallest per-step location budget before a step is declared
    /// infeasible.
    pub floor: f64,
    /// Lower end of the ε-capacity bisection bracket.
    pub eps_floor: f64,
    /// Upper end of the ε-capacity bisection bracket (raised to the target
    /// automatically); capacities beyond it are reported as `None`.
    pub eps_ceiling: f64,
    /// ε-capacity bisection tolerance.
    pub tolerance: f64,
    /// Worker threads for the per-column oracle fan-out (`std::thread`
    /// scoped; 1 = sequential).
    pub threads: usize,
    /// Budget and tolerances of the underlying Theorem IV.1 checks.
    pub solver: SolverConfig,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            backoff: 0.5,
            floor: 1e-3,
            eps_floor: 1e-4,
            eps_ceiling: 16.0,
            tolerance: 1e-3,
            threads: 1,
            solver: SolverConfig::default(),
        }
    }
}

impl PlannerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// [`CalibrateError::InvalidConfig`] naming the bad field.
    pub fn validate(&self) -> Result<()> {
        if !(self.backoff > 0.0 && self.backoff < 1.0) {
            return Err(CalibrateError::InvalidConfig {
                message: format!("backoff must be in (0, 1), got {}", self.backoff),
            });
        }
        if !(self.floor > 0.0 && self.floor.is_finite()) {
            return Err(CalibrateError::InvalidConfig {
                message: format!("floor must be positive and finite, got {}", self.floor),
            });
        }
        if !(self.eps_floor > 0.0 && self.eps_floor < self.eps_ceiling) {
            return Err(CalibrateError::InvalidConfig {
                message: format!(
                    "need 0 < eps_floor < eps_ceiling, got [{}, {}]",
                    self.eps_floor, self.eps_ceiling
                ),
            });
        }
        if !(self.tolerance > 0.0 && self.tolerance.is_finite()) {
            return Err(CalibrateError::InvalidConfig {
                message: format!("tolerance must be positive, got {}", self.tolerance),
            });
        }
        Ok(())
    }
}

/// One timestep of a [`BudgetPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedStep {
    /// Timestep (1-based).
    pub t: usize,
    /// The planned per-step location budget ε_t.
    pub budget: f64,
    /// Worst-case ε-capacity at that budget: the smallest event ε any of
    /// the mechanism's `m` emission columns can certify, maximized over
    /// columns. `None` when it exceeds the report ceiling.
    pub capacity: Option<f64>,
    /// `ε* − capacity` (`-∞` when the capacity is off the scale).
    pub slack: f64,
    /// Whether every emission column certifies ε* at this budget.
    pub certified: bool,
    /// Ladder rungs evaluated while searching this step's budget.
    pub rungs: usize,
}

/// A per-timestep budget assignment with its verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetPlan {
    /// The target event budget ε* the plan was built for.
    pub target: f64,
    /// Per-timestep budgets and verdicts.
    pub steps: Vec<PlannedStep>,
}

impl BudgetPlan {
    /// Whether every step certifies the target.
    pub fn all_certified(&self) -> bool {
        self.steps.iter().all(|s| s.certified)
    }

    /// Number of certified steps.
    pub fn certified_steps(&self) -> usize {
        self.steps.iter().filter(|s| s.certified).count()
    }

    /// The event budget the plan actually certifies — the worst per-step
    /// capacity — when every step is certified; `None` otherwise.
    pub fn certified_epsilon(&self) -> Option<f64> {
        if !self.all_certified() {
            return None;
        }
        self.steps
            .iter()
            .map(|s| s.capacity.unwrap_or(f64::INFINITY))
            .fold(None, |acc: Option<f64>, c| {
                Some(acc.map_or(c, |a| a.max(c)))
            })
    }

    /// Mean per-step location budget — the plan's legacy utility proxy
    /// (larger budgets mean less noise).
    pub fn mean_budget(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().map(|s| s.budget).sum::<f64>() / self.steps.len() as f64
    }

    /// Total utility `Σ_t u(ε_t)` of the planned budgets under a model —
    /// the objective [`plan_knapsack`] maximizes and the axis on which the
    /// three planners are compared.
    pub fn total_utility(&self, model: &dyn UtilityModel) -> f64 {
        self.steps.iter().map(|s| model.utility(s.budget)).sum()
    }
}

impl fmt::Display for PlannedStep {
    /// One stable CSV row: `t,budget,capacity,slack,verdict` (off-scale
    /// capacities print as `off-scale,-inf`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.capacity {
            Some(c) => write!(
                f,
                "{},{:.6},{c:.4},{:.4},{}",
                self.t,
                self.budget,
                self.slack,
                if self.certified {
                    "certified"
                } else {
                    "INFEASIBLE"
                }
            ),
            None => write!(
                f,
                "{},{:.6},off-scale,-inf,{}",
                self.t,
                self.budget,
                if self.certified {
                    "certified"
                } else {
                    "INFEASIBLE"
                }
            ),
        }
    }
}

impl fmt::Display for BudgetPlan {
    /// The stable plan table the CLI prints: a `t,budget,capacity,slack,
    /// verdict` header followed by one [`PlannedStep`] row per timestep.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t,budget,capacity,slack,verdict")?;
        for step in &self.steps {
            write!(f, "\n{step}")?;
        }
        Ok(())
    }
}

/// Greedy-forward planner: per-step geometric budget search against the
/// all-columns Theorem IV.1 oracle, warm-started from the previous step.
/// See the module docs for the guarantee and the canonical-history caveat.
///
/// # Errors
/// Configuration validation; domain mismatches; mechanism rebuilds;
/// quantification failures.
pub fn plan_greedy<P: TransitionProvider>(
    lppm: Box<dyn Lppm>,
    event: &StEvent,
    provider: P,
    horizon: usize,
    target: f64,
    config: &PlannerConfig,
) -> Result<BudgetPlan> {
    let mut planner = Planner::new(lppm, event, provider, horizon, target, config)?;
    let mut previous = planner.cache.base_budget();
    for _ in 0..horizon {
        previous = planner.plan_step_greedy(previous)?;
    }
    Ok(planner.finish())
}

/// Uniform-split baseline: every timestep gets `ε*/T`, evaluated by the
/// same oracle (no search). The sequential-composition bound makes the
/// split provably safe when the per-step budget is read as a location-DP
/// level; here it is evaluated exactly, so over-conservatism shows up as
/// large per-step slack. The split is clamped into the mechanism's
/// `[floor, base]` range — a mechanism cannot release above its base
/// budget, and the planner-conformance contract pins every planned budget
/// inside those bounds.
///
/// # Errors
/// See [`plan_greedy`].
pub fn plan_uniform_split<P: TransitionProvider>(
    lppm: Box<dyn Lppm>,
    event: &StEvent,
    provider: P,
    horizon: usize,
    target: f64,
    config: &PlannerConfig,
) -> Result<BudgetPlan> {
    let mut planner = Planner::new(lppm, event, provider, horizon, target, config)?;
    let base = planner.cache.base_budget();
    let split = (target / horizon as f64).clamp(config.floor, base);
    for _ in 0..horizon {
        planner.plan_step_fixed(split)?;
    }
    Ok(planner.finish())
}

/// Utility-aware knapsack planner: maximizes the horizon's total utility
/// `Σ_t u(ε_t)` under a pluggable [`UtilityModel`], subject to every
/// prefix re-certifying ε* against the same all-columns, all-priors
/// Theorem IV.1 oracle the other planners use.
///
/// Three phases:
///
/// 1. **Probe** — run [`plan_greedy`] and [`plan_uniform_split`]; each
///    probe's per-step budgets form a feasible baseline, and the largest
///    *certified* total ε-mass among them is the knapsack capacity `C`
///    (the greedy mass is kept as the capacity floor even when greedy has
///    uncertified steps — it is per-step maximal along its own history).
/// 2. **Allocate** — sample `u` on the geometric budget ladder, take each
///    step's upper concave envelope, and hand the incremental segments to
///    [`priste_qp::max_budgeted`]: `max Σ w·x` s.t. `Σ a·x ≤ C − T·floor`,
///    `0 ≤ x ≤ 1`. Concavity makes the density-greedy LP solution a valid
///    per-step curve fill; item order prefers *later* steps on density
///    ties, since early spend is what tightens later prefixes.
/// 3. **Repair** — walk the proposal forward along the canonical
///    worst-column history with the descend-then-climb loop `plan_greedy`
///    uses: descend to certified feasibility, bank any shortfall in a
///    slack pool, and let later steps climb above their proposal by at
///    most the banked slack.
///
/// The returned plan is the best of {repaired knapsack, greedy, uniform}:
/// most certified steps first, strictly higher total utility under `model`
/// second — so by construction `plan_knapsack` never does worse than
/// either baseline on the model's own objective. Ties return the
/// greedy-feasible plan unchanged (this covers degenerate utility curves —
/// all-zero slopes propose the floor everywhere — without erroring).
///
/// # Errors
/// See [`plan_greedy`].
pub fn plan_knapsack<P: TransitionProvider + Clone>(
    lppm: Box<dyn Lppm>,
    event: &StEvent,
    provider: P,
    horizon: usize,
    target: f64,
    config: &PlannerConfig,
    model: &dyn UtilityModel,
) -> Result<BudgetPlan> {
    // Phase 1: probes — feasible baselines + the certified ε-mass.
    let greedy = plan_greedy(
        lppm.with_budget(lppm.budget())?,
        event,
        provider.clone(),
        horizon,
        target,
        config,
    )?;
    let uniform = plan_uniform_split(
        lppm.with_budget(lppm.budget())?,
        event,
        provider.clone(),
        horizon,
        target,
        config,
    )?;
    plan_knapsack_with_probes(
        lppm, event, provider, horizon, target, config, model, &greedy, &uniform,
    )
}

/// [`plan_knapsack`] phases 2–3 against caller-supplied probe plans — for
/// callers that already paid for the greedy and uniform oracle walks (the
/// CLI's three-way comparison table, `Pipeline::plan_all` in the facade)
/// and must not pay them twice. The probes must describe the same scenario:
/// horizon and target are checked; mechanism, model and config agreement is
/// the caller's responsibility.
///
/// # Errors
/// [`CalibrateError::InvalidConfig`] on probe/scenario mismatch; otherwise
/// see [`plan_greedy`].
#[allow(clippy::too_many_arguments)] // mirrors plan_knapsack plus the two probes
pub fn plan_knapsack_with_probes<P: TransitionProvider>(
    lppm: Box<dyn Lppm>,
    event: &StEvent,
    provider: P,
    horizon: usize,
    target: f64,
    config: &PlannerConfig,
    model: &dyn UtilityModel,
    greedy: &BudgetPlan,
    uniform: &BudgetPlan,
) -> Result<BudgetPlan> {
    for (name, probe) in [("greedy", greedy), ("uniform", uniform)] {
        if probe.steps.len() != horizon || (probe.target - target).abs() > 1e-12 {
            return Err(CalibrateError::InvalidConfig {
                message: format!(
                    "{name} probe plan describes horizon {} at ε* = {}, not horizon \
                     {horizon} at ε* = {target}",
                    probe.steps.len(),
                    probe.target
                ),
            });
        }
    }
    let mass = |plan: &BudgetPlan| plan.steps.iter().map(|s| s.budget).sum::<f64>();
    let mut capacity = mass(greedy);
    if uniform.all_certified() {
        capacity = capacity.max(mass(uniform));
    }

    // Phase 2: piecewise-linear knapsack over the concavified curves.
    let mut planner = Planner::new(lppm, event, provider, horizon, target, config)?;
    let base = planner.cache.base_budget();
    let rungs = budget_ladder(base, config);
    let envelope = concave_envelope(&rungs, model);
    let proposal = allocate(
        &envelope,
        horizon,
        capacity - horizon as f64 * config.floor,
        config,
    );

    // Phase 3: certified repair along the canonical history.
    let mut pool = 0.0f64;
    for &proposed in &proposal {
        let proposed = proposed.clamp(config.floor, base);
        let cap = (proposed + pool).min(base);
        let realized = planner.plan_step_search(proposed, cap)?;
        pool = (pool + proposed - realized).max(0.0);
    }
    let knapsack = planner.finish();

    // Selection: greedy is the fallback; a candidate replaces the incumbent
    // only by certifying more steps or strictly beating it on the model.
    let mut best = greedy;
    for candidate in [uniform, &knapsack] {
        let improves = candidate.certified_steps() > best.certified_steps()
            || (candidate.certified_steps() == best.certified_steps()
                && candidate.total_utility(model) > best.total_utility(model) + 1e-12);
        if improves {
            best = candidate;
        }
    }
    Ok(best.clone())
}

/// The geometric budget ladder in ascending order: `floor` first, then the
/// backoff rungs `base·β^k` above it, `base` last (capped in length like
/// the guard's attempt budget).
fn budget_ladder(base: f64, config: &PlannerConfig) -> Vec<f64> {
    let mut rungs = vec![base.max(config.floor)];
    while *rungs.last().expect("non-empty") > config.floor && rungs.len() < MAX_LADDER_RUNGS {
        let next = (rungs.last().expect("non-empty") * config.backoff).max(config.floor);
        rungs.push(next);
    }
    if *rungs.last().expect("non-empty") > config.floor {
        rungs.push(config.floor);
    }
    rungs.reverse();
    rungs.dedup();
    rungs
}

/// Samples the utility model on the ladder and keeps the upper concave
/// envelope: the returned `(ε, u)` points have strictly increasing ε and
/// non-increasing marginal densities, so filling segments in density order
/// is a valid curve traversal.
fn concave_envelope(rungs: &[f64], model: &dyn UtilityModel) -> Vec<(f64, f64)> {
    let mut hull: Vec<(f64, f64)> = Vec::with_capacity(rungs.len());
    for &eps in rungs {
        let u = model.utility(eps);
        if !u.is_finite() {
            continue;
        }
        while hull.len() >= 2 {
            let (x1, y1) = hull[hull.len() - 2];
            let (x2, y2) = hull[hull.len() - 1];
            // Pop while the middle point sits on or below the chord.
            if (y2 - y1) * (eps - x2) <= (u - y2) * (x2 - x1) {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push((eps, u));
    }
    hull
}

/// Solves the budgeted LP over the per-step envelope segments and maps the
/// solution back to per-step budgets (`floor` plus the taken ε-mass).
/// Items are laid out step-major with identical curves per step; the LP's
/// documented tie-break (higher index wins at equal density) then prefers
/// later steps, which costs the least future capacity.
fn allocate(
    envelope: &[(f64, f64)],
    horizon: usize,
    extra_capacity: f64,
    config: &PlannerConfig,
) -> Vec<f64> {
    let mut weights = Vec::new();
    let mut masses = Vec::new();
    let mut owner = Vec::new();
    for t in 0..horizon {
        for pair in envelope.windows(2) {
            let ((lo, u_lo), (hi, u_hi)) = (pair[0], pair[1]);
            let gain = u_hi - u_lo;
            if gain <= 0.0 {
                // Concavity: once a segment stops paying, all later ones do
                // too — and zero-gain segments must not attract mass.
                break;
            }
            weights.push(gain);
            masses.push(hi - lo);
            owner.push(t);
        }
    }
    let mut budgets = vec![config.floor; horizon];
    if weights.is_empty() || extra_capacity <= 0.0 {
        return budgets;
    }
    let Some(solution) = max_budgeted(
        &Vector::from(weights),
        &Vector::from(masses.clone()),
        extra_capacity,
    ) else {
        return budgets;
    };
    for (i, &take) in solution.point.as_slice().iter().enumerate() {
        budgets[owner[i]] += take * masses[i];
    }
    budgets
}

/// Shared planner state: the mechanism ladder cache, the Theorem builder
/// advanced along the canonical worst-column history, and the accumulated
/// steps.
struct Planner<P> {
    cache: MechanismCache,
    builder: TheoremBuilder<P>,
    target: f64,
    eps_hi: f64,
    config: PlannerConfig,
    warm_capacity: Option<f64>,
    steps: Vec<PlannedStep>,
}

impl<P: TransitionProvider> Planner<P> {
    fn new(
        lppm: Box<dyn Lppm>,
        event: &StEvent,
        provider: P,
        horizon: usize,
        target: f64,
        config: &PlannerConfig,
    ) -> Result<Self> {
        config.validate()?;
        if horizon == 0 {
            return Err(CalibrateError::InvalidConfig {
                message: "horizon must be at least 1".into(),
            });
        }
        if !(target > 0.0 && target.is_finite()) {
            return Err(CalibrateError::InvalidConfig {
                message: format!("target must be positive and finite, got {target}"),
            });
        }
        crate::guard::validate_mechanism(lppm.as_ref(), provider.num_states(), config.floor)?;
        let builder = TheoremBuilder::new(event, provider)?;
        Ok(Planner {
            cache: MechanismCache::new(lppm),
            builder,
            target,
            eps_hi: config.eps_ceiling.max(target),
            config: config.clone(),
            warm_capacity: None,
            steps: Vec::with_capacity(horizon),
        })
    }

    /// All `m` candidate emission columns and their Theorem inputs at one
    /// budget, against the current committed history.
    fn step_inputs(&mut self, budget: f64) -> Result<(Vec<Vector>, Vec<TheoremInputs>)> {
        let mechanism = self.cache.at(budget)?;
        let m = mechanism.num_cells();
        let mut columns = Vec::with_capacity(m);
        let mut inputs = Vec::with_capacity(m);
        for o in 0..m {
            let col = mechanism.emission_column(CellId(o));
            inputs.push(self.builder.candidate(&col)?);
            columns.push(col);
        }
        Ok((columns, inputs))
    }

    /// Whether every candidate column certifies the target, fanned out over
    /// the configured worker threads.
    fn all_certify(&self, inputs: &[TheoremInputs]) -> bool {
        let epsilon = self.target;
        let solver = &self.config.solver;
        let check = |chunk: &[TheoremInputs]| {
            chunk.iter().all(|inp| {
                TheoremChecker::new(epsilon, solver.clone())
                    .check(&inp.a, &inp.b, &inp.c)
                    .satisfied()
            })
        };
        let threads = self.config.threads.clamp(1, inputs.len().max(1));
        if threads == 1 {
            return check(inputs);
        }
        let chunk_len = inputs.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(move || check(chunk)))
                .collect();
            handles
                .into_iter()
                .all(|h| h.join().expect("planner worker panicked"))
        })
    }

    /// Greedy search for one timestep starting from `start` (the previous
    /// step's budget); returns the chosen budget for warm-starting the
    /// next step.
    fn plan_step_greedy(&mut self, start: f64) -> Result<f64> {
        let base = self.cache.base_budget();
        self.plan_step_search(start, base)
    }

    /// The shared descend-then-climb search: descend the geometric ladder
    /// from `start` until every emission column certifies (the floor is
    /// always the last rung evaluated), then climb back up while slack
    /// allows — but never above `cap`. `plan_greedy` caps at the base
    /// budget; the knapsack repair caps at the proposed allocation plus
    /// whatever slack earlier steps banked.
    fn plan_step_search(&mut self, start: f64, cap: f64) -> Result<f64> {
        let cap = cap.clamp(self.config.floor, self.cache.base_budget());
        let cfg = self.config.clone();
        let mut budget = start.clamp(cfg.floor, cap);
        let mut rungs = 0usize;

        // Descend until feasible; the floor is always the last rung
        // actually evaluated before a step is declared infeasible.
        let (mut columns, mut inputs, feasible) = loop {
            rungs += 1;
            let (cols, inp) = self.step_inputs(budget)?;
            if self.all_certify(&inp) {
                break (cols, inp, true);
            }
            if budget <= cfg.floor {
                break (cols, inp, false);
            }
            budget = (budget * cfg.backoff).max(cfg.floor);
        };

        // Climb back toward the cap while slack allows.
        if feasible {
            while budget < cap {
                let up = (budget / cfg.backoff).min(cap);
                rungs += 1;
                let (cols, inp) = self.step_inputs(up)?;
                if self.all_certify(&inp) {
                    budget = up;
                    columns = cols;
                    inputs = inp;
                } else {
                    break;
                }
            }
        }

        self.record_step(budget, feasible, rungs, &columns, &inputs)?;
        Ok(budget)
    }

    /// Evaluates one timestep at a fixed budget (no search).
    fn plan_step_fixed(&mut self, budget: f64) -> Result<()> {
        let budget = budget.max(self.config.floor);
        let (columns, inputs) = self.step_inputs(budget)?;
        let feasible = self.all_certify(&inputs);
        self.record_step(budget, feasible, 1, &columns, &inputs)
    }

    /// Bisects per-column capacities for reporting, records the step, and
    /// commits the most-revealing column as the canonical history.
    fn record_step(
        &mut self,
        budget: f64,
        certified: bool,
        rungs: usize,
        columns: &[Vector],
        inputs: &[TheoremInputs],
    ) -> Result<()> {
        let cfg = &self.config;
        let capacities = min_certifiable_epsilons(
            inputs,
            cfg.eps_floor,
            self.eps_hi,
            cfg.tolerance,
            &cfg.solver,
            cfg.threads,
            self.warm_capacity,
        );
        // Step capacity: the worst per-column capacity; off-scale columns
        // (`None`) make the whole step off-scale.
        let capacity = capacities
            .iter()
            .map(|c| c.min_epsilon)
            .try_fold(f64::NEG_INFINITY, |acc, c| c.map(|v| acc.max(v)));
        // Canonical history: commit the most-revealing column, selected by
        // its *exact* closed-form realized loss under the uniform prior —
        // NOT by the bisected capacities, whose trailing bits shift with
        // warm-start chunk boundaries and would make the plan depend on
        // the `threads` knob whenever symmetric columns tie.
        let uniform = Vector::uniform(columns[0].len());
        let (worst_idx, _) = inputs
            .iter()
            .map(|inp| inp.privacy_loss(&uniform).unwrap_or(f64::INFINITY))
            .enumerate()
            .fold((0, f64::NEG_INFINITY), |(bi, bv), (i, v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            });
        self.warm_capacity = capacity;
        self.steps.push(PlannedStep {
            t: self.steps.len() + 1,
            budget,
            capacity,
            slack: capacity.map_or(f64::NEG_INFINITY, |c| self.target - c),
            certified,
            rungs,
        });
        self.builder.commit(columns[worst_idx].clone())?;
        Ok(())
    }

    fn finish(self) -> BudgetPlan {
        BudgetPlan {
            target: self.target,
            steps: self.steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priste_core::test_support::{homogeneous_world, plm};
    use priste_geo::GridMap;
    use priste_markov::Homogeneous;

    fn world() -> (GridMap, Homogeneous) {
        homogeneous_world(3, 1.0)
    }

    fn presence(m: usize) -> StEvent {
        priste_core::test_support::presence(m, 3, 2, 3)
    }

    #[test]
    fn greedy_certifies_and_beats_uniform_split_on_utility() {
        let (grid, provider) = world();
        let event = presence(grid.num_cells());
        let cfg = PlannerConfig::default();
        let greedy = plan_greedy(plm(&grid, 2.0), &event, provider.clone(), 4, 1.0, &cfg).unwrap();
        assert!(greedy.all_certified(), "greedy plan: {greedy:?}");
        let certified = greedy.certified_epsilon().unwrap();
        assert!(
            certified <= 1.0 + cfg.tolerance,
            "certified ε {certified} must not exceed the target"
        );
        let uniform = plan_uniform_split(plm(&grid, 2.0), &event, provider, 4, 1.0, &cfg).unwrap();
        assert!(
            greedy.mean_budget() >= uniform.mean_budget(),
            "greedy {} must not waste more budget than the uniform split {}",
            greedy.mean_budget(),
            uniform.mean_budget()
        );
    }

    #[test]
    fn per_step_slack_is_consistent() {
        let (grid, provider) = world();
        let event = presence(grid.num_cells());
        let plan = plan_greedy(
            plm(&grid, 1.0),
            &event,
            provider,
            3,
            1.5,
            &PlannerConfig::default(),
        )
        .unwrap();
        assert_eq!(plan.steps.len(), 3);
        for (i, s) in plan.steps.iter().enumerate() {
            assert_eq!(s.t, i + 1);
            assert!(s.rungs >= 1);
            if let Some(c) = s.capacity {
                assert!((s.slack - (1.5 - c)).abs() < 1e-12);
                if s.certified {
                    assert!(c <= 1.5 + 1e-3, "certified step with capacity {c}");
                }
            }
        }
    }

    #[test]
    fn threaded_planning_matches_sequential() {
        let (grid, provider) = world();
        let event = presence(grid.num_cells());
        let seq_cfg = PlannerConfig::default();
        let par_cfg = PlannerConfig {
            threads: 3,
            ..PlannerConfig::default()
        };
        let seq = plan_greedy(plm(&grid, 2.0), &event, provider.clone(), 3, 0.8, &seq_cfg).unwrap();
        let par = plan_greedy(plm(&grid, 2.0), &event, provider, 3, 0.8, &par_cfg).unwrap();
        assert_eq!(seq.steps.len(), par.steps.len());
        for (s, p) in seq.steps.iter().zip(&par.steps) {
            assert_eq!(s.budget, p.budget, "budget choice must be thread-invariant");
            assert_eq!(s.certified, p.certified);
        }
    }

    #[test]
    fn infeasible_targets_are_reported_not_hidden() {
        let (grid, provider) = world();
        let event = presence(grid.num_cells());
        // A floor of 0.5 with a sharp mechanism cannot certify ε* = 1e-4.
        let cfg = PlannerConfig {
            floor: 0.5,
            ..PlannerConfig::default()
        };
        let plan = plan_greedy(plm(&grid, 2.0), &event, provider, 3, 1e-4, &cfg).unwrap();
        assert!(!plan.all_certified());
        assert_eq!(plan.certified_epsilon(), None);
        assert!(plan.steps.iter().any(|s| !s.certified && s.slack < 0.0));
    }

    #[test]
    fn planner_rejects_bad_inputs() {
        let (grid, provider) = world();
        let event = presence(grid.num_cells());
        let cfg = PlannerConfig::default();
        assert!(matches!(
            plan_greedy(plm(&grid, 1.0), &event, provider.clone(), 0, 1.0, &cfg),
            Err(CalibrateError::InvalidConfig { .. })
        ));
        assert!(matches!(
            plan_greedy(plm(&grid, 1.0), &event, provider.clone(), 3, -1.0, &cfg),
            Err(CalibrateError::InvalidConfig { .. })
        ));
        let other = GridMap::new(2, 2, 1.0).unwrap();
        assert!(matches!(
            plan_greedy(plm(&other, 1.0), &event, provider, 3, 1.0, &cfg),
            Err(CalibrateError::InvalidConfig { .. })
        ));
        let bad = PlannerConfig {
            backoff: 0.0,
            ..PlannerConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn knapsack_with_concave_utility_matches_or_beats_greedy() {
        let (grid, provider) = world();
        let event = presence(grid.num_cells());
        let cfg = PlannerConfig::default();
        let model = crate::utility::PlanarLaplaceError;
        let greedy = plan_greedy(plm(&grid, 2.0), &event, provider.clone(), 4, 1.0, &cfg).unwrap();
        let knap = plan_knapsack(plm(&grid, 2.0), &event, provider, 4, 1.0, &cfg, &model).unwrap();
        assert_eq!(knap.steps.len(), 4);
        assert!(
            knap.certified_steps() >= greedy.certified_steps(),
            "knapsack must not lose certification: {knap:?}"
        );
        assert!(
            knap.total_utility(&model) >= greedy.total_utility(&model) - 1e-12,
            "knapsack {} below greedy {}",
            knap.total_utility(&model),
            greedy.total_utility(&model)
        );
        if knap.all_certified() {
            let certified = knap.certified_epsilon().unwrap();
            assert!(certified <= 1.0 + cfg.tolerance, "certified ε {certified}");
        }
    }

    #[test]
    fn knapsack_with_degenerate_flat_utility_falls_back_to_greedy() {
        struct Flat;
        impl crate::utility::UtilityModel for Flat {
            fn utility(&self, _epsilon: f64) -> f64 {
                0.0 // all-zero slopes: nothing to allocate
            }
            fn name(&self) -> &str {
                "flat"
            }
        }
        let (grid, provider) = world();
        let event = presence(grid.num_cells());
        let cfg = PlannerConfig::default();
        let greedy = plan_greedy(plm(&grid, 2.0), &event, provider.clone(), 3, 1.0, &cfg).unwrap();
        let knap = plan_knapsack(plm(&grid, 2.0), &event, provider, 3, 1.0, &cfg, &Flat).unwrap();
        assert_eq!(knap, greedy, "flat utility must return the greedy plan");
    }

    #[test]
    fn knapsack_with_the_linear_legacy_proxy_falls_back_to_greedy() {
        let (grid, provider) = world();
        let event = presence(grid.num_cells());
        let cfg = PlannerConfig::default();
        let greedy = plan_greedy(plm(&grid, 2.0), &event, provider.clone(), 3, 0.8, &cfg).unwrap();
        let knap = plan_knapsack(
            plm(&grid, 2.0),
            &event,
            provider,
            3,
            0.8,
            &cfg,
            &crate::utility::MeanEpsilon,
        )
        .unwrap();
        // Greedy already maximizes per-step budget; a linear objective
        // cannot beat it, so the fallback must fire.
        assert!(
            knap.total_utility(&crate::utility::MeanEpsilon) <= greedy.mean_budget() * 3.0 + 1e-9
        );
        assert!(knap.all_certified() == greedy.all_certified());
    }

    #[test]
    fn knapsack_with_probes_rejects_mismatched_probe_plans() {
        let (grid, provider) = world();
        let event = presence(grid.num_cells());
        let cfg = PlannerConfig::default();
        let model = crate::utility::PlanarLaplaceError;
        let greedy = plan_greedy(plm(&grid, 2.0), &event, provider.clone(), 2, 1.0, &cfg).unwrap();
        let uniform =
            plan_uniform_split(plm(&grid, 2.0), &event, provider.clone(), 2, 1.0, &cfg).unwrap();
        // Wrong horizon.
        assert!(matches!(
            plan_knapsack_with_probes(
                plm(&grid, 2.0),
                &event,
                provider.clone(),
                3,
                1.0,
                &cfg,
                &model,
                &greedy,
                &uniform,
            ),
            Err(CalibrateError::InvalidConfig { .. })
        ));
        // Wrong target.
        assert!(matches!(
            plan_knapsack_with_probes(
                plm(&grid, 2.0),
                &event,
                provider.clone(),
                2,
                0.5,
                &cfg,
                &model,
                &greedy,
                &uniform,
            ),
            Err(CalibrateError::InvalidConfig { .. })
        ));
        // Matching probes reproduce plan_knapsack exactly.
        let direct = plan_knapsack(
            plm(&grid, 2.0),
            &event,
            provider.clone(),
            2,
            1.0,
            &cfg,
            &model,
        )
        .unwrap();
        let reused = plan_knapsack_with_probes(
            plm(&grid, 2.0),
            &event,
            provider,
            2,
            1.0,
            &cfg,
            &model,
            &greedy,
            &uniform,
        )
        .unwrap();
        assert_eq!(direct, reused);
    }

    #[test]
    fn uniform_split_budget_is_clamped_into_the_mechanism_range() {
        let (grid, provider) = world();
        let event = presence(grid.num_cells());
        let cfg = PlannerConfig::default();
        // target/T = 8 would exceed the base budget α = 2: must clamp.
        let plan = plan_uniform_split(plm(&grid, 2.0), &event, provider, 2, 16.0, &cfg).unwrap();
        for s in &plan.steps {
            assert!(s.budget <= 2.0 + 1e-12, "budget {} above base", s.budget);
            assert!(s.budget >= cfg.floor);
        }
    }

    #[test]
    fn budget_ladder_is_ascending_and_bounded() {
        let cfg = PlannerConfig::default();
        let rungs = budget_ladder(2.0, &cfg);
        assert_eq!(rungs.first().copied(), Some(cfg.floor));
        assert_eq!(rungs.last().copied(), Some(2.0));
        assert!(rungs.windows(2).all(|w| w[0] < w[1]), "{rungs:?}");
        // A backoff of 0.999 must hit the length cap, not spin.
        let slow = PlannerConfig {
            backoff: 0.999,
            ..PlannerConfig::default()
        };
        let rungs = budget_ladder(2.0, &slow);
        assert!(rungs.len() <= MAX_LADDER_RUNGS + 1);
        assert_eq!(rungs.first().copied(), Some(slow.floor));
    }

    #[test]
    fn concave_envelope_bridges_convex_dips() {
        // A saturated quality-loss curve has a flat plateau then a concave
        // rise; the envelope must bridge the plateau with one chord so the
        // marginal densities are non-increasing.
        let model = crate::utility::PlmQualityLoss::new(4.0);
        let rungs = budget_ladder(2.0, &PlannerConfig::default());
        let hull = concave_envelope(&rungs, &model);
        assert!(hull.len() >= 2);
        let mut prev_density = f64::INFINITY;
        for pair in hull.windows(2) {
            let d = (pair[1].1 - pair[0].1) / (pair[1].0 - pair[0].0);
            assert!(
                d <= prev_density + 1e-12,
                "densities must be non-increasing: {hull:?}"
            );
            prev_density = d;
        }
    }

    #[test]
    fn plan_display_is_the_stable_csv_table() {
        let plan = BudgetPlan {
            target: 0.8,
            steps: vec![
                PlannedStep {
                    t: 1,
                    budget: 0.125,
                    capacity: Some(0.6459),
                    slack: 0.1541,
                    certified: true,
                    rungs: 5,
                },
                PlannedStep {
                    t: 2,
                    budget: 0.0625,
                    capacity: None,
                    slack: f64::NEG_INFINITY,
                    certified: false,
                    rungs: 1,
                },
            ],
        };
        assert_eq!(
            plan.to_string(),
            "t,budget,capacity,slack,verdict\n\
             1,0.125000,0.6459,0.1541,certified\n\
             2,0.062500,off-scale,-inf,INFEASIBLE"
        );
    }

    #[test]
    fn total_utility_sums_the_model_over_steps() {
        let plan = BudgetPlan {
            target: 1.0,
            steps: vec![
                PlannedStep {
                    t: 1,
                    budget: 0.5,
                    capacity: None,
                    slack: f64::NEG_INFINITY,
                    certified: true,
                    rungs: 1,
                },
                PlannedStep {
                    t: 2,
                    budget: 1.0,
                    capacity: None,
                    slack: f64::NEG_INFINITY,
                    certified: true,
                    rungs: 1,
                },
            ],
        };
        let u = plan.total_utility(&crate::utility::PlanarLaplaceError);
        assert!((u - (-4.0 - 2.0)).abs() < 1e-12, "{u}");
        assert!((plan.total_utility(&crate::utility::MeanEpsilon) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn planner_rejects_a_floor_above_the_base_budget() {
        let (grid, provider) = world();
        let event = presence(grid.num_cells());
        let cfg = PlannerConfig {
            floor: 3.0,
            ..PlannerConfig::default()
        };
        // α = 2 < floor = 3: must be a config error, not a clamp panic.
        assert!(matches!(
            plan_greedy(plm(&grid, 2.0), &event, provider, 2, 1.0, &cfg),
            Err(CalibrateError::InvalidConfig { .. })
        ));
    }
}
