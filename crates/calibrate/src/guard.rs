//! The online guard: per-release budget backoff that converts any
//! emission-matrix LPPM into one whose realized release stream certifies a
//! target ε-spatiotemporal event privacy level.
//!
//! This is the per-timestamp calibration loop of the journal extension
//! (*Protecting Spatiotemporal Event Privacy in Continuous Location-Based
//! Services*, arXiv:1907.10814), built on the streaming quantifier instead
//! of full-horizon replay: before each release the candidate observation's
//! emission column is *peeked* through every protected event's
//! [`IncrementalTwoWorld`]; if the cumulative realized loss would exceed
//! the target, the location budget is shrunk geometrically — the
//! exponential decay of the paper's Algorithm 2, with the per-timestep
//! budget semantics of δ-location-set privacy under temporal correlations
//! (arXiv:1410.5919) — and a fresh candidate is drawn from the weaker
//! mechanism. When even the floor budget cannot certify, the configurable
//! [`OnExhaustion`] policy decides between suppressing the release and
//! shipping the floor candidate uncertified.
//!
//! A suppressed timestamp commits the **flat** emission column: every
//! state emits "nothing" with the same likelihood, so both possible worlds
//! scale identically and the adversary's posterior (hence the realized
//! loss) is unchanged while model time still advances. Under this
//! convention the suppression decision itself is treated as
//! observation-independent — the standard modelling assumption for
//! release/suppress mechanisms.

use crate::{CalibrateError, Result};
use priste_event::StEvent;
use priste_geo::CellId;
use priste_linalg::Vector;
use priste_lppm::Lppm;
use priste_markov::TransitionProvider;
use priste_obs::{Counter, Histogram, Registry};
use priste_quantify::{IncrementalTwoWorld, QuantifyError};
use rand::RngCore;
use std::collections::BTreeMap;
use std::fmt;

/// Safety cap on backoff attempts per release. A ladder that would exceed
/// it (backoff very close to 1) jumps straight to the floor for its final
/// rung, so the floor is still always evaluated before the exhaustion
/// policy fires.
const MAX_ATTEMPTS: usize = 200;

/// What the guard does when even the floor budget cannot certify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnExhaustion {
    /// Withhold the release and commit the flat (uninformative) column —
    /// the adversary learns only that time passed. **Default.**
    #[default]
    Suppress,
    /// Release the floor-budget candidate anyway and record it as
    /// uncertified — for deployments where availability outranks the
    /// guarantee; the realized loss may then exceed the target.
    ReleaseAtFloor,
}

/// Configuration of the online calibration guard.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardConfig {
    /// The ε-spatiotemporal event privacy level every committed prefix must
    /// certify.
    pub target_epsilon: f64,
    /// Geometric budget decay factor in `(0, 1)`; `0.5` is Algorithm 2's
    /// halving.
    pub backoff: f64,
    /// Smallest location budget the backoff may reach before the
    /// [`OnExhaustion`] policy fires.
    pub floor: f64,
    /// Policy when no feasible budget remains.
    pub on_exhaustion: OnExhaustion,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            target_epsilon: 1.0,
            backoff: 0.5,
            floor: 1e-3,
            on_exhaustion: OnExhaustion::Suppress,
        }
    }
}

impl GuardConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// [`CalibrateError::InvalidConfig`] naming the bad field.
    pub fn validate(&self) -> Result<()> {
        if !(self.target_epsilon > 0.0 && self.target_epsilon.is_finite()) {
            return Err(CalibrateError::InvalidConfig {
                message: format!(
                    "target_epsilon must be positive and finite, got {}",
                    self.target_epsilon
                ),
            });
        }
        if !(self.backoff > 0.0 && self.backoff < 1.0) {
            return Err(CalibrateError::InvalidConfig {
                message: format!("backoff must be in (0, 1), got {}", self.backoff),
            });
        }
        if !(self.floor > 0.0 && self.floor.is_finite()) {
            return Err(CalibrateError::InvalidConfig {
                message: format!("floor must be positive and finite, got {}", self.floor),
            });
        }
        Ok(())
    }
}

/// Shared construction-time validation for a mechanism entering guarded,
/// planned, or enforcing use: its domain must match the model's and the
/// backoff floor must not exceed its base budget (otherwise there is
/// nothing to back off to). One helper so the guard, the planner, and
/// `priste-online`'s enforcing mode cannot silently diverge.
///
/// # Errors
/// [`CalibrateError::InvalidConfig`] naming the violated rule.
pub fn validate_mechanism(lppm: &dyn Lppm, num_states: usize, floor: f64) -> Result<()> {
    if lppm.num_cells() != num_states {
        return Err(CalibrateError::InvalidConfig {
            message: format!(
                "mechanism domain ({} cells) does not match the model ({} states)",
                lppm.num_cells(),
                num_states
            ),
        });
    }
    if floor > lppm.budget() {
        return Err(CalibrateError::InvalidConfig {
            message: format!(
                "floor {} exceeds the mechanism's base budget {}",
                floor,
                lppm.budget()
            ),
        });
    }
    Ok(())
}

/// A prototype LPPM plus its budget-decayed variants, rebuilt lazily via
/// [`Lppm::with_budget`] and cached by budget bits (the α, α·β, α·β², …
/// ladder repeats across timestamps and each rebuild costs an `O(m²)`
/// discretization).
pub struct MechanismCache {
    base: Box<dyn Lppm>,
    base_budget: f64,
    variants: BTreeMap<u64, Box<dyn Lppm>>,
}

impl fmt::Debug for MechanismCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MechanismCache")
            .field("base_budget", &self.base_budget)
            .field("num_cells", &self.base.num_cells())
            .field("cached_variants", &self.variants.len())
            .finish()
    }
}

impl MechanismCache {
    /// Wraps a prototype mechanism; its construction-time budget is the
    /// ladder's starting rung.
    pub fn new(base: Box<dyn Lppm>) -> Self {
        let base_budget = base.budget();
        MechanismCache {
            base,
            base_budget,
            variants: BTreeMap::new(),
        }
    }

    /// The prototype's budget (the guard's first attempt each release).
    pub fn base_budget(&self) -> f64 {
        self.base_budget
    }

    /// State-domain size `m`.
    pub fn num_cells(&self) -> usize {
        self.base.num_cells()
    }

    /// The (cached) variant of the prototype at `budget`.
    ///
    /// # Errors
    /// Mechanism rebuild failures (non-positive budget).
    pub fn at(&mut self, budget: f64) -> Result<&dyn Lppm> {
        if budget == self.base_budget {
            return Ok(self.base.as_ref());
        }
        if !self.variants.contains_key(&budget.to_bits()) {
            let built = self.base.with_budget(budget)?;
            self.variants.insert(budget.to_bits(), built);
        }
        Ok(self.variants[&budget.to_bits()].as_ref())
    }

    /// Pre-builds every rung of `config`'s backoff ladder (the exact budget
    /// sequence [`run_guard`] walks), so subsequent lookups need no
    /// mutation and the cache can be shared read-only across the worker
    /// threads of a parallel release path ([`run_guard_prewarmed`]).
    ///
    /// # Errors
    /// Mechanism rebuild failures.
    pub fn prewarm(&mut self, config: &GuardConfig) -> Result<()> {
        let mut budget = self.base_budget.max(config.floor);
        let mut rungs = 0usize;
        loop {
            self.at(budget)?;
            rungs += 1;
            if budget <= config.floor || rungs >= MAX_ATTEMPTS {
                return Ok(());
            }
            budget = if rungs >= MAX_ATTEMPTS - 1 {
                config.floor
            } else {
                (budget * config.backoff).max(config.floor)
            };
        }
    }

    /// Read-only rung lookup; the rung must already exist (base budget or
    /// [`MechanismCache::prewarm`]ed / previously-built variant).
    ///
    /// # Errors
    /// [`CalibrateError::InvalidConfig`] naming the missing budget.
    pub fn get(&self, budget: f64) -> Result<&dyn Lppm> {
        if budget == self.base_budget {
            return Ok(self.base.as_ref());
        }
        self.variants
            .get(&budget.to_bits())
            .map(Box::as_ref)
            .ok_or_else(|| CalibrateError::InvalidConfig {
                message: format!("budget {budget} is not prewarmed in the mechanism cache"),
            })
    }
}

/// Where [`run_guard`]'s loop obtains the mechanism for each rung: a
/// mutable cache that builds variants on demand, or a prewarmed cache
/// shared read-only across threads.
trait RungSource {
    fn rung(&mut self, budget: f64) -> Result<&dyn Lppm>;
    fn num_cells(&self) -> usize;
    fn base_budget(&self) -> f64;
}

struct BuildOnDemand<'a>(&'a mut MechanismCache);

impl RungSource for BuildOnDemand<'_> {
    fn rung(&mut self, budget: f64) -> Result<&dyn Lppm> {
        self.0.at(budget)
    }

    fn num_cells(&self) -> usize {
        self.0.num_cells()
    }

    fn base_budget(&self) -> f64 {
        self.0.base_budget()
    }
}

struct Prewarmed<'a>(&'a MechanismCache);

impl RungSource for Prewarmed<'_> {
    fn rung(&mut self, budget: f64) -> Result<&dyn Lppm> {
        self.0.get(budget)
    }

    fn num_cells(&self) -> usize {
        self.0.num_cells()
    }

    fn base_budget(&self) -> f64 {
        self.0.base_budget()
    }
}

/// One rung of the backoff ladder: what was sampled and how it fared.
#[derive(Debug, Clone, PartialEq)]
pub struct Attempt {
    /// Location budget of the mechanism this candidate was drawn from.
    pub budget: f64,
    /// The sampled candidate observation.
    pub observed: CellId,
    /// Worst cumulative realized loss across the protected events had this
    /// candidate been committed (`+∞` on degenerate evidence).
    pub worst_loss: f64,
    /// Whether that loss stayed within the target.
    pub certified: bool,
}

/// The guard's verdict for one timestamp.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// A candidate was released.
    Released {
        /// The released observation.
        observed: CellId,
        /// The budget it was drawn at.
        budget: f64,
        /// Whether the release certifies the target (`false` only under
        /// [`OnExhaustion::ReleaseAtFloor`]).
        certified: bool,
    },
    /// The release was withheld ([`OnExhaustion::Suppress`]); the flat
    /// column was committed instead.
    Suppressed,
}

impl Decision {
    /// Whether this timestamp's committed prefix certifies the target
    /// (suppression preserves the previous — certified — loss).
    pub fn certified(&self) -> bool {
        match self {
            Decision::Released { certified, .. } => *certified,
            Decision::Suppressed => true,
        }
    }
}

/// Outcome of one guard pass, decoupled from any particular world store so
/// both [`CalibratedMechanism`] and `priste-online`'s enforcing sessions
/// can share the loop.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardOutcome {
    /// The verdict.
    pub decision: Decision,
    /// The full backoff trace, first attempt (base budget) first.
    pub attempts: Vec<Attempt>,
    /// The emission column the caller must commit to its quantifier state:
    /// the released candidate's column, or the flat column on suppression.
    pub column: Vector,
}

/// Observability handles for one guard instance — the privacy-vs-utility
/// signals an operator watches: releases vs suppressions vs floor
/// releases, the per-release location budget actually spent, and how deep
/// the backoff ladder had to walk.
///
/// All handles are cheap clonable atomics (`priste-obs`), so recording is
/// safe from the parallel batched release path. The
/// [`GuardInstruments::disabled`] default costs a few atomic loads per
/// release and never allocates.
#[derive(Debug, Clone)]
pub struct GuardInstruments {
    /// Certified releases (`guard_releases_total`).
    pub releases: Counter,
    /// Withheld releases — flat column committed
    /// (`guard_suppressions_total`).
    pub suppressions: Counter,
    /// Uncertified floor-budget releases under
    /// [`OnExhaustion::ReleaseAtFloor`] (`guard_floor_releases_total`).
    pub floor_releases: Counter,
    /// Location budget of each released candidate — the per-release ε
    /// spend (`guard_epsilon_spent`).
    pub epsilon_spent: Histogram,
    /// Backoff attempts evaluated per release (`guard_backoff_depth`).
    pub backoff_depth: Histogram,
}

impl GuardInstruments {
    /// Inert handles: recording is a few atomic loads, no allocation.
    pub fn disabled() -> Self {
        GuardInstruments {
            releases: Counter::disabled(),
            suppressions: Counter::disabled(),
            floor_releases: Counter::disabled(),
            epsilon_spent: Histogram::disabled(),
            backoff_depth: Histogram::disabled(),
        }
    }

    /// Handles registered in `registry` under the `guard_*` names above.
    pub fn from_registry(registry: &Registry) -> Self {
        GuardInstruments {
            releases: registry.counter("guard_releases_total"),
            suppressions: registry.counter("guard_suppressions_total"),
            floor_releases: registry.counter("guard_floor_releases_total"),
            epsilon_spent: registry.histogram("guard_epsilon_spent"),
            backoff_depth: registry.histogram("guard_backoff_depth"),
        }
    }

    /// Records one guard verdict.
    pub fn record(&self, outcome: &GuardOutcome) {
        match &outcome.decision {
            Decision::Released {
                budget,
                certified: true,
                ..
            } => {
                self.releases.inc();
                self.epsilon_spent.observe(*budget);
            }
            Decision::Released {
                budget,
                certified: false,
                ..
            } => {
                self.floor_releases.inc();
                self.epsilon_spent.observe(*budget);
            }
            Decision::Suppressed => self.suppressions.inc(),
        }
        self.backoff_depth.observe(outcome.attempts.len() as f64);
    }
}

impl Default for GuardInstruments {
    fn default() -> Self {
        GuardInstruments::disabled()
    }
}

/// Runs one release through the backoff loop. `worst_loss` evaluates a
/// candidate emission column against the caller's protected events and
/// returns the worst *cumulative* realized loss were it committed
/// (`peek`, not `observe` — nothing is mutated until the caller commits
/// [`GuardOutcome::column`]).
///
/// # Errors
/// Mechanism rebuild failures and whatever `worst_loss` raises.
pub fn run_guard<F>(
    cache: &mut MechanismCache,
    config: &GuardConfig,
    true_loc: CellId,
    rng: &mut dyn RngCore,
    worst_loss: F,
) -> Result<GuardOutcome>
where
    F: FnMut(&Vector) -> Result<f64>,
{
    run_guard_with(BuildOnDemand(cache), config, true_loc, rng, worst_loss)
}

/// [`run_guard`] against a **shared, read-only** cache: every rung of the
/// ladder must already exist ([`MechanismCache::prewarm`] with the same
/// `config`). This is the loop the parallel batched release path runs on —
/// many worker threads, one cache, no locks.
///
/// # Errors
/// As [`run_guard`], plus a missing (un-prewarmed) rung.
pub fn run_guard_prewarmed<F>(
    cache: &MechanismCache,
    config: &GuardConfig,
    true_loc: CellId,
    rng: &mut dyn RngCore,
    worst_loss: F,
) -> Result<GuardOutcome>
where
    F: FnMut(&Vector) -> Result<f64>,
{
    run_guard_with(Prewarmed(cache), config, true_loc, rng, worst_loss)
}

fn run_guard_with<S, F>(
    mut source: S,
    config: &GuardConfig,
    true_loc: CellId,
    rng: &mut dyn RngCore,
    mut worst_loss: F,
) -> Result<GuardOutcome>
where
    S: RungSource,
    F: FnMut(&Vector) -> Result<f64>,
{
    let mut attempts = Vec::new();
    let mut budget = source.base_budget().max(config.floor);
    loop {
        let mechanism = source.rung(budget)?;
        let observed = mechanism.perturb(true_loc, rng);
        let column = mechanism.emission_column(observed);
        let loss = worst_loss(&column)?;
        let certified = loss <= config.target_epsilon;
        attempts.push(Attempt {
            budget,
            observed,
            worst_loss: loss,
            certified,
        });
        if certified {
            return Ok(GuardOutcome {
                decision: Decision::Released {
                    observed,
                    budget,
                    certified: true,
                },
                attempts,
                column,
            });
        }
        // The floor is always the last rung actually evaluated; only after
        // it fails does the exhaustion policy fire (so `ReleaseAtFloor`
        // genuinely ships a floor-budget candidate).
        if budget <= config.floor || attempts.len() >= MAX_ATTEMPTS {
            return Ok(match config.on_exhaustion {
                OnExhaustion::Suppress => {
                    let m = source.num_cells();
                    GuardOutcome {
                        decision: Decision::Suppressed,
                        attempts,
                        column: Vector::filled(m, 1.0 / m as f64),
                    }
                }
                OnExhaustion::ReleaseAtFloor => GuardOutcome {
                    decision: Decision::Released {
                        observed,
                        budget,
                        certified: false,
                    },
                    attempts,
                    column,
                },
            });
        }
        budget = if attempts.len() >= MAX_ATTEMPTS - 1 {
            // Out of attempts: make the last rung the floor itself rather
            // than wherever a slow backoff happens to sit.
            config.floor
        } else {
            (budget * config.backoff).max(config.floor)
        };
    }
}

/// Record of one calibrated release.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibratedRelease {
    /// Timestep of this release (1-based).
    pub t: usize,
    /// The verdict.
    pub decision: Decision,
    /// The full backoff trace.
    pub attempts: Vec<Attempt>,
    /// Worst cumulative realized loss across the protected events *after*
    /// committing this timestamp (0 with no events).
    pub loss: f64,
}

/// An LPPM wrapped with the online calibration guard: every release is
/// certified against a target ε-spatiotemporal event privacy level across
/// a set of protected events before it leaves the mechanism.
///
/// Each protected event is tracked by an [`IncrementalTwoWorld`], so one
/// release costs `O(k · a · m²)` for `k` events and `a` backoff attempts —
/// no horizon replay. The guarantee (under [`OnExhaustion::Suppress`]):
/// at every timestep the committed observation prefix satisfies
/// `|ln odds-lift| ≤ target_epsilon` for every protected event under the
/// construction-time `π` — exactly ε-ST-event privacy of the realized
/// stream, re-checkable offline with
/// [`TheoremBuilder`](priste_quantify::TheoremBuilder) (the
/// `guard_properties` proptest suite pins this).
#[derive(Debug)]
pub struct CalibratedMechanism<P> {
    cache: MechanismCache,
    config: GuardConfig,
    worlds: Vec<IncrementalTwoWorld<P>>,
    t: usize,
    /// Always-on suppression counter — the single source of truth behind
    /// [`CalibratedMechanism::suppressed`] and, once
    /// [`CalibratedMechanism::observe_into`] has run, the registry's
    /// `guard_suppressions_total`.
    suppressed: Counter,
    instruments: GuardInstruments,
}

impl<P: TransitionProvider + Clone> CalibratedMechanism<P> {
    /// Wraps `lppm` so its releases certify `config.target_epsilon` for
    /// every event in `events` under the mobility model and initial
    /// distribution `pi`.
    ///
    /// # Errors
    /// Configuration validation; domain mismatches between the mechanism
    /// and the model; [`IncrementalTwoWorld::new`] failures (bad `π`,
    /// degenerate event priors).
    pub fn new(
        lppm: Box<dyn Lppm>,
        events: &[StEvent],
        provider: P,
        pi: Vector,
        config: GuardConfig,
    ) -> Result<Self> {
        config.validate()?;
        validate_mechanism(lppm.as_ref(), provider.num_states(), config.floor)?;
        let worlds = events
            .iter()
            .map(|ev| IncrementalTwoWorld::new(ev.clone(), provider.clone(), pi.clone()))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        // Suppression is a service-semantics count (the `suppressed()`
        // accessor), not optional telemetry: it always counts, even while
        // the rest of the instruments are inert.
        let suppressed = Counter::new();
        let mut instruments = GuardInstruments::disabled();
        instruments.suppressions = suppressed.clone();
        Ok(CalibratedMechanism {
            cache: MechanismCache::new(lppm),
            config,
            worlds,
            t: 0,
            suppressed,
            instruments,
        })
    }

    /// Attaches observability: registers the `guard_*` instruments in
    /// `registry` (see [`GuardInstruments::from_registry`]) and adopts the
    /// always-on suppression counter — its pre-attach count is preserved
    /// in the exported snapshot.
    pub fn observe_into(&mut self, registry: &Registry) {
        let mut instruments = GuardInstruments::from_registry(registry);
        registry.adopt_counter("guard_suppressions_total", &self.suppressed);
        instruments.suppressions = self.suppressed.clone();
        self.instruments = instruments;
    }

    /// The guard configuration.
    pub fn config(&self) -> &GuardConfig {
        &self.config
    }

    /// The prototype mechanism's budget (first rung of every release).
    pub fn base_budget(&self) -> f64 {
        self.cache.base_budget()
    }

    /// Timesteps committed so far.
    pub fn observed(&self) -> usize {
        self.t
    }

    /// Releases suppressed so far.
    ///
    /// Thin shim kept for compatibility: the count now lives in a metrics
    /// counter (`guard_suppressions_total` after
    /// [`CalibratedMechanism::observe_into`]). Prefer reading it from the
    /// registry snapshot in new code.
    pub fn suppressed(&self) -> usize {
        self.suppressed.get() as usize
    }

    /// The per-event incremental quantifiers (attach order).
    pub fn worlds(&self) -> &[IncrementalTwoWorld<P>] {
        &self.worlds
    }

    /// Calibrates and commits one release for the true location.
    ///
    /// # Errors
    /// Mechanism rebuild failures; quantification errors other than the
    /// zero-likelihood case (which the guard treats as an uncertifiable
    /// candidate, not an error).
    pub fn release(
        &mut self,
        true_loc: CellId,
        rng: &mut dyn RngCore,
    ) -> Result<CalibratedRelease> {
        let worlds = &self.worlds;
        let outcome = run_guard(&mut self.cache, &self.config, true_loc, rng, |column| {
            peek_worst_loss(worlds, column)
        })?;
        let mut loss = 0.0f64;
        for world in &mut self.worlds {
            loss = loss.max(world.observe(&outcome.column)?.privacy_loss);
        }
        self.t += 1;
        // One record call covers releases/suppressions/floor releases,
        // ε spend, and ladder depth; the suppression counter inside is
        // always-on, the rest follow the attached registry.
        self.instruments.record(&outcome);
        Ok(CalibratedRelease {
            t: self.t,
            decision: outcome.decision,
            attempts: outcome.attempts,
            loss,
        })
    }
}

/// Worst cumulative realized loss across a set of worlds were `column`
/// committed next. A zero-likelihood candidate (impossible under the
/// model) is reported as `+∞` — uncertifiable, so the backoff moves on —
/// rather than an error. Takes any iterator of worlds so both
/// [`CalibratedMechanism`] and `priste-online`'s enforcing sessions (whose
/// windows wrap their quantifiers) share one policy.
///
/// # Errors
/// Quantification errors other than zero likelihood.
pub fn peek_worst_loss<'w, P: TransitionProvider + 'w>(
    worlds: impl IntoIterator<Item = &'w IncrementalTwoWorld<P>>,
    column: &Vector,
) -> Result<f64> {
    let mut worst = 0.0f64;
    for world in worlds {
        let loss = match world.peek(column) {
            Ok(step) => step.privacy_loss,
            Err(QuantifyError::ZeroLikelihood { .. }) => f64::INFINITY,
            Err(e) => return Err(e.into()),
        };
        worst = worst.max(loss);
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use priste_core::test_support::{homogeneous_world, plm, presence};
    use priste_geo::GridMap;
    use priste_markov::{gaussian_kernel_chain, Homogeneous};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> (GridMap, Homogeneous) {
        homogeneous_world(3, 1.0)
    }

    fn guarded(
        alpha: f64,
        target: f64,
        on_exhaustion: OnExhaustion,
    ) -> CalibratedMechanism<Homogeneous> {
        let (grid, provider) = world();
        let m = grid.num_cells();
        let lppm = plm(&grid, alpha);
        CalibratedMechanism::new(
            lppm,
            &[presence(m, 3, 2, 4)],
            provider,
            Vector::uniform(m),
            GuardConfig {
                target_epsilon: target,
                on_exhaustion,
                ..GuardConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn config_validation_rejects_bad_fields() {
        for bad in [
            GuardConfig {
                target_epsilon: 0.0,
                ..GuardConfig::default()
            },
            GuardConfig {
                backoff: 1.0,
                ..GuardConfig::default()
            },
            GuardConfig {
                floor: 0.0,
                ..GuardConfig::default()
            },
        ] {
            assert!(matches!(
                bad.validate(),
                Err(CalibrateError::InvalidConfig { .. })
            ));
        }
        assert!(GuardConfig::default().validate().is_ok());
    }

    #[test]
    fn cache_reuses_variants_and_keeps_the_base() {
        let (grid, _) = world();
        let mut cache = MechanismCache::new(plm(&grid, 1.0));
        assert_eq!(cache.base_budget(), 1.0);
        assert_eq!(cache.at(1.0).unwrap().budget(), 1.0);
        assert_eq!(cache.at(0.5).unwrap().budget(), 0.5);
        assert_eq!(cache.at(0.5).unwrap().budget(), 0.5);
        assert!(cache.at(-1.0).is_err());
        let dbg = format!("{cache:?}");
        assert!(dbg.contains("cached_variants"), "{dbg}");
    }

    #[test]
    fn every_committed_step_certifies_under_suppress() {
        let mut mech = guarded(3.0, 0.6, OnExhaustion::Suppress);
        let mut rng = StdRng::seed_from_u64(5);
        for loc in [0usize, 0, 1, 4, 8, 2] {
            let rel = mech.release(CellId(loc), &mut rng).unwrap();
            assert!(rel.decision.certified());
            assert!(
                rel.loss <= 0.6 + 1e-9,
                "t={}: committed loss {} exceeds target",
                rel.t,
                rel.loss
            );
            assert!(rel.attempts[0].budget == 3.0, "first rung is the base");
        }
        assert_eq!(mech.observed(), 6);
    }

    #[test]
    fn tight_targets_trigger_backoff_or_suppression() {
        let mut mech = guarded(4.0, 0.05, OnExhaustion::Suppress);
        let mut rng = StdRng::seed_from_u64(9);
        let mut backed_off = 0usize;
        for loc in [0usize, 1, 0, 2] {
            let rel = mech.release(CellId(loc), &mut rng).unwrap();
            if rel.attempts.len() > 1 {
                backed_off += 1;
            }
            assert!(rel.loss <= 0.05 + 1e-9);
        }
        assert!(
            backed_off > 0 || mech.suppressed() > 0,
            "a 0.05 target under a sharp α=4 PLM must not certify first try every time"
        );
    }

    #[test]
    fn release_at_floor_ships_uncertified_candidates() {
        let (grid, provider) = world();
        let m = grid.num_cells();
        let lppm = plm(&grid, 4.0);
        let mut mech = CalibratedMechanism::new(
            lppm,
            &[presence(m, 3, 1, 3)],
            provider,
            Vector::uniform(m),
            GuardConfig {
                target_epsilon: 1e-3,
                floor: 2.0, // only two rungs: 4.0 and 2.0
                on_exhaustion: OnExhaustion::ReleaseAtFloor,
                ..GuardConfig::default()
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let rel = mech.release(CellId(0), &mut rng).unwrap();
        match rel.decision {
            Decision::Released {
                certified, budget, ..
            } => {
                assert!(!certified, "a 1e-3 target cannot certify at budget 2");
                assert_eq!(budget, 2.0);
            }
            Decision::Suppressed => panic!("policy was ReleaseAtFloor"),
        }
        assert_eq!(mech.suppressed(), 0);
    }

    #[test]
    fn suppression_commits_the_flat_column_and_preserves_loss() {
        let (grid, provider) = world();
        let m = grid.num_cells();
        let lppm = plm(&grid, 4.0);
        // A floor of 1.0 keeps every rung informative, so a 1e-4 target is
        // unreachable and the policy must fire.
        let mut mech = CalibratedMechanism::new(
            lppm,
            &[presence(m, 3, 2, 4)],
            provider,
            Vector::uniform(m),
            GuardConfig {
                target_epsilon: 1e-4,
                floor: 1.0,
                on_exhaustion: OnExhaustion::Suppress,
                ..GuardConfig::default()
            },
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let r1 = mech.release(CellId(0), &mut rng).unwrap();
        assert_eq!(r1.decision, Decision::Suppressed);
        assert!(r1.loss < 1e-9, "flat commits carry no information");
        let r2 = mech.release(CellId(4), &mut rng).unwrap();
        assert_eq!(r2.decision, Decision::Suppressed);
        assert!(r2.loss < 1e-9);
        assert_eq!(mech.suppressed(), 2);
    }

    #[test]
    fn construction_rejects_a_floor_above_the_base_budget() {
        let (grid, provider) = world();
        let m = grid.num_cells();
        let lppm = plm(&grid, 0.5);
        assert!(matches!(
            CalibratedMechanism::new(
                lppm,
                &[presence(m, 3, 2, 4)],
                provider,
                Vector::uniform(m),
                GuardConfig {
                    floor: 1.0,
                    ..GuardConfig::default()
                },
            ),
            Err(CalibrateError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn construction_rejects_domain_mismatch() {
        let (grid, _) = world();
        let other = GridMap::new(2, 2, 1.0).unwrap();
        let provider = Homogeneous::new(gaussian_kernel_chain(&other, 1.0).unwrap());
        let lppm = plm(&grid, 1.0);
        assert!(matches!(
            CalibratedMechanism::new(
                lppm,
                &[presence(4, 2, 2, 3)],
                provider,
                Vector::uniform(4),
                GuardConfig::default(),
            ),
            Err(CalibrateError::InvalidConfig { .. })
        ));
    }
}
