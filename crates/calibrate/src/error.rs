use priste_lppm::LppmError;
use priste_quantify::QuantifyError;
use std::fmt;

/// Errors produced by the calibration layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CalibrateError {
    /// A mechanism-layer error (rebuilding an LPPM at a decayed budget).
    Lppm(LppmError),
    /// A quantification-layer error (domain mismatches, bad distributions,
    /// degenerate priors, zero-likelihood observations).
    Quantify(QuantifyError),
    /// A planner or guard configuration failed validation.
    InvalidConfig {
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for CalibrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrateError::Lppm(e) => write!(f, "mechanism error: {e}"),
            CalibrateError::Quantify(e) => write!(f, "quantification error: {e}"),
            CalibrateError::InvalidConfig { message } => {
                write!(f, "invalid calibration configuration: {message}")
            }
        }
    }
}

impl std::error::Error for CalibrateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CalibrateError::Lppm(e) => Some(e),
            CalibrateError::Quantify(e) => Some(e),
            CalibrateError::InvalidConfig { .. } => None,
        }
    }
}

impl From<LppmError> for CalibrateError {
    fn from(e: LppmError) -> Self {
        CalibrateError::Lppm(e)
    }
}

impl From<QuantifyError> for CalibrateError {
    fn from(e: QuantifyError) -> Self {
        CalibrateError::Quantify(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        for e in [
            CalibrateError::Lppm(LppmError::InvalidBudget { value: -1.0 }),
            CalibrateError::Quantify(QuantifyError::DegeneratePrior { prior: 0.0 }),
            CalibrateError::InvalidConfig {
                message: "x".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conversions_chain_sources() {
        let e: CalibrateError = LppmError::InvalidBudget { value: 0.0 }.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: CalibrateError = QuantifyError::ZeroLikelihood { t: 3 }.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
