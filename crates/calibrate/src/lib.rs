//! `priste-calibrate` — budget planning and mechanism conversion that
//! *guarantees* ε-spatiotemporal event privacy.
//!
//! The rest of the workspace quantifies event privacy (`priste_quantify`)
//! and checks a given release against Theorem IV.1 (`priste_qp`). This
//! crate closes the loop back to mechanism design — the PriSTE framework's
//! headline contribution: **converting** an existing location-privacy
//! mechanism into one that satisfies a target ε-spatiotemporal event
//! privacy level by calibrating per-timestamp location budgets.
//!
//! * [`plan`] — offline: [`plan_greedy`] searches per-timestep budgets
//!   ε_t against the all-columns, all-priors Theorem IV.1 oracle
//!   (ε-capacity bisection via
//!   [`min_certifiable_epsilon`](priste_quantify::sweep::min_certifiable_epsilon)),
//!   with [`plan_uniform_split`] as the sequential-composition baseline
//!   and [`plan_knapsack`] as the utility-aware allocator (a
//!   piecewise-linear knapsack over `priste-qp`'s budgeted LP, objective
//!   pluggable via [`UtilityModel`]).
//! * [`guard`] — online: [`CalibratedMechanism`] wraps any
//!   [`Lppm`](priste_lppm::Lppm), peeks every candidate release through
//!   per-event incremental quantifiers, and shrinks the location budget
//!   (geometric backoff to a floor) until the release certifies —
//!   suppressing it (configurable [`OnExhaustion`]) when nothing feasible
//!   remains. `priste-online` builds its *enforcing mode* on the same
//!   [`run_guard`] loop.
//!
//! ```
//! use priste_calibrate::{CalibratedMechanism, GuardConfig};
//! use priste_event::{Presence, StEvent};
//! use priste_geo::{CellId, GridMap, Region};
//! use priste_linalg::Vector;
//! use priste_lppm::{Lppm, PlanarLaplace};
//! use priste_markov::{gaussian_kernel_chain, Homogeneous};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let grid = GridMap::new(3, 3, 1.0)?;
//! let m = grid.num_cells();
//! let chain = Homogeneous::new(gaussian_kernel_chain(&grid, 1.0)?);
//! let event: StEvent = Presence::new(Region::from_one_based_range(m, 1, 3)?, 2, 4)?.into();
//! let plm: Box<dyn Lppm> = Box::new(PlanarLaplace::new(grid, 2.0)?);
//!
//! let mut mech = CalibratedMechanism::new(
//!     plm,
//!     std::slice::from_ref(&event),
//!     chain,
//!     Vector::uniform(m),
//!     GuardConfig { target_epsilon: 0.8, ..GuardConfig::default() },
//! )?;
//! let mut rng = StdRng::seed_from_u64(7);
//! let release = mech.release(CellId(4), &mut rng)?;
//! assert!(release.loss <= 0.8, "committed prefixes always certify");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
pub mod guard;
pub mod plan;
pub mod utility;

pub use error::CalibrateError;
pub use guard::{
    peek_worst_loss, run_guard, run_guard_prewarmed, validate_mechanism, Attempt,
    CalibratedMechanism, CalibratedRelease, Decision, GuardConfig, GuardInstruments, GuardOutcome,
    MechanismCache, OnExhaustion,
};
pub use plan::{
    plan_greedy, plan_knapsack, plan_knapsack_with_probes, plan_uniform_split, BudgetPlan,
    PlannedStep, PlannerConfig,
};
pub use utility::{MeanEpsilon, PlanarLaplaceError, PlmQualityLoss, UtilityModel};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CalibrateError>;
