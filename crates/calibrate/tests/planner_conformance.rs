//! Cross-planner conformance: the soundness contract every budget planner
//! must share, pinned once so future planner work (multi-event joint
//! calibration, horizon-sound prefixes) can build on all three without
//! re-deriving their guarantees.
//!
//! For random worlds, chains and events, every plan emitted by
//! [`plan_uniform_split`], [`plan_greedy`] and [`plan_knapsack`] must:
//!
//! 1. **Re-certify offline** — replaying the plan through a fresh
//!    [`TheoremBuilder`] along the same canonical worst-column history
//!    reproduces each step's verdict exactly: a `certified` step means
//!    *every* emission column of the planned mechanism satisfies Theorem
//!    IV.1 at ε* for every adversarial prior.
//! 2. **Respect the budget bounds** — every planned ε_t lies in the
//!    mechanism's `[floor, base]` range, and the recorded slack is
//!    consistent with the recorded capacity.
//! 3. **Order on utility, each under the planner's own model** — the
//!    knapsack plan beats (or ties) greedy *and* uniform under its own
//!    concave [`UtilityModel`] outright, by construction (certified plans
//!    only; an uncertified plan achieves −∞). Greedy's own objective is
//!    the legacy mean-ε proxy ([`MeanEpsilon`]): it beats uniform there,
//!    up to one geometric ladder rung (greedy only lands on
//!    `base·backoff^k` rungs, so when ε*/T falls between two rungs greedy
//!    may sit one rung below it — the comparison discounts the uniform
//!    plan by one backoff step). Greedy is deliberately *not* required to
//!    beat uniform under a concave model: its lexicographic grab can
//!    starve later steps, which is precisely the gap `plan_knapsack`
//!    closes.

use priste_calibrate::{
    plan_greedy, plan_knapsack, plan_uniform_split, BudgetPlan, MeanEpsilon, PlanarLaplaceError,
    PlannerConfig, UtilityModel,
};
use priste_core::test_support::{gaussian_world, plm, presence};
use priste_event::StEvent;
use priste_geo::{CellId, GridMap};
use priste_linalg::Vector;
use priste_markov::{Homogeneous, MarkovModel};
use priste_qp::TheoremChecker;
use priste_quantify::TheoremBuilder;
use proptest::prelude::*;

/// One random planning scenario.
#[derive(Debug, Clone)]
struct Scenario {
    side: usize,
    sigma: f64,
    alpha: f64,
    target: f64,
    horizon: usize,
    event: StEvent,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (2usize..=3, 6u8..=14, 10u8..=25, 4u8..=12, 2usize..=3).prop_flat_map(
        |(side, sigma10, alpha10, target10, horizon)| {
            let m = side * side;
            (1usize..=m.saturating_sub(1).max(1), 1usize..=2, 1usize..=2).prop_map(
                move |(hi, start, len)| Scenario {
                    side,
                    sigma: sigma10 as f64 / 10.0,
                    alpha: alpha10 as f64 / 10.0,
                    target: target10 as f64 / 10.0,
                    horizon,
                    event: presence(m, hi, start, start + len - 1),
                },
            )
        },
    )
}

fn world_of(s: &Scenario) -> (GridMap, Homogeneous) {
    let (grid, chain) = gaussian_world(s.side, s.sigma);
    (grid, Homogeneous::new(chain))
}

/// Offline replay of a plan along the canonical worst-column history:
/// rebuilds the mechanism at each planned budget, checks all `m` emission
/// columns at ε* and commits the most-revealing column — exactly the
/// planner's own evaluation, reproduced from scratch through the public
/// offline APIs.
fn replay(plan: &BudgetPlan, s: &Scenario, chain: MarkovModel, cfg: &PlannerConfig) {
    let grid = GridMap::new(s.side, s.side, 1.0).unwrap();
    let reference = plm(&grid, s.alpha);
    let m = grid.num_cells();
    let mut builder = TheoremBuilder::new(&s.event, Homogeneous::new(chain)).unwrap();
    let checker = TheoremChecker::new(s.target, cfg.solver.clone());
    let uniform_pi = Vector::uniform(m);
    for step in &plan.steps {
        let mech = reference.with_budget(step.budget).unwrap();
        let mut all_satisfied = true;
        let mut worst = (0usize, f64::NEG_INFINITY);
        let mut worst_column = None;
        for o in 0..m {
            let column = mech.emission_column(CellId(o));
            let inputs = builder.candidate(&column).unwrap();
            if !checker.check(&inputs.a, &inputs.b, &inputs.c).satisfied() {
                all_satisfied = false;
            }
            let loss = inputs.privacy_loss(&uniform_pi).unwrap_or(f64::INFINITY);
            if loss > worst.1 {
                worst = (o, loss);
                worst_column = Some(column);
            }
        }
        assert_eq!(
            step.certified, all_satisfied,
            "t={}: plan verdict {} but offline replay says {} (budget {})",
            step.t, step.certified, all_satisfied, step.budget
        );
        builder.commit(worst_column.expect("m >= 1")).unwrap();
    }
}

/// Certified total utility: an uncertified plan achieves nothing at ε*.
fn certified_utility(plan: &BudgetPlan, model: &dyn UtilityModel) -> f64 {
    if plan.all_certified() {
        plan.total_utility(model)
    } else {
        f64::NEG_INFINITY
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The shared contract, asserted for all three planners on one random
    /// scenario per case.
    #[test]
    fn planners_share_the_soundness_contract(s in scenario()) {
        let cfg = PlannerConfig::default();
        let model = PlanarLaplaceError;
        let (grid, provider) = world_of(&s);
        let chain = provider.model().clone();
        let base = s.alpha;

        let uniform = plan_uniform_split(
            plm(&grid, s.alpha), &s.event, provider.clone(), s.horizon, s.target, &cfg,
        ).unwrap();
        let greedy = plan_greedy(
            plm(&grid, s.alpha), &s.event, provider.clone(), s.horizon, s.target, &cfg,
        ).unwrap();
        let knapsack = plan_knapsack(
            plm(&grid, s.alpha), &s.event, provider, s.horizon, s.target, &cfg, &model,
        ).unwrap();

        for (name, plan) in [("uniform", &uniform), ("greedy", &greedy), ("knapsack", &knapsack)] {
            // (b) Structural bounds: horizon length, 1-based timesteps,
            // budgets inside [floor, base], slack consistent with capacity.
            prop_assert_eq!(plan.steps.len(), s.horizon, "{} plan length", name);
            for (i, step) in plan.steps.iter().enumerate() {
                prop_assert_eq!(step.t, i + 1, "{} timestep index", name);
                prop_assert!(
                    step.budget >= cfg.floor - 1e-12 && step.budget <= base + 1e-12,
                    "{name} t={} budget {} outside [{}, {base}]",
                    step.t, step.budget, cfg.floor
                );
                prop_assert!(step.rungs >= 1);
                if let Some(c) = step.capacity {
                    prop_assert!(
                        (step.slack - (s.target - c)).abs() < 1e-9,
                        "{name} t={} slack {} inconsistent with capacity {c}",
                        step.t, step.slack
                    );
                } else {
                    prop_assert!(step.slack == f64::NEG_INFINITY);
                }
            }

            // (a) Offline re-certification along the canonical history.
            replay(plan, &s, chain.clone(), &cfg);
        }

        // (c) Utility ordering under the knapsack's own model.
        let ku = certified_utility(&knapsack, &model);
        let gu = certified_utility(&greedy, &model);
        let uu = certified_utility(&uniform, &model);
        prop_assert!(
            ku >= gu - 1e-9,
            "knapsack {ku} below greedy {gu}\nknapsack {knapsack:?}\ngreedy {greedy:?}"
        );
        prop_assert!(
            ku >= uu - 1e-9,
            "knapsack {ku} below uniform {uu}\nknapsack {knapsack:?}\nuniform {uniform:?}"
        );
        if greedy.all_certified() && uniform.all_certified() {
            // Greedy's own objective is mean ε; one-rung discount because
            // greedy can only land on ladder rungs.
            let mean = MeanEpsilon;
            let discounted: f64 = uniform
                .steps
                .iter()
                .map(|st| mean.utility((st.budget * cfg.backoff).max(cfg.floor)))
                .sum();
            prop_assert!(
                greedy.total_utility(&mean) >= discounted - 1e-9,
                "greedy mean-ε {} below one-rung-discounted uniform {discounted}\n\
                 greedy {greedy:?}\nuniform {uniform:?}",
                greedy.total_utility(&mean)
            );
        }
    }
}

/// The degenerate-curve contract, outside proptest so it always runs on
/// the same scenario: a utility model with all-zero slopes must yield the
/// greedy-feasible plan — not an error, not a floor-only plan.
#[test]
fn zero_slope_utility_falls_back_to_the_greedy_plan() {
    struct Flat;
    impl UtilityModel for Flat {
        fn utility(&self, _epsilon: f64) -> f64 {
            1.0 // constant: every segment gain is exactly zero
        }
        fn name(&self) -> &str {
            "flat"
        }
    }
    let (grid, chain) = gaussian_world(3, 1.0);
    let event = presence(9, 3, 2, 3);
    let cfg = PlannerConfig::default();
    let greedy = plan_greedy(
        plm(&grid, 1.8),
        &event,
        Homogeneous::new(chain.clone()),
        3,
        0.9,
        &cfg,
    )
    .unwrap();
    let knapsack = plan_knapsack(
        plm(&grid, 1.8),
        &event,
        Homogeneous::new(chain),
        3,
        0.9,
        &cfg,
        &Flat,
    )
    .unwrap();
    assert_eq!(knapsack, greedy);
}
