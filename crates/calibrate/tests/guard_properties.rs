//! Property suite for the calibration guard, pinning the crate's two core
//! guarantees against the *offline* machinery:
//!
//! 1. **Re-certification** — every prefix a [`CalibratedMechanism`] commits
//!    (under the default `Suppress` policy) must re-certify at the target
//!    ε* when replayed through the offline [`TheoremBuilder`] — the
//!    any-horizon ground truth the incremental peeks are supposed to
//!    shortcut.
//! 2. **No spurious suppression** — a release is only ever suppressed when
//!    the *uncalibrated* (base-budget) candidate genuinely violates the
//!    target under the same offline replay.

use priste_calibrate::{CalibratedMechanism, Decision, GuardConfig, OnExhaustion};
use priste_core::test_support::homogeneous_world;
use priste_event::{Presence, StEvent};
use priste_geo::{CellId, GridMap, Region};
use priste_linalg::Vector;
use priste_lppm::{Lppm, PlanarLaplace};
use priste_markov::Homogeneous;
use priste_quantify::TheoremBuilder;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIDE: usize = 3;
const M: usize = SIDE * SIDE;

fn world() -> (GridMap, Homogeneous) {
    homogeneous_world(SIDE, 1.0)
}

/// Strategy: a presence event whose window sits inside a short horizon.
fn event() -> impl Strategy<Value = StEvent> {
    (1usize..=3, 1usize..=2, 1usize..M).prop_map(|(start, len, hi)| {
        Presence::new(
            Region::from_one_based_range(M, 1, hi.max(1)).unwrap(),
            start,
            start + len - 1,
        )
        .unwrap()
        .into()
    })
}

/// The scenario: mechanism sharpness, privacy target, trajectory, seed.
#[derive(Debug, Clone)]
struct Scenario {
    alpha: f64,
    target: f64,
    floor: f64,
    event: StEvent,
    trajectory: Vec<usize>,
    seed: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        0.5f64..4.0,
        0.1f64..1.5,
        // Floors up to 1.0 make suppression reachable for tight targets.
        0usize..3,
        event(),
        proptest::collection::vec(0usize..M, 3..7),
        0u64..u64::MAX,
    )
        .prop_map(|(alpha, target, floor, event, trajectory, seed)| Scenario {
            alpha,
            target,
            // Floors above the base budget are rejected at construction.
            floor: [1e-3f64, 0.25, 1.0][floor].min(alpha),
            event,
            trajectory,
            seed,
        })
}

/// Reconstructs the emission column the guard committed: budget +
/// observation fully determine it ([`Lppm::with_budget`] is deterministic).
fn col_at(reference: &PlanarLaplace, base: f64, budget: f64, observed: CellId) -> Vector {
    if budget == base {
        reference.emission_column(observed)
    } else {
        reference
            .with_budget(budget)
            .unwrap()
            .emission_column(observed)
    }
}

proptest! {
    /// Guarantee 1: the committed release stream always re-certifies at ε*
    /// under the offline builder, step by step — including suppressed
    /// timestamps (their flat column adds no evidence).
    #[test]
    fn committed_stream_recertifies_offline_at_the_target(s in scenario()) {
        let (grid, provider) = world();
        let pi = Vector::uniform(M);
        let base: Box<dyn Lppm> = Box::new(PlanarLaplace::new(grid.clone(), s.alpha).unwrap());
        let mut guard = CalibratedMechanism::new(
            base,
            std::slice::from_ref(&s.event),
            provider.clone(),
            pi.clone(),
            GuardConfig {
                target_epsilon: s.target,
                floor: s.floor,
                on_exhaustion: OnExhaustion::Suppress,
                ..GuardConfig::default()
            },
        )
        .unwrap();

        // Drive the guard, reconstructing each committed emission column
        // from the release record (budget + observation fully determine it).
        let reference = PlanarLaplace::new(grid, s.alpha).unwrap();
        let mut rng = StdRng::seed_from_u64(s.seed);
        let mut committed = Vec::new();
        for &loc in &s.trajectory {
            let release = guard.release(CellId(loc), &mut rng).unwrap();
            prop_assert!(release.decision.certified(), "Suppress policy never ships uncertified");
            let column = match &release.decision {
                Decision::Released { observed, budget, .. } => {
                    col_at(&reference, s.alpha, *budget, *observed)
                }
                Decision::Suppressed => Vector::filled(M, 1.0 / M as f64),
            };
            committed.push(column);
        }

        // Offline replay: the fixed-π realized loss of every committed
        // prefix stays within ε*.
        let mut builder = TheoremBuilder::new(&s.event, provider).unwrap();
        for (i, column) in committed.iter().enumerate() {
            let inputs = builder.candidate(column).unwrap();
            let loss = inputs
                .privacy_loss(&pi)
                .expect("guarded streams never reach degenerate evidence");
            prop_assert!(
                loss <= s.target + 1e-6,
                "t={}: offline replay loss {} exceeds target {}",
                i + 1,
                loss,
                s.target
            );
            builder.commit(column.clone()).unwrap();
        }
    }

    /// Guarantee 2: suppression only fires when the uncalibrated candidate
    /// (the first attempt, drawn at the base budget) genuinely violates ε*
    /// under the offline replay of the previously committed history.
    #[test]
    fn suppression_only_on_genuine_uncalibrated_violation(s in scenario()) {
        let (grid, provider) = world();
        let pi = Vector::uniform(M);
        let base: Box<dyn Lppm> = Box::new(PlanarLaplace::new(grid.clone(), s.alpha).unwrap());
        let mut guard = CalibratedMechanism::new(
            base,
            std::slice::from_ref(&s.event),
            provider.clone(),
            pi.clone(),
            GuardConfig {
                target_epsilon: s.target,
                floor: s.floor,
                on_exhaustion: OnExhaustion::Suppress,
                ..GuardConfig::default()
            },
        )
        .unwrap();

        let reference = PlanarLaplace::new(grid, s.alpha).unwrap();
        let mut rng = StdRng::seed_from_u64(s.seed);
        let mut builder = TheoremBuilder::new(&s.event, provider).unwrap();
        for &loc in &s.trajectory {
            let release = guard.release(CellId(loc), &mut rng).unwrap();
            let first = &release.attempts[0];
            prop_assert!(
                (first.budget - s.alpha.max(guard.config().floor)).abs() < 1e-12,
                "first rung must be the base budget"
            );
            if release.decision == Decision::Suppressed {
                // Replaying the first (base-budget) candidate through the
                // offline builder must show a real violation.
                let candidate = col_at(&reference, s.alpha, first.budget, first.observed);
                let inputs = builder.candidate(&candidate).unwrap();
                let loss = inputs
                    .privacy_loss(&pi)
                    .map_or(f64::INFINITY, |l| l);
                prop_assert!(
                    loss > s.target - 1e-6,
                    "suppressed although the uncalibrated candidate only lost {} < target {}",
                    loss,
                    s.target
                );
            }
            // Advance the offline mirror with what was actually committed.
            let column = match &release.decision {
                Decision::Released { observed, budget, .. } => {
                    col_at(&reference, s.alpha, *budget, *observed)
                }
                Decision::Suppressed => Vector::filled(M, 1.0 / M as f64),
            };
            builder.commit(column).unwrap();
        }
    }
}
