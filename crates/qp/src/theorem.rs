//! The Theorem IV.1 constraint checker: builds Eqs. (15)/(16) as
//! [`BilinearProgram`]s from the reduced `a`/`b`/`c` vectors and runs the
//! budgeted non-positivity check on both.
//!
//! Normalization note: the two inequalities are jointly homogeneous of
//! degree 1 in `(b, c)`, so the checker rescales the pair by `1/max(c)`
//! before solving — keeping slice LPs in a friendly floating-point range
//! without changing any verdict. `a` is *not* rescaled (the inequalities
//! are not homogeneous in `a`; its entries are genuine probabilities).

use crate::bilinear::{check_nonpositive, BilinearProgram};
use crate::{SolverConfig, Verdict};
use priste_linalg::Vector;

/// Which Theorem IV.1 inequality a verdict refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Constraint {
    /// Eq. (15): bounds `Pr(o|EVENT) ≤ e^ε·Pr(o|¬EVENT)`.
    Eq15,
    /// Eq. (16): bounds `Pr(o|¬EVENT) ≤ e^ε·Pr(o|EVENT)`.
    Eq16,
}

/// Joint verdict over both inequalities.
#[derive(Debug, Clone, PartialEq)]
pub enum TheoremVerdict {
    /// Both inequalities certified: the release satisfies
    /// ε-spatiotemporal event privacy for **every** initial probability in
    /// the feasible set.
    Satisfied,
    /// At least one inequality refuted, with the worst witness.
    Violated {
        /// The refuted inequality.
        constraint: Constraint,
        /// Witness initial distribution (box point).
        witness: Vector,
        /// Positive objective value at the witness.
        value: f64,
    },
    /// Budget exhausted before certifying; under conservative release this
    /// is treated exactly like a violation (§IV.C).
    Unknown {
        /// The inequality that could not be certified.
        constraint: Constraint,
    },
}

impl TheoremVerdict {
    /// Whether the release may proceed (both constraints certified).
    pub fn satisfied(&self) -> bool {
        matches!(self, TheoremVerdict::Satisfied)
    }
}

/// Checker configured with a privacy level ε and a solver budget.
#[derive(Debug, Clone)]
pub struct TheoremChecker {
    epsilon: f64,
    config: SolverConfig,
}

impl TheoremChecker {
    /// Creates a checker for ε-spatiotemporal event privacy.
    ///
    /// # Panics
    /// Panics for a non-positive or non-finite ε (configuration bug).
    pub fn new(epsilon: f64, config: SolverConfig) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive and finite, got {epsilon}"
        );
        TheoremChecker { epsilon, config }
    }

    /// The privacy level ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The solver configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Builds the two constraint programs from reduced Theorem IV.1 vectors
    /// (`π·a = Pr(EVENT)`, `π·b ∝ Pr(EVENT, o)`, `π·c ∝ Pr(o)` with a shared
    /// positive scale on `b`/`c`).
    ///
    /// # Panics
    /// Panics on length mismatches (the vectors come from one builder).
    pub fn programs(
        &self,
        a: &Vector,
        b: &Vector,
        c: &Vector,
    ) -> [(Constraint, BilinearProgram); 2] {
        assert_eq!(a.len(), b.len(), "a/b length mismatch");
        assert_eq!(a.len(), c.len(), "a/c length mismatch");
        // Joint rescale of (b, c): homogeneous, so verdicts are unchanged.
        let scale = c.max().filter(|&m| m > 0.0).map(|m| 1.0 / m).unwrap_or(1.0);
        let bs = b.scale(scale);
        let cs = c.scale(scale);
        let e_eps = self.epsilon.exp();

        // Eq. (15): (π·a)·(π·[(e^ε−1)b − e^ε c]) + π·b ≤ 0.
        let g1: Vector = bs
            .as_slice()
            .iter()
            .zip(cs.as_slice())
            .map(|(&bi, &ci)| (e_eps - 1.0) * bi - e_eps * ci)
            .collect();
        let p1 = BilinearProgram::new(a.clone(), g1, bs.clone());

        // Eq. (16): (π·a)·(π·[(e^ε−1)b + c]) − e^ε·π·b ≤ 0.
        let g2: Vector = bs
            .as_slice()
            .iter()
            .zip(cs.as_slice())
            .map(|(&bi, &ci)| (e_eps - 1.0) * bi + ci)
            .collect();
        let h2 = bs.scale(-e_eps);
        let p2 = BilinearProgram::new(a.clone(), g2, h2);

        [(Constraint::Eq15, p1), (Constraint::Eq16, p2)]
    }

    /// Checks both inequalities; the budget is split across them.
    pub fn check(&self, a: &Vector, b: &Vector, c: &Vector) -> TheoremVerdict {
        let mut cfg = self.config.clone();
        cfg.work_budget = self.config.work_budget / 2;
        for (constraint, program) in self.programs(a, b, c) {
            match check_nonpositive(&program, &cfg) {
                Verdict::Holds { .. } => {}
                Verdict::Violated { witness, value } => {
                    return TheoremVerdict::Violated {
                        constraint,
                        witness,
                        value,
                    };
                }
                Verdict::Unknown { .. } => return TheoremVerdict::Unknown { constraint },
            }
        }
        TheoremVerdict::Satisfied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Inputs mimicking an *uninformative* release: b = prior-weighted c.
    /// Then Pr(o|E) = Pr(o|¬E) and any ε > 0 must be satisfied.
    fn uninformative() -> (Vector, Vector, Vector) {
        let a = Vector::from(vec![0.3, 0.5, 0.2]);
        let c = Vector::from(vec![0.4, 0.4, 0.4]);
        // b_i = a_i · c_i ⇒ π·b relates to π·a · scale only at point masses;
        // the exact independence structure: b = c ∘ a.
        let b = Vector::from(vec![0.3 * 0.4, 0.5 * 0.4, 0.2 * 0.4]);
        (a, b, c)
    }

    #[test]
    fn uninformative_release_satisfies_any_epsilon() {
        let (a, b, c) = uninformative();
        for eps in [0.05, 0.5, 2.0] {
            let checker = TheoremChecker::new(eps, SolverConfig::default());
            let v = checker.check(&a, &b, &c);
            assert!(v.satisfied(), "ε={eps}: {v:?}");
        }
    }

    #[test]
    fn leaky_release_fails_small_epsilon_but_passes_large() {
        // Observation strongly correlated with the event: likelihood ratio
        // far from 1 for point-mass priors.
        let a = Vector::from(vec![0.6, 0.2]);
        let b = Vector::from(vec![0.55, 0.02]);
        let c = Vector::from(vec![0.6, 0.5]);
        let tight = TheoremChecker::new(0.05, SolverConfig::default());
        assert!(
            !tight.check(&a, &b, &c).satisfied(),
            "ε = 0.05 should be violated"
        );
        let loose = TheoremChecker::new(5.0, SolverConfig::default());
        assert!(loose.check(&a, &b, &c).satisfied(), "ε = 5 should hold");
    }

    #[test]
    fn violation_witness_certifies_itself() {
        let a = Vector::from(vec![0.6, 0.2]);
        let b = Vector::from(vec![0.55, 0.02]);
        let c = Vector::from(vec![0.6, 0.5]);
        let checker = TheoremChecker::new(0.05, SolverConfig::default());
        match checker.check(&a, &b, &c) {
            TheoremVerdict::Violated {
                constraint,
                witness,
                value,
            } => {
                // Re-evaluate the violated program at the witness.
                let programs = checker.programs(&a, &b, &c);
                let p = programs
                    .iter()
                    .find(|(c2, _)| *c2 == constraint)
                    .map(|(_, p)| p)
                    .unwrap();
                assert!((p.eval(&witness) - value).abs() < 1e-9);
                assert!(value > 0.0);
            }
            v => panic!("expected violation, got {v:?}"),
        }
    }

    #[test]
    fn scaling_b_and_c_jointly_preserves_verdicts() {
        let a = Vector::from(vec![0.5, 0.3, 0.1]);
        let b = Vector::from(vec![0.2, 0.05, 0.01]);
        let c = Vector::from(vec![0.3, 0.3, 0.25]);
        let checker = TheoremChecker::new(0.4, SolverConfig::default());
        let v1 = checker.check(&a, &b, &c);
        for gamma in [1e-30, 1e-10, 1e10] {
            let v2 = checker.check(&a, &b.scale(gamma), &c.scale(gamma));
            assert_eq!(
                v1.satisfied(),
                v2.satisfied(),
                "verdict changed under joint rescale by {gamma}"
            );
        }
    }

    #[test]
    fn larger_epsilon_never_harder() {
        // Monotonicity: if ε₁ ≤ ε₂ and ε₁ is satisfied, ε₂ must be.
        let a = Vector::from(vec![0.4, 0.35, 0.15]);
        let b = Vector::from(vec![0.12, 0.18, 0.02]);
        let c = Vector::from(vec![0.35, 0.4, 0.3]);
        let mut prev_satisfied = false;
        for eps in [0.01, 0.1, 0.5, 1.0, 3.0, 8.0] {
            let v = TheoremChecker::new(eps, SolverConfig::default()).check(&a, &b, &c);
            if prev_satisfied {
                assert!(v.satisfied(), "satisfied at smaller ε but not at {eps}");
            }
            prev_satisfied = v.satisfied();
        }
        assert!(prev_satisfied, "even ε = 8 failed — inputs degenerate?");
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn rejects_bad_epsilon() {
        let _ = TheoremChecker::new(0.0, SolverConfig::default());
    }

    #[test]
    fn zero_c_is_handled() {
        // Degenerate all-zero joint (impossible observations): programs are
        // f₁ = πb = 0 and f₂ = −e^ε πb = 0 ⇒ satisfied at tolerance.
        let a = Vector::from(vec![0.5, 0.5]);
        let z = Vector::zeros(2);
        let checker = TheoremChecker::new(1.0, SolverConfig::default());
        assert!(checker.check(&a, &z, &z).satisfied());
    }
}
