//! Exact global maximization of `f(π) = (π·a)(π·g) + π·h` over the
//! probability simplex `{π ≥ 0, Σπ = 1}` — the feasible set Theorem IV.1
//! actually requires (see DESIGN.md: the literal box `0 ≤ π ≤ 1` *without*
//! the sum constraint makes Eq. (15) unsatisfiable for any mechanism,
//! contradicting the paper's own α→0 termination argument, so the simplex
//! constraint is implicit in the paper).
//!
//! **Why this is exact and fast.** Fix `u = π·a`. On the slice
//! `{π ∈ simplex, π·a = u}` the objective is linear, so its maximum sits at
//! a vertex; the slice polytope has two equality constraints, hence every
//! vertex has **at most two** nonzero coordinates. The global maximum is
//! the max over slices, so it is attained at some
//! `π = λ·e_i + (1−λ)·e_j` — and along that segment `f` is a univariate
//! *quadratic* in `λ` with a closed-form maximum. Scanning all `m(m+1)/2`
//! pairs is therefore an exact global algorithm, `O(m²)` versus CPLEX's
//! NP-hard general-case behaviour on the box form.
//!
//! The work budget caps the number of pairs examined; an exhausted budget
//! yields `Unknown` (conservative release), an early positive pair yields
//! `Violated` immediately.

use crate::bilinear::BilinearProgram;
use crate::{SolverConfig, Verdict};
use priste_linalg::Vector;

/// Exact maximum of `f` restricted to the segment
/// `π(λ) = λ·e_i + (1−λ)·e_j`, `λ ∈ [0, 1]`.
///
/// `f(λ) = (λ·a_i + (1−λ)·a_j)(λ·g_i + (1−λ)·g_j) + λ·h_i + (1−λ)·h_j`
/// is quadratic in λ; the maximum is at an endpoint or the interior
/// stationary point. Returns `(λ*, f(λ*))`.
fn pair_max(p: &BilinearProgram, i: usize, j: usize) -> (f64, f64) {
    let (ai, aj) = (p.a[i], p.a[j]);
    let (gi, gj) = (p.g[i], p.g[j]);
    let (hi, hj) = (p.h[i], p.h[j]);
    // f(λ) = (aj + λΔa)(gj + λΔg) + hj + λΔh
    //      = ΔaΔg·λ² + (ajΔg + gjΔa + Δh)·λ + (aj·gj + hj)
    let da = ai - aj;
    let dg = gi - gj;
    let dh = hi - hj;
    let quad = da * dg;
    let lin = aj * dg + gj * da + dh;
    let cst = aj * gj + hj;
    let eval = |l: f64| quad * l * l + lin * l + cst;
    let mut best_l = 0.0;
    let mut best_v = eval(0.0);
    let v1 = eval(1.0);
    if v1 > best_v {
        best_v = v1;
        best_l = 1.0;
    }
    if quad < 0.0 {
        // Concave: interior stationary point may win.
        let l_star = -lin / (2.0 * quad);
        if (0.0..=1.0).contains(&l_star) {
            let v = eval(l_star);
            if v > best_v {
                best_v = v;
                best_l = l_star;
            }
        }
    }
    (best_l, best_v)
}

/// Outcome of the exact simplex scan.
#[derive(Debug, Clone)]
pub struct SimplexOutcome {
    /// Best point found (2-sparse).
    pub best_point: Vector,
    /// Its value — the exact global maximum when `complete` is true.
    pub best_value: f64,
    /// Whether every pair was examined within the budget.
    pub complete: bool,
    /// Pairs examined.
    pub work_used: u64,
}

/// Scans all coordinate pairs (each one work unit). Stops early when the
/// budget or wall-clock deadline runs out; `early_exit_above` (if finite)
/// stops as soon as any pair exceeds it — the violation fast-path.
pub fn maximize_simplex(p: &BilinearProgram, budget: u64, early_exit_above: f64) -> SimplexOutcome {
    maximize_simplex_deadline(p, budget, early_exit_above, None)
}

/// [`maximize_simplex`] with an optional wall-clock deadline (elapsed time
/// is polled every 1024 pairs to keep the hot loop branch-cheap).
pub fn maximize_simplex_deadline(
    p: &BilinearProgram,
    budget: u64,
    early_exit_above: f64,
    deadline: Option<std::time::Duration>,
) -> SimplexOutcome {
    let n = p.dim();
    let started = std::time::Instant::now();
    let mut best_v = f64::NEG_INFINITY;
    let mut best = (0usize, 0usize, 1.0f64);
    let mut work = 0u64;
    let mut complete = true;
    'outer: for i in 0..n {
        for j in i..n {
            if work >= budget {
                complete = false;
                break 'outer;
            }
            if let Some(d) = deadline {
                if work.is_multiple_of(1024) && started.elapsed() > d {
                    complete = false;
                    break 'outer;
                }
            }
            work += 1;
            let (l, v) = pair_max(p, i, j);
            if v > best_v {
                best_v = v;
                best = (i, j, l);
                if v > early_exit_above {
                    complete = false;
                    break 'outer;
                }
            }
        }
    }
    let mut point = Vector::zeros(n);
    let (i, j, l) = best;
    if n > 0 {
        point[i] += l;
        point[j] += 1.0 - l;
    }
    SimplexOutcome {
        best_point: point,
        best_value: best_v,
        complete,
        work_used: work,
    }
}

/// Budgeted non-positivity check over the simplex.
///
/// * Every examined pair with value > tolerance ⇒ `Violated` (sound).
/// * All pairs examined and none positive ⇒ `Holds` (exact certificate).
/// * Budget exhausted first ⇒ `Unknown`.
pub fn check_nonpositive_simplex(p: &BilinearProgram, cfg: &SolverConfig) -> Verdict {
    let out = maximize_simplex_deadline(p, cfg.work_budget, cfg.tolerance, cfg.deadline);
    if out.best_value > cfg.tolerance {
        return Verdict::Violated {
            witness: out.best_point,
            value: out.best_value,
        };
    }
    if out.complete {
        return Verdict::Holds {
            upper_bound: out.best_value,
        };
    }
    Verdict::Unknown {
        lower_bound: out.best_value,
        upper_bound: f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_program(rng: &mut StdRng, n: usize) -> BilinearProgram {
        BilinearProgram::new(
            Vector::from((0..n).map(|_| rng.gen::<f64>()).collect::<Vec<_>>()),
            Vector::from((0..n).map(|_| rng.gen_range(-1.5..1.5)).collect::<Vec<_>>()),
            Vector::from((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect::<Vec<_>>()),
        )
    }

    /// Dense barycentric grid over the simplex (n ≤ 3).
    fn simplex_grid_max(p: &BilinearProgram, steps: usize) -> f64 {
        let n = p.dim();
        assert!(n <= 3);
        let mut best = f64::NEG_INFINITY;
        match n {
            1 => best = p.eval(&Vector::from(vec![1.0])),
            2 => {
                for k in 0..=steps {
                    let l = k as f64 / steps as f64;
                    best = best.max(p.eval(&Vector::from(vec![l, 1.0 - l])));
                }
            }
            3 => {
                for k1 in 0..=steps {
                    for k2 in 0..=steps - k1 {
                        let x = k1 as f64 / steps as f64;
                        let y = k2 as f64 / steps as f64;
                        best = best.max(p.eval(&Vector::from(vec![x, y, 1.0 - x - y])));
                    }
                }
            }
            _ => unreachable!(),
        }
        best
    }

    #[test]
    fn pair_scan_matches_dense_simplex_grid() {
        let mut rng = StdRng::seed_from_u64(2024);
        for case in 0..200 {
            let n = rng.gen_range(1..=3);
            let p = random_program(&mut rng, n);
            let exact = maximize_simplex(&p, u64::MAX, f64::INFINITY);
            assert!(exact.complete);
            let grid = simplex_grid_max(&p, 120);
            assert!(
                exact.best_value >= grid - 1e-6,
                "case {case}: pair-scan {} below grid {grid}",
                exact.best_value
            );
            // And the reported point actually achieves the value.
            assert!((p.eval(&exact.best_point) - exact.best_value).abs() < 1e-9);
            assert!((exact.best_point.sum() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn interior_stationary_points_are_found() {
        // a = (1, 0), g = (−1, 1), h = 0 on segment (λ, 1−λ):
        // f = λ(1−2λ), max at λ = 1/4 with value 1/8 — strictly interior.
        let p = BilinearProgram::new(
            Vector::from(vec![1.0, 0.0]),
            Vector::from(vec![-1.0, 1.0]),
            Vector::from(vec![0.0, 0.0]),
        );
        let out = maximize_simplex(&p, u64::MAX, f64::INFINITY);
        assert!((out.best_value - 0.125).abs() < 1e-12);
        assert!((out.best_point[0] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn budget_exhaustion_reports_incomplete() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = random_program(&mut rng, 20);
        let out = maximize_simplex(&p, 5, f64::NEG_INFINITY);
        // early_exit_above = −∞ forces an exit on the very first improving
        // pair, marking the scan incomplete.
        assert!(!out.complete);
        let v = check_nonpositive_simplex(&p, &SolverConfig::with_budget(3));
        // With 20 states and budget 3, either a genuine violation was found
        // among the first pairs or the verdict must be Unknown.
        match v {
            Verdict::Violated { value, .. } => assert!(value > 0.0),
            Verdict::Unknown { .. } => {}
            Verdict::Holds { .. } => panic!("cannot certify after 3 of 210 pairs"),
        }
    }

    #[test]
    fn certificate_requires_full_scan() {
        // All-negative objective: must certify with exactly m(m+1)/2 pairs.
        let n = 6;
        let p = BilinearProgram::new(
            Vector::from(vec![0.5; 6]),
            Vector::from(vec![-1.0; 6]),
            Vector::from(vec![-0.1; 6]),
        );
        let out = maximize_simplex(&p, u64::MAX, f64::INFINITY);
        assert!(out.complete);
        assert_eq!(out.work_used, (n * (n + 1) / 2) as u64);
        assert!(check_nonpositive_simplex(&p, &SolverConfig::default()).holds());
    }

    #[test]
    fn singleton_points_are_covered() {
        // Max at a vertex of the simplex (i == j pair).
        let p = BilinearProgram::new(
            Vector::from(vec![1.0, 0.2]),
            Vector::from(vec![2.0, 0.1]),
            Vector::from(vec![0.5, 0.0]),
        );
        let out = maximize_simplex(&p, u64::MAX, f64::INFINITY);
        // f(e_0) = 1·2 + 0.5 = 2.5.
        assert!((out.best_value - 2.5).abs() < 1e-12);
        assert_eq!(out.best_point.as_slice(), &[1.0, 0.0]);
    }
}
