//! Budgeted global maximization of `f(π) = (π·a)(π·g) + π·h` over the box
//! `0 ≤ π ≤ 1` (with `a ≥ 0`) — the exact shape of both Theorem IV.1
//! constraints.
//!
//! Strategy (all exact LP slices, no heuristics in the certificates):
//!
//! * **Lower bound / witness search** — parametric sweep over `u = π·a`:
//!   for fixed `u` the objective is the *linear* `π·(u·g + h)`, and the
//!   slice optimum is an exact knapsack LP. A grid over `u` plus golden-
//!   section refinement around the best slices finds the global maximum up
//!   to the slice resolution.
//! * **Upper bound / certificate** — interval decomposition: on a slice
//!   band `u ∈ [u₁, u₂]`, `(π·a)(π·g) ≤ max(u₁·(π·g), u₂·(π·g))` for every
//!   feasible `π` regardless of the sign of `π·g`, so
//!   `f ≤ max(max-LP(u₁·g + h), max-LP(u₂·g + h))` over the band — two
//!   exact band-knapsack LPs. The bound tightens as bands shrink; the
//!   solver refines geometrically until it certifies, refutes, or runs out
//!   of budget.

use crate::knapsack::{max_with_band, max_with_equality};
use crate::{ConstraintSet, SolverConfig, Verdict};
use priste_linalg::Vector;

/// The structured program `f(π) = (π·a)(π·g) + π·h`, `0 ≤ π ≤ 1`.
#[derive(Debug, Clone)]
pub struct BilinearProgram {
    /// Non-negative coefficient vector of the first bilinear factor.
    pub a: Vector,
    /// Coefficient vector of the second bilinear factor (any sign).
    pub g: Vector,
    /// Linear term (any sign).
    pub h: Vector,
}

impl BilinearProgram {
    /// Creates a program, validating shapes and the sign of `a`.
    ///
    /// # Panics
    /// Panics on length mismatch or a negative entry in `a` — both indicate
    /// construction bugs upstream (the `a` of Theorem IV.1 is a vector of
    /// probabilities).
    pub fn new(a: Vector, g: Vector, h: Vector) -> Self {
        assert_eq!(a.len(), g.len(), "a/g length mismatch");
        assert_eq!(a.len(), h.len(), "a/h length mismatch");
        assert!(
            a.as_slice().iter().all(|&x| x >= -1e-12),
            "bilinear factor a must be non-negative"
        );
        BilinearProgram { a, g, h }
    }

    /// Dimension `m`.
    pub fn dim(&self) -> usize {
        self.a.len()
    }

    /// Evaluates `f(π)`.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn eval(&self, pi: &Vector) -> f64 {
        let u = pi.dot(&self.a).expect("length");
        let v = pi.dot(&self.g).expect("length");
        let l = pi.dot(&self.h).expect("length");
        u * v + l
    }

    /// Exact optimum of the `u`-slice `max π·(u·g + h) s.t. π·a = u`.
    fn slice(&self, u: f64) -> Option<(f64, Vector)> {
        let w: Vector = self
            .g
            .as_slice()
            .iter()
            .zip(self.h.as_slice())
            .map(|(&gi, &hi)| u * gi + hi)
            .collect();
        max_with_equality(&w, &self.a, u).map(|s| (s.value, s.point))
    }

    /// Sound upper bound for `f` over the band `u ∈ [lo, hi]`.
    fn band_upper_bound(&self, lo: f64, hi: f64) -> f64 {
        let mut bound = f64::NEG_INFINITY;
        for u_ext in [lo, hi] {
            let w: Vector = self
                .g
                .as_slice()
                .iter()
                .zip(self.h.as_slice())
                .map(|(&gi, &hi_)| u_ext * gi + hi_)
                .collect();
            if let Some(s) = max_with_band(&w, &self.a, lo, hi) {
                bound = bound.max(s.value);
            }
        }
        bound
    }
}

/// Result of a budgeted maximization: the best point found and bound
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct MaximizeOutcome {
    /// Best feasible point found.
    pub best_point: Vector,
    /// Its objective value (a valid lower bound on the true maximum).
    pub lower_bound: f64,
    /// Proven upper bound on the true maximum (box mode only; `+∞` when the
    /// budget ran out before the first full decomposition pass).
    pub upper_bound: f64,
    /// Work units consumed.
    pub work_used: u64,
}

/// Number of `u`-slices in the initial lower-bound sweep.
const INITIAL_SLICES: usize = 48;
/// Golden-section refinement iterations per promising bracket.
const REFINE_ITERS: usize = 24;
/// Initial number of bands in the upper-bound decomposition.
const INITIAL_BANDS: usize = 16;
/// Geometric growth of the band count per refinement round.
const BAND_GROWTH: usize = 4;

/// Budgeted maximization of a [`BilinearProgram`].
///
/// In [`ConstraintSet::Simplex`] mode this delegates to the *exact* `O(m²)`
/// pair scan of [`crate::simplex`]; in [`ConstraintSet::Box`] mode it runs
/// the parametric sweep + interval-decomposition machinery below.
pub fn maximize(p: &BilinearProgram, cfg: &SolverConfig) -> MaximizeOutcome {
    maximize_inner(p, cfg, false)
}

/// `stop_when_positive` short-circuits as soon as any feasible point beats
/// the tolerance — the right policy when the caller only needs a
/// non-positivity verdict, wasteful when it wants tight bounds.
fn maximize_inner(
    p: &BilinearProgram,
    cfg: &SolverConfig,
    stop_when_positive: bool,
) -> MaximizeOutcome {
    if cfg.constraint == ConstraintSet::Simplex {
        let early = if stop_when_positive {
            cfg.tolerance
        } else {
            f64::INFINITY
        };
        let out =
            crate::simplex::maximize_simplex_deadline(p, cfg.work_budget, early, cfg.deadline);
        return MaximizeOutcome {
            best_point: out.best_point,
            lower_bound: out.best_value,
            upper_bound: if out.complete {
                out.best_value
            } else {
                f64::INFINITY
            },
            work_used: out.work_used,
        };
    }
    let mut work = 0u64;
    let total_a = p.a.sum();
    let mut best_val = f64::NEG_INFINITY;
    let mut best_point = Vector::zeros(p.dim());

    let consider = |val: f64, point: Vector, best_val: &mut f64, best_point: &mut Vector| {
        if val > *best_val {
            *best_val = val;
            *best_point = point;
        }
    };

    // --- Lower-bound sweep over u-slices (box mode). ---
    let slice_val = |u: f64, work: &mut u64| -> Option<(f64, Vector)> {
        *work += 1;
        p.slice(u)
    };

    let mut slice_best_u = 0.0;
    for k in 0..=INITIAL_SLICES {
        if work >= cfg.work_budget {
            break;
        }
        let u = total_a * k as f64 / INITIAL_SLICES as f64;
        if let Some((v, pt)) = slice_val(u, &mut work) {
            if v > best_val {
                slice_best_u = u;
            }
            consider(v, pt, &mut best_val, &mut best_point);
        }
    }
    // Golden-section refinement around the best slice.
    let gr = 0.5 * (5.0_f64.sqrt() - 1.0);
    let width = total_a / INITIAL_SLICES as f64;
    let (mut lo, mut hi) = (
        (slice_best_u - width).max(0.0),
        (slice_best_u + width).min(total_a),
    );
    for _ in 0..REFINE_ITERS {
        if work >= cfg.work_budget || hi - lo < 1e-12 * total_a.max(1.0) {
            break;
        }
        let u1 = hi - gr * (hi - lo);
        let u2 = lo + gr * (hi - lo);
        let v1 = slice_val(u1, &mut work).map(|(v, pt)| {
            consider(v, pt, &mut best_val, &mut best_point);
            v
        });
        let v2 = slice_val(u2, &mut work).map(|(v, pt)| {
            consider(v, pt, &mut best_val, &mut best_point);
            v
        });
        match (v1, v2) {
            (Some(a1), Some(a2)) if a1 < a2 => lo = u1,
            (Some(_), Some(_)) => hi = u2,
            _ => break,
        }
    }

    // --- Upper-bound decomposition (box). ---
    // Each round also *probes* the highest-bound bands with exact equality
    // slices, so the lower bound chases the upper bound: a narrow slice-LP
    // peak missed by the initial sweep is rediscovered through its band.
    let mut upper = f64::INFINITY;
    let mut bands = INITIAL_BANDS;
    loop {
        if work + 2 * bands as u64 > cfg.work_budget {
            break;
        }
        let mut ub = f64::NEG_INFINITY;
        let mut band_bounds: Vec<(f64, usize)> = Vec::with_capacity(bands);
        for k in 0..bands {
            let lo_u = total_a * k as f64 / bands as f64;
            let hi_u = total_a * (k + 1) as f64 / bands as f64;
            work += 2;
            let b = p.band_upper_bound(lo_u, hi_u);
            band_bounds.push((b, k));
            ub = ub.max(b);
        }
        upper = upper.min(ub);
        // Probe the most promising bands (by UB) with exact slices.
        band_bounds.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));
        for &(_, k) in band_bounds.iter().take(8) {
            if work >= cfg.work_budget {
                break;
            }
            let mid = total_a * (k as f64 + 0.5) / bands as f64;
            if let Some((v, pt)) = slice_val(mid, &mut work) {
                consider(v, pt, &mut best_val, &mut best_point);
            }
        }
        // Stop once the bound is conclusive or converged.
        let conclusive = upper <= cfg.tolerance || (stop_when_positive && best_val > cfg.tolerance);
        if conclusive || upper - best_val < cfg.tolerance * (1.0 + best_val.abs()) {
            break;
        }
        bands *= BAND_GROWTH;
    }

    MaximizeOutcome {
        best_point,
        lower_bound: best_val,
        upper_bound: upper,
        work_used: work,
    }
}

/// Budgeted non-positivity check: `max f ≤ 0`?
pub fn check_nonpositive(p: &BilinearProgram, cfg: &SolverConfig) -> Verdict {
    let outcome = maximize_inner(p, cfg, true);
    if outcome.lower_bound > cfg.tolerance {
        return Verdict::Violated {
            witness: outcome.best_point,
            value: outcome.lower_bound,
        };
    }
    if outcome.upper_bound <= cfg.tolerance {
        return Verdict::Holds {
            upper_bound: outcome.upper_bound,
        };
    }
    Verdict::Unknown {
        lower_bound: outcome.lower_bound,
        upper_bound: outcome.upper_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid_max(p: &BilinearProgram, steps: usize) -> f64 {
        // Dense grid over the box (n ≤ 3 only).
        let n = p.dim();
        assert!(n <= 3);
        let mut idx = vec![0usize; n];
        let mut best = f64::NEG_INFINITY;
        loop {
            let pi = Vector::from(
                idx.iter()
                    .map(|&k| k as f64 / steps as f64)
                    .collect::<Vec<_>>(),
            );
            best = best.max(p.eval(&pi));
            let mut k = n;
            loop {
                if k == 0 {
                    return best;
                }
                k -= 1;
                idx[k] += 1;
                if idx[k] <= steps {
                    break;
                }
                idx[k] = 0;
            }
        }
    }

    #[test]
    fn eval_matches_definition() {
        let p = BilinearProgram::new(
            Vector::from(vec![1.0, 0.5]),
            Vector::from(vec![-1.0, 2.0]),
            Vector::from(vec![0.1, 0.2]),
        );
        let pi = Vector::from(vec![1.0, 1.0]);
        // (1.5)(1.0) + 0.3 = 1.8
        assert!((p.eval(&pi) - 1.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_a_is_rejected() {
        let _ = BilinearProgram::new(
            Vector::from(vec![-0.5]),
            Vector::from(vec![1.0]),
            Vector::from(vec![0.0]),
        );
    }

    fn box_cfg(budget: u64) -> SolverConfig {
        SolverConfig {
            constraint: crate::ConstraintSet::Box,
            ..SolverConfig::with_budget(budget)
        }
    }

    #[test]
    fn certifies_obviously_nonpositive_programs_in_both_modes() {
        // g ≤ 0, h ≤ 0 ⇒ f ≤ 0 everywhere.
        let p = BilinearProgram::new(
            Vector::from(vec![0.5, 0.8, 0.2]),
            Vector::from(vec![-1.0, -0.3, -2.0]),
            Vector::from(vec![-0.1, 0.0, -0.5]),
        );
        assert!(check_nonpositive(&p, &SolverConfig::default()).holds());
        assert!(check_nonpositive(&p, &box_cfg(200_000)).holds());
    }

    #[test]
    fn finds_witness_for_positive_programs() {
        let p = BilinearProgram::new(
            Vector::from(vec![1.0, 1.0]),
            Vector::from(vec![1.0, 1.0]),
            Vector::from(vec![0.0, 0.0]),
        );
        match check_nonpositive(&p, &box_cfg(200_000)) {
            Verdict::Violated { witness, value } => {
                assert!(value > 3.0, "max should be 4 at π = 1, got {value}");
                assert!((p.eval(&witness) - value).abs() < 1e-9);
            }
            v => panic!("expected violation, got {v:?}"),
        }
    }

    #[test]
    fn lower_bound_matches_grid_on_random_programs() {
        let mut rng = StdRng::seed_from_u64(101);
        for case in 0..120 {
            let n = rng.gen_range(1..=3);
            let p = BilinearProgram::new(
                Vector::from((0..n).map(|_| rng.gen::<f64>()).collect::<Vec<_>>()),
                Vector::from((0..n).map(|_| rng.gen_range(-1.5..1.5)).collect::<Vec<_>>()),
                Vector::from((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect::<Vec<_>>()),
            );
            let out = maximize(&p, &box_cfg(200_000));
            let grid = grid_max(&p, 25);
            assert!(
                out.lower_bound >= grid - 5e-3,
                "case {case}: solver {} below grid {grid}",
                out.lower_bound
            );
            assert!(
                out.upper_bound >= grid - 1e-9,
                "case {case}: UNSOUND upper bound {} below grid {grid}",
                out.upper_bound
            );
        }
    }

    #[test]
    fn upper_bound_is_sound_and_reasonably_tight() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..60 {
            let n = rng.gen_range(2..=3);
            let p = BilinearProgram::new(
                Vector::from((0..n).map(|_| rng.gen::<f64>()).collect::<Vec<_>>()),
                Vector::from((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect::<Vec<_>>()),
                Vector::from((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect::<Vec<_>>()),
            );
            let out = maximize(&p, &box_cfg(2_000_000));
            assert!(out.upper_bound >= out.lower_bound - 1e-9);
            // With a generous budget the gap should close substantially.
            assert!(
                out.upper_bound - out.lower_bound < 0.05 * (1.0 + out.lower_bound.abs()),
                "gap too wide: [{}, {}]",
                out.lower_bound,
                out.upper_bound
            );
        }
    }

    #[test]
    fn tiny_budget_yields_unknown_not_false_certainty() {
        // A program whose max is barely positive: with almost no budget the
        // solver must not claim Holds.
        let p = BilinearProgram::new(
            Vector::from(vec![1.0, 0.3, 0.7, 0.2]),
            Vector::from(vec![0.02, -0.5, 0.01, -0.2]),
            Vector::from(vec![0.0, 0.01, -0.01, 0.0]),
        );
        let generous = maximize(&p, &box_cfg(500_000));
        let tight = check_nonpositive(&p, &box_cfg(4));
        if generous.lower_bound > 1e-9 {
            assert!(
                !tight.holds(),
                "tiny budget claimed Holds on a violated program"
            );
        }
    }

    #[test]
    fn simplex_mode_respects_simplex() {
        let p = BilinearProgram::new(
            Vector::from(vec![1.0, 1.0]),
            Vector::from(vec![1.0, 1.0]),
            Vector::from(vec![0.0, 0.0]),
        );
        let out = maximize(&p, &SolverConfig::default());
        // On the simplex, πa = πg = 1 always ⇒ f = 1 (vs 4 on the box).
        assert!(
            (out.lower_bound - 1.0).abs() < 1e-6,
            "got {}",
            out.lower_bound
        );
        let s = out.best_point.sum();
        assert!((s - 1.0).abs() < 1e-9);
        // Box mode sees the larger maximum.
        let box_out = maximize(&p, &box_cfg(200_000));
        assert!(
            box_out.lower_bound > 3.9,
            "box max should be 4, got {}",
            box_out.lower_bound
        );
    }

    #[test]
    fn zero_dimensional_edge_behaviour() {
        // Single coordinate, trivially certified.
        let p = BilinearProgram::new(
            Vector::from(vec![0.0]),
            Vector::from(vec![5.0]),
            Vector::from(vec![-1.0]),
        );
        assert!(check_nonpositive(&p, &SolverConfig::default()).holds());
        assert!(check_nonpositive(&p, &box_cfg(200_000)).holds());
    }

    #[test]
    fn theorem_shaped_program_with_small_epsilon_is_violated() {
        // Mimic Eq. (15) with an emission that leaks: a = prior coeffs,
        // b peaked inside the event, c uniform-ish, ε tiny.
        let a = Vector::from(vec![0.9, 0.1]);
        let b = Vector::from(vec![0.5, 0.01]);
        let c = Vector::from(vec![0.55, 0.5]);
        let eps: f64 = 0.01;
        let g = Vector::from(
            b.as_slice()
                .iter()
                .zip(c.as_slice())
                .map(|(&bi, &ci)| (eps.exp() - 1.0) * bi - eps.exp() * ci)
                .collect::<Vec<_>>(),
        );
        let p = BilinearProgram::new(a, g, b);
        match check_nonpositive(&p, &SolverConfig::default()) {
            Verdict::Violated { value, .. } => assert!(value > 0.0),
            v => panic!("expected violation for leaky emission at ε=0.01, got {v:?}"),
        }
    }
}
