//! Generic dense box-QP maximizer: `max πQπᵀ + π·h` over `0 ≤ π ≤ 1`.
//!
//! The structured bilinear path covers everything Theorem IV.1 needs; this
//! module exists for (a) cross-checking that path on arbitrary inputs, and
//! (b) the `ablation_qp` bench contrasting the structured solver with a
//! general-purpose approach (multi-start projected gradient ascent with a
//! spectral upper bound), mirroring how one would drive a black-box solver
//! the way the paper drives CPLEX.

use crate::{SolverConfig, Verdict};
use priste_linalg::eigen::symmetric_eigen;
use priste_linalg::{Matrix, Vector};

/// A dense box-constrained QP `max πQπᵀ + π·h`, `0 ≤ π ≤ 1`.
#[derive(Debug, Clone)]
pub struct BoxQp {
    /// Quadratic coefficient matrix (symmetrized internally).
    pub q: Matrix,
    /// Linear term.
    pub h: Vector,
}

impl BoxQp {
    /// Creates a program from a (not necessarily symmetric) `Q`; the
    /// quadratic form only sees the symmetric part.
    ///
    /// # Panics
    /// Panics if `Q` is not square or `h` has mismatched length.
    pub fn new(q: Matrix, h: Vector) -> Self {
        assert!(q.is_square(), "Q must be square");
        assert_eq!(q.rows(), h.len(), "Q/h dimension mismatch");
        BoxQp {
            q: q.symmetrize(),
            h,
        }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.h.len()
    }

    /// Objective value at `π`.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn eval(&self, pi: &Vector) -> f64 {
        self.q.quadratic_form(pi).expect("dimension checked")
            + pi.dot(&self.h).expect("dimension checked")
    }

    /// Gradient `2Qπ + h`.
    fn gradient(&self, pi: &Vector) -> Vector {
        self.q
            .matvec(pi)
            .scale(2.0)
            .add(&self.h)
            .expect("dimension checked")
    }

    /// Spectral upper bound: `Σ_{λ_k > 0} λ_k·‖v_k‖₁² + Σ h_i⁺` — sound but
    /// loose; useful as a fast reject before iterating.
    pub fn spectral_upper_bound(&self) -> f64 {
        let eig = match symmetric_eigen(&self.q) {
            Ok(e) => e,
            Err(_) => return f64::INFINITY,
        };
        let mut bound: f64 = self.h.as_slice().iter().map(|&x| x.max(0.0)).sum();
        for (k, &lambda) in eig.values.iter().enumerate() {
            if lambda > 0.0 {
                let v = eig.vector(k);
                // max over the box of (π·v)² is max(pos-sum, |neg-sum|)².
                let pos: f64 = v.as_slice().iter().filter(|&&x| x > 0.0).sum();
                let neg: f64 = -v.as_slice().iter().filter(|&&x| x < 0.0).sum::<f64>();
                bound += lambda * pos.max(neg).powi(2);
            }
        }
        bound
    }
}

/// Multi-start projected gradient ascent; returns the best point found and
/// its value (a lower bound on the true maximum).
pub fn projected_gradient_max(p: &BoxQp, cfg: &SolverConfig) -> (Vector, f64) {
    let n = p.dim();
    let starts: Vec<Vector> = {
        let mut s = vec![Vector::filled(n, 0.5), Vector::zeros(n), Vector::ones(n)];
        // Deterministic quasi-random corners derived from the gradient signs
        // at the center — cheap diversification without an RNG dependency.
        let g = p.gradient(&Vector::filled(n, 0.5));
        s.push(Vector::from(
            g.as_slice()
                .iter()
                .map(|&x| if x > 0.0 { 1.0 } else { 0.0 })
                .collect::<Vec<_>>(),
        ));
        s
    };
    let mut best = Vector::zeros(n);
    let mut best_val = p.eval(&best);
    let per_start = (cfg.work_budget / starts.len().max(1) as u64).max(8);
    for start in starts {
        let mut x = start;
        let mut step = 1.0;
        let mut val = p.eval(&x);
        for _ in 0..per_start {
            let g = p.gradient(&x);
            let mut trial;
            // Backtracking line search on the projected step.
            loop {
                trial = Vector::from(
                    x.as_slice()
                        .iter()
                        .zip(g.as_slice())
                        .map(|(&xi, &gi)| (xi + step * gi).clamp(0.0, 1.0))
                        .collect::<Vec<_>>(),
                );
                let tv = p.eval(&trial);
                if tv > val || step < 1e-12 {
                    break;
                }
                step *= 0.5;
            }
            let tv = p.eval(&trial);
            if tv <= val + 1e-15 {
                break; // stationary on the box
            }
            val = tv;
            x = trial;
            step = (step * 2.0).min(4.0);
        }
        if val > best_val {
            best_val = val;
            best = x;
        }
    }
    (best, best_val)
}

/// Budgeted non-positivity check for the generic program. `Holds` only via
/// the (loose) spectral bound, `Violated` via projected gradient; everything
/// else is `Unknown` — the structured checker should be preferred whenever
/// the program is bilinear.
pub fn check_nonpositive(p: &BoxQp, cfg: &SolverConfig) -> Verdict {
    let ub = p.spectral_upper_bound();
    if ub <= cfg.tolerance {
        return Verdict::Holds { upper_bound: ub };
    }
    let (witness, value) = projected_gradient_max(p, cfg);
    if value > cfg.tolerance {
        return Verdict::Violated { witness, value };
    }
    Verdict::Unknown {
        lower_bound: value,
        upper_bound: ub,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bilinear::{maximize, BilinearProgram};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn eval_and_gradient_consistency() {
        let q = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, -1.0]]).unwrap();
        let p = BoxQp::new(q, Vector::from(vec![0.5, 0.5]));
        let x = Vector::from(vec![0.5, 0.5]);
        // f = 0.25 − 0.25 + 0.5 = 0.5
        assert!((p.eval(&x) - 0.5).abs() < 1e-12);
        let g = p.gradient(&x);
        assert!((g[0] - 1.5).abs() < 1e-12);
        assert!((g[1] - (-0.5)).abs() < 1e-12);
    }

    #[test]
    fn concave_program_reaches_interior_maximum() {
        // f = −(π₀ − 0.3)² − (π₁ − 0.7)² + const has max at (0.3, 0.7).
        let q = Matrix::from_diag(&Vector::from(vec![-1.0, -1.0]));
        let h = Vector::from(vec![0.6, 1.4]);
        let p = BoxQp::new(q, h);
        let (x, v) = projected_gradient_max(&p, &SolverConfig::default());
        assert!((x[0] - 0.3).abs() < 1e-6, "{:?}", x.as_slice());
        assert!((x[1] - 0.7).abs() < 1e-6);
        assert!((v - (0.09 + 0.49)).abs() < 1e-9);
    }

    #[test]
    fn convex_program_reaches_vertex() {
        let q = Matrix::identity(3);
        let p = BoxQp::new(q, Vector::zeros(3));
        let (_, v) = projected_gradient_max(&p, &SolverConfig::default());
        assert!((v - 3.0).abs() < 1e-9, "max of Σπ² over box is 3, got {v}");
    }

    #[test]
    fn spectral_bound_is_sound() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let n = rng.gen_range(1..=4);
            let mut q = Matrix::zeros(n, n);
            for r in 0..n {
                for c in 0..n {
                    q.set(r, c, rng.gen_range(-1.0..1.0));
                }
            }
            let h = Vector::from((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect::<Vec<_>>());
            let p = BoxQp::new(q, h);
            let ub = p.spectral_upper_bound();
            let (_, lb) = projected_gradient_max(&p, &SolverConfig::default());
            assert!(ub >= lb - 1e-9, "spectral UB {ub} below reachable {lb}");
        }
    }

    #[test]
    fn negative_definite_with_negative_linear_certifies() {
        let q = Matrix::from_diag(&Vector::from(vec![-1.0, -2.0]));
        let h = Vector::from(vec![-0.1, -0.1]);
        let p = BoxQp::new(q, h);
        assert!(check_nonpositive(&p, &SolverConfig::default()).holds());
    }

    #[test]
    fn generic_agrees_with_structured_on_bilinear_programs() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..40 {
            let n = rng.gen_range(2..=4);
            let a = Vector::from((0..n).map(|_| rng.gen::<f64>()).collect::<Vec<_>>());
            let g = Vector::from((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect::<Vec<_>>());
            let h = Vector::from((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect::<Vec<_>>());
            let structured = BilinearProgram::new(a.clone(), g.clone(), h.clone());
            let dense = BoxQp::new(Matrix::outer(&a, &g), h.clone());
            let box_cfg = SolverConfig {
                constraint: crate::ConstraintSet::Box,
                ..SolverConfig::with_budget(100_000)
            };
            let s_out = maximize(&structured, &box_cfg);
            let (_, g_lb) = projected_gradient_max(&dense, &SolverConfig::default());
            // The structured solver must dominate (it is globally informed).
            assert!(
                s_out.lower_bound >= g_lb - 1e-6,
                "structured {} below generic PG {}",
                s_out.lower_bound,
                g_lb
            );
            // And the generic PG value can never exceed the structured UB.
            assert!(s_out.upper_bound >= g_lb - 1e-9);
        }
    }
}
