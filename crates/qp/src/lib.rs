//! Quadratic programming substrate — the reproduction's substitute for the
//! IBM CPLEX optimizer (paper §IV.A "Quadratic Programming" and §IV.C).
//!
//! Theorem IV.1 reduces ε-spatiotemporal event privacy for *arbitrary*
//! initial probabilities to: "is the maximum of a quadratic form over the
//! box `0 ≤ π ≤ 1` non-positive?" — for two specific quadratic forms per
//! candidate release. Both forms are **rank-1 bilinear plus linear**:
//!
//! ```text
//! Eq. (15):  f₁(π) = (π·a)(π·g₁) + π·b      g₁ = (e^ε−1)·b − e^ε·c  (≤ 0)
//! Eq. (16):  f₂(π) = (π·a)(π·g₂) − e^ε·π·b  g₂ = (e^ε−1)·b + c      (≥ 0)
//! ```
//!
//! because the paper's quadratic matrices are outer products `aᵀ(…)`. The
//! general problem is NP-hard with one negative eigenvalue (Pardalos &
//! Vavasis, cited by the paper), so — like CPLEX under the paper's
//! one-second threshold — this solver is *budgeted* and returns a
//! three-valued [`Verdict`]:
//!
//! * `Holds` — a **sound** certificate: a proven upper bound ≤ 0, obtained
//!   from interval decomposition over `u = π·a` with exact knapsack LPs on
//!   each slice ([`bilinear`]).
//! * `Violated` — a concrete witness `π` with `f(π) > 0`.
//! * `Unknown` — budget exhausted with the maximum still straddling zero;
//!   the framework's *conservative release* (§IV.C) treats this as a
//!   failure and keeps decaying the mechanism's budget, so privacy is never
//!   claimed without a certificate.
//!
//! A generic dense-matrix solver ([`generic`]) covers non-structured inputs
//! and cross-checks the structured path in tests and the ablation bench.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bilinear;
pub mod generic;
pub mod knapsack;
pub mod simplex;
pub mod theorem;

pub use bilinear::{maximize, BilinearProgram};
pub use knapsack::{max_budgeted, SliceSolution};
pub use theorem::{TheoremChecker, TheoremVerdict};

use priste_linalg::Vector;

/// Outcome of a budgeted non-positivity check.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Certified: the maximum over the feasible set is ≤ 0.
    Holds {
        /// The proven upper bound (≤ 0).
        upper_bound: f64,
    },
    /// Refuted: a feasible point with a strictly positive value.
    Violated {
        /// The witness point.
        witness: Vector,
        /// Its objective value (> 0).
        value: f64,
    },
    /// Budget exhausted before certifying either way.
    Unknown {
        /// Best (largest) objective value found so far.
        lower_bound: f64,
        /// Best proven upper bound so far.
        upper_bound: f64,
    },
}

impl Verdict {
    /// Whether the verdict certifies the constraint.
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Holds { .. })
    }
}

/// Feasible set for the maximization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintSet {
    /// The probability simplex `π ≥ 0, Σπ = 1` — the set Theorem IV.1
    /// actually needs (its derivation substitutes `Pr(¬EVENT) = 1 − π·aᵀ`,
    /// which presumes `Σπ = 1`). **Default.** Exactly solvable in `O(m²)`
    /// by the pair scan of [`crate::simplex`].
    Simplex,
    /// The paper's *literally stated* constraint `0 ≤ π_i ≤ 1` without the
    /// sum constraint. Kept for the ablation bench and as documentation:
    /// dropping `Σπ = 1` makes Eq. (15) violable for every mechanism
    /// (scale any π toward zero), contradicting the paper's own α→0
    /// termination argument — so the simplex is the faithful reading.
    Box,
}

/// Budget and tolerances for a check.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Abstract work units (≈ one knapsack LP or one gradient sweep each).
    /// The deterministic analogue of the paper's CPLEX wall-clock threshold
    /// (Table III); exhausting it yields [`Verdict::Unknown`].
    pub work_budget: u64,
    /// Decision tolerance: values within `±tolerance` of zero count as
    /// non-positive (absorbs floating-point noise in the homogeneous
    /// rescaling).
    pub tolerance: f64,
    /// Feasible set.
    pub constraint: ConstraintSet,
    /// Optional wall-clock deadline for one check — the faithful analogue
    /// of the paper's CPLEX time threshold (Table III). `None` (default)
    /// keeps checks fully deterministic via `work_budget` alone.
    pub deadline: Option<std::time::Duration>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            work_budget: 200_000,
            tolerance: 1e-9,
            constraint: ConstraintSet::Simplex,
            deadline: None,
        }
    }
}

impl SolverConfig {
    /// A configuration with the given work budget and defaults otherwise.
    pub fn with_budget(work_budget: u64) -> Self {
        SolverConfig {
            work_budget,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_simplex_mode() {
        let c = SolverConfig::default();
        assert_eq!(c.constraint, ConstraintSet::Simplex);
        assert!(c.work_budget > 0);
    }

    #[test]
    fn verdict_holds_predicate() {
        assert!(Verdict::Holds { upper_bound: -0.5 }.holds());
        assert!(!Verdict::Unknown {
            lower_bound: -1.0,
            upper_bound: 1.0
        }
        .holds());
    }
}
