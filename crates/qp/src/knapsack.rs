//! Exact greedy solvers for the knapsack-shaped LPs that arise when the
//! bilinear objective is sliced along `u = π·a` — and, since the
//! utility-aware budget planner landed, for horizon budget allocation.
//!
//! All solve over the box `0 ≤ π ≤ 1`:
//!
//! * [`max_with_equality`] — `max π·w  s.t.  π·a = u` (the parametric-LP
//!   slice used by the lower-bound sweep).
//! * [`max_with_band`] — `max π·w  s.t.  L ≤ π·a ≤ U` (the slice used by
//!   the sound upper-bound decomposition).
//! * [`max_budgeted`] — `max π·w  s.t.  π·a ≤ C` (the budgeted-allocation
//!   LP `priste-calibrate`'s knapsack planner solves over its concavified
//!   per-step utility segments).
//!
//! With a single linear constraint plus box bounds, an optimal vertex has
//! at most one fractional coordinate and the exchange argument makes the
//! density-greedy order optimal — these are exact LP solutions, not
//! heuristics.

use priste_linalg::Vector;

/// Solution of a knapsack LP slice.
#[derive(Debug, Clone)]
pub struct SliceSolution {
    /// Optimal objective value.
    pub value: f64,
    /// An optimal point.
    pub point: Vector,
}

/// `max π·w` s.t. `π·a = u`, `0 ≤ π ≤ 1`, with `a ≥ 0`.
///
/// Returns `None` when `u` is outside the reachable interval `[0, Σa]`.
/// Coordinates with `a_i = 0` never affect the constraint and are set to 1
/// exactly when `w_i > 0`.
pub fn max_with_equality(w: &Vector, a: &Vector, u: f64) -> Option<SliceSolution> {
    let n = w.len();
    debug_assert_eq!(a.len(), n);
    let total: f64 = a.sum();
    if u < -1e-12 || u > total + 1e-12 {
        return None;
    }
    let u = u.clamp(0.0, total);

    let mut point = Vector::zeros(n);
    let mut value = 0.0;
    // Free coordinates (a_i = 0): grab every positive weight.
    for i in 0..n {
        if a[i] == 0.0 && w[i] > 0.0 {
            point[i] = 1.0;
            value += w[i];
        }
    }
    // Constrained coordinates: fill mass u in descending density order.
    let mut order: Vec<usize> = (0..n).filter(|&i| a[i] > 0.0).collect();
    order.sort_by(|&i, &j| {
        let di = w[i] / a[i];
        let dj = w[j] / a[j];
        dj.partial_cmp(&di).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut remaining = u;
    for &i in &order {
        if remaining <= 0.0 {
            break;
        }
        let take = (remaining / a[i]).min(1.0);
        point[i] = take;
        value += take * w[i];
        remaining -= take * a[i];
    }
    Some(SliceSolution { value, point })
}

/// `max π·w` s.t. `L ≤ π·a ≤ U`, `0 ≤ π ≤ 1`, with `a ≥ 0`.
///
/// Returns `None` when the band does not intersect `[0, Σa]`.
pub fn max_with_band(w: &Vector, a: &Vector, lo: f64, hi: f64) -> Option<SliceSolution> {
    let n = w.len();
    debug_assert_eq!(a.len(), n);
    let total: f64 = a.sum();
    if lo > total + 1e-12 || hi < -1e-12 || lo > hi + 1e-12 {
        return None;
    }
    let lo = lo.clamp(0.0, total);
    let hi = hi.clamp(0.0, total);

    // Unconstrained optimum: take all strictly positive weights.
    let mut point = Vector::zeros(n);
    let mut value = 0.0;
    let mut mass = 0.0;
    for i in 0..n {
        if w[i] > 0.0 {
            point[i] = 1.0;
            value += w[i];
            mass += a[i];
        }
    }
    if mass > hi {
        // Shed (mass − hi) units of a-mass at the cheapest objective cost:
        // reduce selected coordinates in ascending density w_i/a_i.
        let mut order: Vec<usize> = (0..n).filter(|&i| point[i] > 0.0 && a[i] > 0.0).collect();
        order.sort_by(|&i, &j| {
            let di = w[i] / a[i];
            let dj = w[j] / a[j];
            di.partial_cmp(&dj).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut excess = mass - hi;
        for &i in &order {
            if excess <= 0.0 {
                break;
            }
            let drop = (excess / a[i]).min(1.0);
            point[i] -= drop;
            value -= drop * w[i];
            excess -= drop * a[i];
        }
        if excess > 1e-9 {
            return None; // cannot satisfy even at π involving only a_i = 0 … unreachable since hi ≥ 0
        }
    } else if mass < lo {
        // Acquire (lo − mass) units at the least objective damage: raise
        // unselected coordinates in descending density order (weights ≤ 0).
        let mut order: Vec<usize> = (0..n).filter(|&i| point[i] < 1.0 && a[i] > 0.0).collect();
        order.sort_by(|&i, &j| {
            let di = w[i] / a[i];
            let dj = w[j] / a[j];
            dj.partial_cmp(&di).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut deficit = lo - mass;
        for &i in &order {
            if deficit <= 0.0 {
                break;
            }
            let room = 1.0 - point[i];
            let add = (deficit / a[i]).min(room);
            point[i] += add;
            value += add * w[i];
            deficit -= add * a[i];
        }
        if deficit > 1e-9 {
            return None;
        }
    }
    Some(SliceSolution { value, point })
}

/// `max π·w` s.t. `π·a ≤ capacity`, `0 ≤ π ≤ 1`, with `a ≥ 0` — the
/// budgeted-allocation LP: spend a shared capacity on the items whose
/// value-per-mass density `w_i/a_i` is highest.
///
/// This is the entry point `priste-calibrate`'s knapsack planner drives:
/// each item is one concavified utility segment of one timestep, `a_i` its
/// ε-mass and `w_i` its utility gain, and `capacity` the horizon's total
/// certified ε-mass. Non-positive weights are never taken (the constraint
/// is an inequality, so they cannot be forced), and `π = 0` is always
/// feasible — the LP only returns `None` for a negative capacity.
///
/// Tie-breaking is deterministic and part of the contract: among items of
/// equal density the *higher-index* items are preferred (the shedding pass
/// reduces lower indices first), which callers exploit by ordering items so
/// that later-preferred choices carry higher indices.
pub fn max_budgeted(w: &Vector, a: &Vector, capacity: f64) -> Option<SliceSolution> {
    if capacity < -1e-12 {
        return None;
    }
    max_with_band(w, a, 0.0, capacity.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Exact LP oracle by basic-solution enumeration: with one equality
    /// constraint plus box bounds, an optimal vertex has every coordinate
    /// at a bound except at most one fractional coordinate `j`. Enumerate
    /// every (subset-at-1, fractional j) combination — exponential but
    /// exact for tiny n.
    fn brute_force_equality(w: &Vector, a: &Vector, u: f64) -> f64 {
        let n = w.len();
        assert!(n <= 4);
        let mut best = f64::NEG_INFINITY;
        for mask in 0..(1u32 << n) {
            let mass: f64 = (0..n).filter(|&i| mask >> i & 1 == 1).map(|i| a[i]).sum();
            let val: f64 = (0..n).filter(|&i| mask >> i & 1 == 1).map(|i| w[i]).sum();
            if (mass - u).abs() < 1e-9 {
                best = best.max(val);
            }
            for j in 0..n {
                if mask >> j & 1 == 1 || a[j] == 0.0 {
                    continue;
                }
                let frac = (u - mass) / a[j];
                if (0.0..=1.0).contains(&frac) {
                    best = best.max(val + frac * w[j]);
                }
            }
        }
        best
    }

    #[test]
    fn equality_matches_hand_example() {
        // w = [3, 1], a = [1, 1], u = 1 ⇒ all mass on coordinate 0.
        let sol = max_with_equality(
            &Vector::from(vec![3.0, 1.0]),
            &Vector::from(vec![1.0, 1.0]),
            1.0,
        )
        .unwrap();
        assert!((sol.value - 3.0).abs() < 1e-12);
        assert!((sol.point[0] - 1.0).abs() < 1e-12);
        assert!(sol.point[1].abs() < 1e-12);
    }

    #[test]
    fn equality_takes_fractional_boundary() {
        // u = 1.5 ⇒ coordinate 0 full, coordinate 1 half.
        let sol = max_with_equality(
            &Vector::from(vec![3.0, 1.0]),
            &Vector::from(vec![1.0, 1.0]),
            1.5,
        )
        .unwrap();
        assert!((sol.value - 3.5).abs() < 1e-12);
        assert!((sol.point[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn equality_includes_negative_weights_when_forced() {
        // Forced to absorb all mass: value = 3 − 2 = 1.
        let sol = max_with_equality(
            &Vector::from(vec![3.0, -2.0]),
            &Vector::from(vec![1.0, 1.0]),
            2.0,
        )
        .unwrap();
        assert!((sol.value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn equality_free_coordinates_take_positive_weights() {
        let sol = max_with_equality(
            &Vector::from(vec![5.0, -1.0, 2.0]),
            &Vector::from(vec![0.0, 0.0, 1.0]),
            0.5,
        )
        .unwrap();
        // Free coord 0 taken, free coord 1 skipped, constrained coord half.
        assert!((sol.value - 6.0).abs() < 1e-12);
    }

    #[test]
    fn equality_rejects_unreachable_mass() {
        assert!(
            max_with_equality(&Vector::from(vec![1.0]), &Vector::from(vec![1.0]), 1.5).is_none()
        );
    }

    #[test]
    fn equality_matches_brute_force_on_random_cases() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..500 {
            let n = rng.gen_range(1..=4);
            let w = Vector::from((0..n).map(|_| rng.gen_range(-2.0..2.0)).collect::<Vec<_>>());
            let a = Vector::from((0..n).map(|_| rng.gen_range(0.0..1.5)).collect::<Vec<_>>());
            let total = a.sum();
            let u = rng.gen::<f64>() * total;
            let exact = max_with_equality(&w, &a, u).unwrap().value;
            let brute = brute_force_equality(&w, &a, u);
            assert!(
                (exact - brute).abs() < 1e-9,
                "greedy {exact} != exact LP {brute} (w {:?}, a {:?}, u {u})",
                w.as_slice(),
                a.as_slice()
            );
        }
    }

    #[test]
    fn band_unconstrained_when_positive_mass_fits() {
        let sol = max_with_band(
            &Vector::from(vec![2.0, -1.0, 3.0]),
            &Vector::from(vec![0.5, 0.5, 0.5]),
            0.0,
            2.0,
        )
        .unwrap();
        assert!((sol.value - 5.0).abs() < 1e-12);
    }

    #[test]
    fn band_sheds_cheapest_mass_when_over() {
        // Both positive, but band forces ≤ 0.5 mass: keep the denser one.
        let sol = max_with_band(
            &Vector::from(vec![3.0, 1.0]),
            &Vector::from(vec![0.5, 0.5]),
            0.0,
            0.5,
        )
        .unwrap();
        assert!((sol.value - 3.0).abs() < 1e-12);
    }

    #[test]
    fn band_acquires_least_damaging_mass_when_under() {
        // All weights negative; must reach mass ≥ 1 with least loss.
        let sol = max_with_band(
            &Vector::from(vec![-1.0, -5.0]),
            &Vector::from(vec![1.0, 1.0]),
            1.0,
            2.0,
        )
        .unwrap();
        assert!((sol.value + 1.0).abs() < 1e-12);
        assert!((sol.point[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn band_validates_feasibility() {
        assert!(
            max_with_band(&Vector::from(vec![1.0]), &Vector::from(vec![1.0]), 2.0, 3.0).is_none()
        );
        assert!(
            max_with_band(&Vector::from(vec![1.0]), &Vector::from(vec![1.0]), 0.8, 0.2).is_none()
        );
    }

    #[test]
    fn band_dominates_equality_slices_inside_it() {
        // The band optimum must be ≥ every equality slice within the band.
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let n = rng.gen_range(2..=5);
            let w = Vector::from((0..n).map(|_| rng.gen_range(-2.0..2.0)).collect::<Vec<_>>());
            let a = Vector::from((0..n).map(|_| rng.gen::<f64>()).collect::<Vec<_>>());
            let total = a.sum();
            let lo = rng.gen::<f64>() * total * 0.5;
            let hi = lo + rng.gen::<f64>() * (total - lo);
            let band = max_with_band(&w, &a, lo, hi).unwrap().value;
            for k in 0..=10 {
                let u = lo + (hi - lo) * k as f64 / 10.0;
                if let Some(slice) = max_with_equality(&w, &a, u) {
                    assert!(
                        band >= slice.value - 1e-9,
                        "band {band} < slice {}",
                        slice.value
                    );
                }
            }
        }
    }

    /// Exact LP oracle for the budgeted problem by basic-solution
    /// enumeration: an optimal vertex either leaves the capacity slack
    /// (every coordinate at a box bound) or binds it with at most one
    /// fractional coordinate.
    fn brute_force_budgeted(w: &Vector, a: &Vector, capacity: f64) -> f64 {
        let n = w.len();
        assert!(n <= 4);
        let mut best = f64::NEG_INFINITY;
        for mask in 0..(1u32 << n) {
            let mass: f64 = (0..n).filter(|&i| mask >> i & 1 == 1).map(|i| a[i]).sum();
            let val: f64 = (0..n).filter(|&i| mask >> i & 1 == 1).map(|i| w[i]).sum();
            if mass <= capacity + 1e-9 {
                best = best.max(val);
            }
            for j in 0..n {
                if mask >> j & 1 == 1 || a[j] == 0.0 {
                    continue;
                }
                let frac = (capacity - mass) / a[j];
                if (0.0..=1.0).contains(&frac) {
                    best = best.max(val + frac * w[j]);
                }
            }
        }
        best
    }

    #[test]
    fn budgeted_takes_densest_items_first() {
        // Densities 6, 1; capacity for one unit of mass: all of item 0,
        // none of item 1.
        let sol = max_budgeted(
            &Vector::from(vec![3.0, 1.0]),
            &Vector::from(vec![0.5, 1.0]),
            0.5,
        )
        .unwrap();
        assert!((sol.value - 3.0).abs() < 1e-12);
        assert!((sol.point[0] - 1.0).abs() < 1e-12);
        assert!(sol.point[1].abs() < 1e-12);
    }

    #[test]
    fn budgeted_never_takes_negative_weights() {
        // Plenty of capacity, but the inequality never forces a loss.
        let sol = max_budgeted(
            &Vector::from(vec![2.0, -1.0]),
            &Vector::from(vec![1.0, 1.0]),
            10.0,
        )
        .unwrap();
        assert!((sol.value - 2.0).abs() < 1e-12);
        assert!(sol.point[1].abs() < 1e-12);
    }

    #[test]
    fn budgeted_zero_capacity_keeps_free_items_only() {
        let sol = max_budgeted(
            &Vector::from(vec![5.0, 2.0]),
            &Vector::from(vec![0.0, 1.0]),
            0.0,
        )
        .unwrap();
        assert!((sol.value - 5.0).abs() < 1e-12, "a_i = 0 items are free");
        assert!(sol.point[1].abs() < 1e-12);
    }

    #[test]
    fn budgeted_rejects_negative_capacity() {
        assert!(max_budgeted(&Vector::from(vec![1.0]), &Vector::from(vec![1.0]), -1.0).is_none());
    }

    #[test]
    fn budgeted_prefers_higher_indices_on_density_ties() {
        // Two identical items but capacity for only one: the documented
        // tie-break keeps the higher index (lower indices shed first).
        let sol = max_budgeted(
            &Vector::from(vec![1.0, 1.0]),
            &Vector::from(vec![1.0, 1.0]),
            1.0,
        )
        .unwrap();
        assert!((sol.value - 1.0).abs() < 1e-12);
        assert!(sol.point[0].abs() < 1e-12, "lower index shed: {sol:?}");
        assert!((sol.point[1] - 1.0).abs() < 1e-12);
    }

    /// Cross-check against the generic dense solver, same pattern as the
    /// structured-vs-generic ablation: with a slack capacity the budget
    /// constraint is inactive and the LP is the box-QP `max π·w` (Q = 0),
    /// which projected gradient solves exactly.
    #[test]
    fn budgeted_matches_generic_dense_solver_when_capacity_is_slack() {
        use crate::generic::{projected_gradient_max, BoxQp};
        use crate::SolverConfig;
        use priste_linalg::Matrix;
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..40 {
            let n = rng.gen_range(1..=4);
            let w = Vector::from((0..n).map(|_| rng.gen_range(-2.0..2.0)).collect::<Vec<_>>());
            let a = Vector::from((0..n).map(|_| rng.gen::<f64>()).collect::<Vec<_>>());
            let lp = max_budgeted(&w, &a, a.sum() + 1.0).unwrap();
            let dense = BoxQp::new(Matrix::zeros(n, n), w.clone());
            let (_, generic) = projected_gradient_max(&dense, &SolverConfig::default());
            assert!(
                (lp.value - generic).abs() < 1e-6,
                "knapsack {} != generic dense {} (w {:?})",
                lp.value,
                generic,
                w.as_slice()
            );
        }
    }

    #[test]
    fn budgeted_matches_brute_force_on_random_cases() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..500 {
            let n = rng.gen_range(1..=4);
            let w = Vector::from((0..n).map(|_| rng.gen_range(-2.0..2.0)).collect::<Vec<_>>());
            let a = Vector::from((0..n).map(|_| rng.gen_range(0.0..1.5)).collect::<Vec<_>>());
            let capacity = rng.gen::<f64>() * (a.sum() + 0.2);
            let exact = max_budgeted(&w, &a, capacity).unwrap();
            let brute = brute_force_budgeted(&w, &a, capacity);
            assert!(
                (exact.value - brute).abs() < 1e-9,
                "greedy {} != exact LP {brute} (w {:?}, a {:?}, C {capacity})",
                exact.value,
                w.as_slice(),
                a.as_slice()
            );
            let mass = exact.point.dot(&a).unwrap();
            assert!(mass <= capacity + 1e-9, "mass {mass} over capacity");
            for &p in exact.point.as_slice() {
                assert!((-1e-12..=1.0 + 1e-12).contains(&p));
            }
        }
    }

    #[test]
    fn budgeted_is_monotone_in_capacity() {
        let mut rng = StdRng::seed_from_u64(101);
        for _ in 0..50 {
            let n = rng.gen_range(1..=5);
            let w = Vector::from((0..n).map(|_| rng.gen_range(-1.0..2.0)).collect::<Vec<_>>());
            let a = Vector::from((0..n).map(|_| rng.gen::<f64>()).collect::<Vec<_>>());
            let total = a.sum();
            let mut prev = f64::NEG_INFINITY;
            for k in 0..=8 {
                let c = total * k as f64 / 8.0;
                let v = max_budgeted(&w, &a, c).unwrap().value;
                assert!(v >= prev - 1e-9, "value dropped as capacity grew");
                prev = v;
            }
        }
    }

    #[test]
    fn solutions_respect_box_and_constraint() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let n = rng.gen_range(1..=6);
            let w = Vector::from((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect::<Vec<_>>());
            let a = Vector::from((0..n).map(|_| rng.gen::<f64>()).collect::<Vec<_>>());
            let u = rng.gen::<f64>() * a.sum();
            let sol = max_with_equality(&w, &a, u).unwrap();
            for &p in sol.point.as_slice() {
                assert!((-1e-12..=1.0 + 1e-12).contains(&p));
            }
            let mass = sol.point.dot(&a).unwrap();
            assert!((mass - u).abs() < 1e-9, "mass {mass} vs u {u}");
        }
    }
}
