//! Cross-solver containment properties: the exact simplex maximum can never
//! exceed any sound box bound (the box contains the simplex), and all
//! solver paths agree with brute force on small instances.

use priste_linalg::Vector;
use priste_qp::simplex::maximize_simplex;
use priste_qp::{bilinear, BilinearProgram, ConstraintSet, SolverConfig};
use proptest::prelude::*;

fn program(n: usize) -> impl Strategy<Value = BilinearProgram> {
    (
        proptest::collection::vec(0.0f64..1.0, n),
        proptest::collection::vec(-1.5f64..1.5, n),
        proptest::collection::vec(-1.0f64..1.0, n),
    )
        .prop_map(|(a, g, h)| {
            BilinearProgram::new(Vector::from(a), Vector::from(g), Vector::from(h))
        })
}

fn box_cfg() -> SolverConfig {
    SolverConfig {
        constraint: ConstraintSet::Box,
        ..SolverConfig::with_budget(300_000)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Box maximum ≥ simplex maximum, always (containment), and the box
    /// upper bound is sound for the simplex too.
    #[test]
    fn box_dominates_simplex(p in program(5)) {
        let simplex = maximize_simplex(&p, u64::MAX, f64::INFINITY);
        prop_assert!(simplex.complete);
        let boxed = bilinear::maximize(&p, &box_cfg());
        // The box LB comes from a golden-section sweep with ~1e-6 slice
        // resolution; containment up to that resolution.
        prop_assert!(
            boxed.lower_bound >= simplex.best_value - 1e-5 * (1.0 + simplex.best_value.abs()),
            "box LB {} below simplex max {}",
            boxed.lower_bound,
            simplex.best_value
        );
        // The box UPPER bound is sound, so it must dominate exactly.
        prop_assert!(boxed.upper_bound >= simplex.best_value - 1e-9);
    }

    /// The simplex scan's reported point achieves its reported value and is
    /// feasible.
    #[test]
    fn simplex_witness_is_feasible_and_achieving(p in program(6)) {
        let out = maximize_simplex(&p, u64::MAX, f64::INFINITY);
        prop_assert!((out.best_point.sum() - 1.0).abs() < 1e-9);
        for &x in out.best_point.as_slice() {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&x));
        }
        prop_assert!((p.eval(&out.best_point) - out.best_value).abs() < 1e-9);
    }

    /// Shifting the linear term by c·1 shifts the simplex maximum by
    /// exactly c (since Σπ = 1) — an analytic identity the scan must obey.
    #[test]
    fn linear_shift_identity(p in program(4), c in -2.0f64..2.0) {
        let base = maximize_simplex(&p, u64::MAX, f64::INFINITY).best_value;
        let shifted_h = Vector::from(
            p.h.as_slice().iter().map(|&x| x + c).collect::<Vec<_>>(),
        );
        let shifted = BilinearProgram::new(p.a.clone(), p.g.clone(), shifted_h);
        let shifted_max = maximize_simplex(&shifted, u64::MAX, f64::INFINITY).best_value;
        prop_assert!(
            (shifted_max - base - c).abs() < 1e-8,
            "shift identity broken: {shifted_max} vs {base} + {c}"
        );
    }

    /// Scaling g by a positive constant scales the bilinear part: with
    /// h = 0, max is positively homogeneous in g.
    #[test]
    fn bilinear_homogeneity_in_g(p in program(4), k in 0.1f64..4.0) {
        let zero_h = BilinearProgram::new(p.a.clone(), p.g.clone(), Vector::zeros(4));
        let base = maximize_simplex(&zero_h, u64::MAX, f64::INFINITY).best_value;
        let scaled = BilinearProgram::new(
            p.a.clone(),
            p.g.scale(k),
            Vector::zeros(4),
        );
        let scaled_max = maximize_simplex(&scaled, u64::MAX, f64::INFINITY).best_value;
        // max(k·f) = k·max(f) only when max ≥ 0 is not required — it holds
        // for any sign because scaling g scales every pair value linearly.
        prop_assert!(
            (scaled_max - k * base).abs() < 1e-8 * (1.0 + base.abs() * k),
            "homogeneity broken: {scaled_max} vs {k}·{base}"
        );
    }
}
