//! Robustness tests for the event DSL parser: arbitrary input must never
//! panic, and structured mutations of valid specs must fail cleanly.

use priste_event::dsl::parse_event;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup: the parser returns Ok or Err, never panics.
    #[test]
    fn arbitrary_strings_never_panic(input in "\\PC{0,64}", m in 1usize..64) {
        let _ = parse_event(&input, m);
    }

    /// Strings over the DSL's own alphabet — much likelier to reach deep
    /// parser states than fully random bytes.
    #[test]
    fn dsl_alphabet_strings_never_panic(
        input in "[PRESNCEATR(){}:,=0-9 ]{0,48}",
        m in 1usize..32,
    ) {
        let _ = parse_event(&input, m);
    }

    /// Random well-formed PRESENCE specs parse and agree with their fields.
    #[test]
    fn well_formed_presence_round_trip(
        lo in 1usize..6,
        extra in 0usize..4,
        start in 1usize..5,
        len in 0usize..4,
    ) {
        let hi = lo + extra;
        let end = start + len;
        let m = 16;
        let spec = format!("PRESENCE(S={{{lo}:{hi}}}, T={{{start}:{end}}})");
        let ev = parse_event(&spec, m).unwrap();
        prop_assert_eq!(ev.start(), start);
        prop_assert_eq!(ev.end(), end);
        prop_assert_eq!(ev.width(), hi - lo + 1);
    }

    /// Truncating a valid spec anywhere yields an error, not a panic (and
    /// never a silently-parsed prefix).
    #[test]
    fn truncations_fail_cleanly(cut in 1usize..30) {
        let spec = "PRESENCE(S={1:4}, T={2:5})";
        if cut < spec.len() {
            let truncated = &spec[..cut];
            prop_assert!(parse_event(truncated, 16).is_err(), "accepted {truncated:?}");
        }
    }

    /// Single-byte corruption of a valid spec either still parses to *some*
    /// valid event or fails cleanly — never panics.
    #[test]
    fn single_byte_corruption_never_panics(pos in 0usize..26, byte in 0u8..128) {
        let mut spec = b"PRESENCE(S={1:4}, T={2:5})".to_vec();
        if pos < spec.len() {
            spec[pos] = byte;
            if let Ok(s) = std::str::from_utf8(&spec) {
                let _ = parse_event(s, 16);
            }
        }
    }
}
