use crate::{EventError, EventExpr, Result};
use priste_geo::{CellId, Region};

/// `PATTERN(S, T)` — Definition II.3: the user appears in region `s_t` at
/// *every* timestamp `t` of the window, i.e. the trajectory threads the
/// sequence of regions `s_start, …, s_end`.
///
/// A PATTERN with singleton regions is exactly a trajectory secret
/// (Table II); wider regions express commuting patterns like the paper's
/// "love hotel then home" example.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    regions: Vec<Region>,
    start: usize,
}

impl Pattern {
    /// Creates a validated PATTERN starting at `start` (1-based); region `k`
    /// applies at timestamp `start + k`.
    ///
    /// # Errors
    /// * [`EventError::InvalidWindow`] if `start == 0`.
    /// * [`EventError::NoRegions`] for an empty region list.
    /// * [`EventError::EmptyRegion`] if any region is empty (the pattern
    ///   could never hold).
    /// * [`EventError::DomainMismatch`] if regions disagree on domain size.
    /// * [`EventError::FullRegion`] if *every* region covers the whole map
    ///   (the pattern would be constant true). Individual full regions are
    ///   allowed — they act as wildcards within a longer pattern.
    pub fn new(regions: Vec<Region>, start: usize) -> Result<Self> {
        if start == 0 {
            return Err(EventError::InvalidWindow {
                start,
                end: start + regions.len(),
            });
        }
        let first = regions.first().ok_or(EventError::NoRegions)?;
        let m = first.num_cells();
        for r in &regions {
            if r.num_cells() != m {
                return Err(EventError::DomainMismatch {
                    expected: m,
                    actual: r.num_cells(),
                });
            }
            if r.is_empty() {
                return Err(EventError::EmptyRegion);
            }
        }
        if regions.iter().all(|r| r.len() == m) {
            return Err(EventError::FullRegion);
        }
        Ok(Pattern { regions, start })
    }

    /// The region sequence `s_start, …, s_end`.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The region in force at 1-based timestamp `t`, or `None` outside the
    /// window.
    pub fn region_at(&self, t: usize) -> Option<&Region> {
        if t < self.start {
            return None;
        }
        self.regions.get(t - self.start)
    }

    /// First timestamp of the window (1-based, inclusive).
    pub fn start(&self) -> usize {
        self.start
    }

    /// Last timestamp of the window (1-based, inclusive).
    pub fn end(&self) -> usize {
        self.start + self.regions.len() - 1
    }

    /// Number of timestamps in the window (the paper's "event length").
    pub fn window_len(&self) -> usize {
        self.regions.len()
    }

    /// State-domain size `m`.
    pub fn num_cells(&self) -> usize {
        self.regions[0].num_cells()
    }

    /// Ground truth: `true` iff the trajectory lies inside every region of
    /// the window.
    ///
    /// # Errors
    /// [`EventError::TrajectoryTooShort`] if the trajectory ends before
    /// `end`.
    pub fn eval(&self, traj: &[CellId]) -> Result<bool> {
        if traj.len() < self.end() {
            return Err(EventError::TrajectoryTooShort {
                required: self.end(),
                available: traj.len(),
            });
        }
        Ok(self
            .regions
            .iter()
            .enumerate()
            .all(|(k, r)| r.contains(traj[self.start + k - 1])))
    }

    /// Expands to the canonical Boolean expression of Table II:
    /// `∧_{t ∈ T} ∨_{s ∈ s_t} (u_t = s)`.
    pub fn to_expr(&self) -> EventExpr {
        let regions: Vec<Vec<CellId>> = self.regions.iter().map(|r| r.iter().collect()).collect();
        EventExpr::fig1e(self.start, &regions)
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PATTERN(S=[")?;
        for (i, r) in self.regions.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "], T={{{}:{}}})", self.start, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(ids: &[usize]) -> Vec<CellId> {
        ids.iter().map(|&i| CellId(i)).collect()
    }

    fn region(num_cells: usize, ids: &[usize]) -> Region {
        Region::from_cells(num_cells, ids.iter().map(|&i| CellId(i))).unwrap()
    }

    #[test]
    fn validation() {
        assert!(matches!(
            Pattern::new(vec![], 1),
            Err(EventError::NoRegions)
        ));
        assert!(matches!(
            Pattern::new(vec![region(3, &[0])], 0),
            Err(EventError::InvalidWindow { .. })
        ));
        assert!(matches!(
            Pattern::new(vec![region(3, &[0]), Region::empty(3)], 1),
            Err(EventError::EmptyRegion)
        ));
        assert!(matches!(
            Pattern::new(vec![region(3, &[0]), region(4, &[0])], 1),
            Err(EventError::DomainMismatch { .. })
        ));
        assert!(matches!(
            Pattern::new(vec![Region::full(3), Region::full(3)], 1),
            Err(EventError::FullRegion)
        ));
        // A single full region among narrower ones is a wildcard — allowed.
        assert!(Pattern::new(vec![region(3, &[0]), Region::full(3)], 1).is_ok());
    }

    #[test]
    fn example_ii2_ground_truth() {
        // Example II.2: {s1,s2} at t=2 and {s2,s3} at t=3 over a 3-state map.
        let p = Pattern::new(vec![region(3, &[0, 1]), region(3, &[1, 2])], 2).unwrap();
        assert_eq!(p.end(), 3);
        assert!(p.eval(&traj(&[2, 0, 1, 0])).unwrap());
        assert!(p.eval(&traj(&[2, 1, 2, 0])).unwrap());
        assert!(!p.eval(&traj(&[2, 2, 1, 0])).unwrap()); // misses first region
        assert!(!p.eval(&traj(&[2, 0, 0, 0])).unwrap()); // misses second region
    }

    #[test]
    fn region_at_window_arithmetic() {
        let p = Pattern::new(vec![region(3, &[0]), region(3, &[1])], 4).unwrap();
        assert!(p.region_at(3).is_none());
        assert_eq!(p.region_at(4).unwrap(), &region(3, &[0]));
        assert_eq!(p.region_at(5).unwrap(), &region(3, &[1]));
        assert!(p.region_at(6).is_none());
        assert_eq!(p.window_len(), 2);
    }

    #[test]
    fn singleton_pattern_is_exact_trajectory() {
        // Fig. 1(c): trajectory s1 → s1 as a PATTERN with singleton regions.
        let p = Pattern::new(vec![region(2, &[0]), region(2, &[0])], 1).unwrap();
        assert!(p.eval(&traj(&[0, 0])).unwrap());
        assert!(!p.eval(&traj(&[0, 1])).unwrap());
        assert!(!p.eval(&traj(&[1, 0])).unwrap());
    }

    #[test]
    fn expr_expansion_agrees_with_direct_eval() {
        let p = Pattern::new(vec![region(3, &[0, 2]), region(3, &[1])], 1).unwrap();
        let e = p.to_expr();
        for a in 0..3 {
            for b in 0..3 {
                let t = traj(&[a, b]);
                assert_eq!(p.eval(&t).unwrap(), e.eval(&t).unwrap(), "traj {t:?}");
            }
        }
    }

    #[test]
    fn eval_requires_full_window() {
        let p = Pattern::new(vec![region(3, &[0]), region(3, &[1])], 2).unwrap();
        assert!(matches!(
            p.eval(&traj(&[0, 0])),
            Err(EventError::TrajectoryTooShort {
                required: 3,
                available: 2
            })
        ));
    }

    #[test]
    fn display_notation() {
        let p = Pattern::new(vec![region(3, &[0, 1]), region(3, &[1, 2])], 2).unwrap();
        assert_eq!(p.to_string(), "PATTERN(S=[{s1,s2},{s2,s3}], T={2:3})");
    }
}
