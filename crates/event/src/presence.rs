use crate::{EventError, EventExpr, Result};
use priste_geo::{CellId, Region};

/// `PRESENCE(S, T)` — Definition II.2: the user appears in region `S` at
/// *some* timestamp of the window `T = {start, …, end}`.
///
/// The paper's experiments write this `PRESENCE(S={1:10}, T={4:8})`. Time
/// windows are consecutive, matching the paper's simplification ("we assume
/// that the events are defined in consecutive time and use start and end");
/// the generalization to sparse `T` is an OR of consecutive PRESENCE events
/// and is expressible through [`EventExpr`] directly.
#[derive(Debug, Clone, PartialEq)]
pub struct Presence {
    region: Region,
    start: usize,
    end: usize,
}

impl Presence {
    /// Creates a validated PRESENCE event.
    ///
    /// # Errors
    /// * [`EventError::InvalidWindow`] unless `1 ≤ start ≤ end`.
    /// * [`EventError::EmptyRegion`] / [`EventError::FullRegion`] for
    ///   degenerate regions whose ground truth is constant — the
    ///   ε-indistinguishability ratio between `EVENT` and `¬EVENT` is
    ///   undefined when one side has probability zero for every prior.
    pub fn new(region: Region, start: usize, end: usize) -> Result<Self> {
        if start == 0 || start > end {
            return Err(EventError::InvalidWindow { start, end });
        }
        if region.is_empty() {
            return Err(EventError::EmptyRegion);
        }
        if region.len() == region.num_cells() {
            return Err(EventError::FullRegion);
        }
        Ok(Presence { region, start, end })
    }

    /// Paper shorthand: `PRESENCE(S={lo:hi}, T={start:end})` with 1-based
    /// inclusive state range over a domain of `num_cells` states.
    ///
    /// # Errors
    /// Region-range errors are mapped onto [`EventError::Parse`]-free
    /// construction errors; window errors as in [`Presence::new`].
    pub fn from_ranges(
        num_cells: usize,
        state_lo: usize,
        state_hi: usize,
        start: usize,
        end: usize,
    ) -> Result<Self> {
        let region = Region::from_one_based_range(num_cells, state_lo, state_hi).map_err(|_| {
            EventError::InvalidWindow {
                start: state_lo,
                end: state_hi,
            }
        })?;
        Presence::new(region, start, end)
    }

    /// The protected region `S`.
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// First timestamp of the window (1-based, inclusive).
    pub fn start(&self) -> usize {
        self.start
    }

    /// Last timestamp of the window (1-based, inclusive).
    pub fn end(&self) -> usize {
        self.end
    }

    /// Number of timestamps in the window (the paper's "event length").
    pub fn window_len(&self) -> usize {
        self.end - self.start + 1
    }

    /// State-domain size `m`.
    pub fn num_cells(&self) -> usize {
        self.region.num_cells()
    }

    /// Ground truth against a trajectory: `true` iff the trajectory enters
    /// `S` during `[start, end]`.
    ///
    /// # Errors
    /// [`EventError::TrajectoryTooShort`] if the trajectory ends before
    /// `end`.
    pub fn eval(&self, traj: &[CellId]) -> Result<bool> {
        if traj.len() < self.end {
            return Err(EventError::TrajectoryTooShort {
                required: self.end,
                available: traj.len(),
            });
        }
        Ok((self.start..=self.end).any(|t| self.region.contains(traj[t - 1])))
    }

    /// Expands to the canonical Boolean expression of Table II:
    /// `∨_{t ∈ T} ∨_{s ∈ S} (u_t = s)`.
    pub fn to_expr(&self) -> EventExpr {
        let times: Vec<usize> = (self.start..=self.end).collect();
        let cells: Vec<CellId> = self.region.iter().collect();
        EventExpr::fig1f(&times, &cells)
    }
}

impl std::fmt::Display for Presence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PRESENCE(S={}, T={{{}:{}}})",
            self.region, self.start, self.end
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(ids: &[usize]) -> Vec<CellId> {
        ids.iter().map(|&i| CellId(i)).collect()
    }

    fn region(num_cells: usize, ids: &[usize]) -> Region {
        Region::from_cells(num_cells, ids.iter().map(|&i| CellId(i))).unwrap()
    }

    #[test]
    fn validation_rejects_degenerate_inputs() {
        assert!(matches!(
            Presence::new(region(3, &[0]), 0, 2),
            Err(EventError::InvalidWindow { .. })
        ));
        assert!(matches!(
            Presence::new(region(3, &[0]), 3, 2),
            Err(EventError::InvalidWindow { .. })
        ));
        assert!(matches!(
            Presence::new(Region::empty(3), 1, 2),
            Err(EventError::EmptyRegion)
        ));
        assert!(matches!(
            Presence::new(Region::full(3), 1, 2),
            Err(EventError::FullRegion)
        ));
    }

    #[test]
    fn example_ii1_ground_truth() {
        // Example II.1: S = {s1, s2}, T = {3, 4} over S = {s1,s2,s3}.
        let p = Presence::new(region(3, &[0, 1]), 3, 4).unwrap();
        assert!(p.eval(&traj(&[2, 2, 0, 2, 2, 2])).unwrap());
        assert!(p.eval(&traj(&[2, 2, 2, 1, 2, 2])).unwrap());
        assert!(!p.eval(&traj(&[0, 1, 2, 2, 0, 1])).unwrap());
    }

    #[test]
    fn eval_requires_full_window() {
        let p = Presence::new(region(3, &[0]), 3, 4).unwrap();
        assert!(matches!(
            p.eval(&traj(&[0, 0, 0])),
            Err(EventError::TrajectoryTooShort {
                required: 4,
                available: 3
            })
        ));
    }

    #[test]
    fn expr_expansion_agrees_with_direct_eval() {
        let p = Presence::new(region(4, &[1, 2]), 2, 3).unwrap();
        let e = p.to_expr();
        // Exhaustively compare over all 4^3 trajectories of length 3.
        for a in 0..4 {
            for b in 0..4 {
                for c in 0..4 {
                    let t = traj(&[a, b, c]);
                    assert_eq!(p.eval(&t).unwrap(), e.eval(&t).unwrap(), "traj {t:?}");
                }
            }
        }
    }

    #[test]
    fn from_ranges_matches_paper_notation() {
        let p = Presence::from_ranges(400, 1, 10, 4, 8).unwrap();
        assert_eq!(p.region().len(), 10);
        assert_eq!(p.start(), 4);
        assert_eq!(p.end(), 8);
        assert_eq!(p.window_len(), 5);
        assert!(p.region().contains(CellId(9)));
        assert!(!p.region().contains(CellId(10)));
    }

    #[test]
    fn single_timestamp_single_cell_degenerates_to_one_predicate() {
        // Table II row "single location": PRESENCE with |S| = |T| = 1.
        let p = Presence::new(region(3, &[1]), 2, 2).unwrap();
        let e = p.to_expr();
        assert_eq!(e.predicates().len(), 1);
        assert!(p.eval(&traj(&[0, 1, 0])).unwrap());
        assert!(!p.eval(&traj(&[1, 0, 1])).unwrap());
    }

    #[test]
    fn display_round_trips_notation() {
        let p = Presence::new(region(3, &[0, 1]), 3, 4).unwrap();
        assert_eq!(p.to_string(), "PRESENCE(S={s1,s2}, T={3:4})");
    }
}
