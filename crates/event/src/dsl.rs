//! Parser for the paper's event notation.
//!
//! The experiments section writes events as `PRESENCE(S={1:10}, T={4:8})`:
//! region `S` as 1-based inclusive state ranges, window `T` as a 1-based
//! inclusive timestamp range. This module parses exactly that notation
//! (plus the natural PATTERN extension with one region per timestamp) so
//! experiment configurations and CLI arguments can state events verbatim
//! from the paper:
//!
//! ```
//! use priste_event::dsl::parse_event;
//!
//! let ev = parse_event("PRESENCE(S={1:10}, T={4:8})", 400).unwrap();
//! assert_eq!(ev.start(), 4);
//! assert_eq!(ev.width(), 10);
//!
//! let pat = parse_event("PATTERN(S=[{1:2},{2:3}], T={2:3})", 9).unwrap();
//! assert_eq!(pat.end(), 3);
//! ```
//!
//! Grammar (whitespace insensitive between tokens):
//!
//! ```text
//! event    := "PRESENCE" "(" "S" "=" region "," "T" "=" window ")"
//!           | "PATTERN"  "(" "S" "=" "[" region { "," region } "]" "," "T" "=" window ")"
//! region   := "{" span { "," span } "}"
//! span     := INT [ ":" INT ]          // 1-based inclusive state ids
//! window   := "{" INT [ ":" INT ] "}"  // 1-based inclusive timestamps
//! ```

use crate::{EventError, Pattern, Presence, Result, StEvent};
use priste_geo::{CellId, Region};

/// Parses an event in paper notation over a domain of `num_cells` states.
///
/// # Errors
/// [`EventError::Parse`] with a byte position for syntax errors; the
/// constructors' validation errors (empty region, bad window, …) for
/// semantically degenerate events.
pub fn parse_event(input: &str, num_cells: usize) -> Result<StEvent> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        num_cells,
    };
    let ev = p.event()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing input after event"));
    }
    Ok(ev)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    num_cells: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> EventError {
        EventError::Parse {
            position: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn expect(&mut self, token: &str) -> Result<()> {
        self.skip_ws();
        let bytes = token.as_bytes();
        if self.input.len() - self.pos < bytes.len()
            || !self.input[self.pos..self.pos + bytes.len()].eq_ignore_ascii_case(bytes)
        {
            return Err(self.err(format!("expected '{token}'")));
        }
        self.pos += bytes.len();
        Ok(())
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let bytes = kw.as_bytes();
        if self.input.len() - self.pos >= bytes.len()
            && self.input[self.pos..self.pos + bytes.len()].eq_ignore_ascii_case(bytes)
        {
            self.pos += bytes.len();
            true
        } else {
            false
        }
    }

    fn integer(&mut self) -> Result<usize> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected integer"));
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .expect("digits are valid UTF-8")
            .parse()
            .map_err(|_| self.err("integer out of range"))
    }

    /// `span := INT [":" INT]` — 1-based inclusive.
    fn span(&mut self) -> Result<(usize, usize)> {
        let lo = self.integer()?;
        self.skip_ws();
        if self.peek() == Some(b':') {
            self.pos += 1;
            let hi = self.integer()?;
            Ok((lo, hi))
        } else {
            Ok((lo, lo))
        }
    }

    /// `region := "{" span {"," span} "}"`.
    fn region(&mut self) -> Result<Region> {
        self.expect("{")?;
        let mut region = Region::empty(self.num_cells);
        loop {
            let (lo, hi) = self.span()?;
            if lo == 0 || lo > hi {
                return Err(self.err(format!("invalid state span {lo}:{hi}")));
            }
            if hi > self.num_cells {
                return Err(self.err(format!(
                    "state s{hi} exceeds domain of {} cells",
                    self.num_cells
                )));
            }
            for s in lo..=hi {
                region
                    .insert(CellId::from_one_based(s))
                    .expect("span bounds checked above");
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(region);
                }
                _ => return Err(self.err("expected ',' or '}' in region")),
            }
        }
    }

    /// `window := "{" INT [":" INT] "}"`.
    fn window(&mut self) -> Result<(usize, usize)> {
        self.expect("{")?;
        let (start, end) = self.span()?;
        self.expect("}")?;
        Ok((start, end))
    }

    fn event(&mut self) -> Result<StEvent> {
        if self.try_keyword("PRESENCE") {
            self.expect("(")?;
            self.expect("S")?;
            self.expect("=")?;
            let region = self.region()?;
            self.expect(",")?;
            self.expect("T")?;
            self.expect("=")?;
            let (start, end) = self.window()?;
            self.expect(")")?;
            Ok(Presence::new(region, start, end)?.into())
        } else if self.try_keyword("PATTERN") {
            self.expect("(")?;
            self.expect("S")?;
            self.expect("=")?;
            self.expect("[")?;
            let mut regions = vec![self.region()?];
            loop {
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                        regions.push(self.region()?);
                    }
                    Some(b']') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.err("expected ',' or ']' in region list")),
                }
            }
            self.expect(",")?;
            self.expect("T")?;
            self.expect("=")?;
            let (start, end) = self.window()?;
            self.expect(")")?;
            if end + 1 != start + regions.len() {
                return Err(self.err(format!(
                    "PATTERN has {} regions but window {{{start}:{end}}} spans {} timestamps",
                    regions.len(),
                    end.saturating_sub(start) + 1
                )));
            }
            Ok(Pattern::new(regions, start)?.into())
        } else {
            Err(self.err("expected 'PRESENCE' or 'PATTERN'"))
        }
    }
}

/// Renders an event back to the notation accepted by [`parse_event`].
///
/// [`StEvent`]'s `Display` is human-oriented (`{s1,s2}` cell names); this
/// function emits the machine round-trippable span form.
pub fn format_event(event: &StEvent) -> String {
    match event {
        StEvent::Presence(p) => format!(
            "PRESENCE(S={}, T={{{}:{}}})",
            format_region(p.region()),
            p.start(),
            p.end()
        ),
        StEvent::Pattern(p) => {
            let regions: Vec<String> = p.regions().iter().map(format_region).collect();
            format!(
                "PATTERN(S=[{}], T={{{}:{}}})",
                regions.join(","),
                p.start(),
                p.end()
            )
        }
    }
}

/// Renders a region as minimal 1-based spans, e.g. `{1:3,7}`.
fn format_region(region: &Region) -> String {
    let cells: Vec<usize> = region.iter().map(|c| c.one_based()).collect();
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for c in cells {
        match spans.last_mut() {
            Some((_, hi)) if *hi + 1 == c => *hi = c,
            _ => spans.push((c, c)),
        }
    }
    let parts: Vec<String> = spans
        .iter()
        .map(|&(lo, hi)| {
            if lo == hi {
                format!("{lo}")
            } else {
                format!("{lo}:{hi}")
            }
        })
        .collect();
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_presence() {
        let ev = parse_event("PRESENCE(S={1:10}, T={4:8})", 400).unwrap();
        match &ev {
            StEvent::Presence(p) => {
                assert_eq!(p.region().len(), 10);
                assert!(p.region().contains(CellId(0)));
                assert!(p.region().contains(CellId(9)));
                assert_eq!((p.start(), p.end()), (4, 8));
            }
            _ => panic!("expected PRESENCE"),
        }
    }

    #[test]
    fn parses_pattern_with_multiple_regions() {
        let ev = parse_event("PATTERN(S=[{1:2},{2:3}], T={2:3})", 9).unwrap();
        match &ev {
            StEvent::Pattern(p) => {
                assert_eq!(p.regions().len(), 2);
                assert!(p.regions()[0].contains(CellId(0)));
                assert!(p.regions()[1].contains(CellId(2)));
                assert_eq!((p.start(), p.end()), (2, 3));
            }
            _ => panic!("expected PATTERN"),
        }
    }

    #[test]
    fn region_lists_and_singletons() {
        let ev = parse_event("PRESENCE(S={1,3,5:6}, T={2})", 10).unwrap();
        match &ev {
            StEvent::Presence(p) => {
                let cells: Vec<usize> = p.region().iter().map(|c| c.one_based()).collect();
                assert_eq!(cells, vec![1, 3, 5, 6]);
                assert_eq!((p.start(), p.end()), (2, 2));
            }
            _ => panic!("expected PRESENCE"),
        }
    }

    #[test]
    fn whitespace_and_case_are_tolerated() {
        let ev = parse_event("  presence ( s = { 1 : 2 } , t = { 1 : 1 } )  ", 5).unwrap();
        assert_eq!(ev.width(), 2);
    }

    #[test]
    fn syntax_errors_carry_positions() {
        let e = parse_event("PRESENCE(S=1:10, T={4:8})", 400).unwrap_err();
        assert!(matches!(e, EventError::Parse { .. }));
        let e = parse_event("NOPE(S={1}, T={1})", 4).unwrap_err();
        assert!(matches!(e, EventError::Parse { position: 0, .. }));
        let e = parse_event("PRESENCE(S={1}, T={1}) extra", 4).unwrap_err();
        assert!(matches!(e, EventError::Parse { .. }));
    }

    #[test]
    fn semantic_errors_propagate_from_constructors() {
        // Window inverted → InvalidWindow from Presence::new.
        let e = parse_event("PRESENCE(S={1}, T={8:4})", 4).unwrap_err();
        assert!(matches!(e, EventError::InvalidWindow { .. }));
        // Full region → FullRegion.
        let e = parse_event("PRESENCE(S={1:4}, T={1:2})", 4).unwrap_err();
        assert!(matches!(e, EventError::FullRegion));
    }

    #[test]
    fn state_beyond_domain_is_a_parse_error() {
        let e = parse_event("PRESENCE(S={1:10}, T={1:2})", 5).unwrap_err();
        assert!(matches!(e, EventError::Parse { .. }));
    }

    #[test]
    fn pattern_region_count_must_match_window() {
        let e = parse_event("PATTERN(S=[{1},{2}], T={1:3})", 5).unwrap_err();
        assert!(matches!(e, EventError::Parse { .. }));
    }

    #[test]
    fn round_trip_through_format() {
        let inputs = [
            ("PRESENCE(S={1:10}, T={4:8})", 400),
            ("PATTERN(S=[{1:2},{2:3},{5}], T={2:4})", 9),
            ("PRESENCE(S={1,3,5:6}, T={2:2})", 10),
        ];
        for (s, m) in inputs {
            let ev = parse_event(s, m).unwrap();
            let rendered = format_event(&ev);
            let re = parse_event(&rendered, m).unwrap();
            assert_eq!(ev, re, "round trip failed for {s} → {rendered}");
        }
    }

    #[test]
    fn format_region_merges_spans() {
        let r = Region::from_cells(10, [0, 1, 2, 6].map(CellId)).unwrap();
        assert_eq!(format_region(&r), "{1:3,7}");
    }
}
