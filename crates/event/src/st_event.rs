use crate::{EventExpr, Pattern, Presence, Result};
use priste_geo::CellId;

/// The closed union of structured spatiotemporal events understood by the
/// two-possible-world quantification engine (paper §II.B: "we focus on the
/// two representative events … PRESENCE and PATTERN, which are the two most
/// complicated events in examples of Fig. 1").
///
/// Arbitrary Boolean combinations remain expressible through
/// [`EventExpr`]; they are evaluated by the naive oracle but have no
/// linear-time lifted-matrix encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum StEvent {
    /// A `PRESENCE(S, T)` event.
    Presence(Presence),
    /// A `PATTERN(S, T)` event.
    Pattern(Pattern),
}

impl StEvent {
    /// First timestamp of the event window (1-based).
    pub fn start(&self) -> usize {
        match self {
            StEvent::Presence(p) => p.start(),
            StEvent::Pattern(p) => p.start(),
        }
    }

    /// Last timestamp of the event window (1-based).
    pub fn end(&self) -> usize {
        match self {
            StEvent::Presence(p) => p.end(),
            StEvent::Pattern(p) => p.end(),
        }
    }

    /// Window length `|T|` (the paper's "event length").
    pub fn window_len(&self) -> usize {
        self.end() - self.start() + 1
    }

    /// State-domain size `m`.
    pub fn num_cells(&self) -> usize {
        match self {
            StEvent::Presence(p) => p.num_cells(),
            StEvent::Pattern(p) => p.num_cells(),
        }
    }

    /// Largest region width `|S|` across the window (the paper's "event
    /// width" axis in Fig. 14).
    pub fn width(&self) -> usize {
        match self {
            StEvent::Presence(p) => p.region().len(),
            StEvent::Pattern(p) => p.regions().iter().map(|r| r.len()).max().unwrap_or(0),
        }
    }

    /// Ground-truth value against a trajectory.
    ///
    /// # Errors
    /// [`crate::EventError::TrajectoryTooShort`] if the trajectory ends
    /// before the event window.
    pub fn eval(&self, traj: &[CellId]) -> Result<bool> {
        match self {
            StEvent::Presence(p) => p.eval(traj),
            StEvent::Pattern(p) => p.eval(traj),
        }
    }

    /// Expands to the canonical Boolean expression (Table II).
    pub fn to_expr(&self) -> EventExpr {
        match self {
            StEvent::Presence(p) => p.to_expr(),
            StEvent::Pattern(p) => p.to_expr(),
        }
    }
}

impl From<Presence> for StEvent {
    fn from(p: Presence) -> Self {
        StEvent::Presence(p)
    }
}

impl From<Pattern> for StEvent {
    fn from(p: Pattern) -> Self {
        StEvent::Pattern(p)
    }
}

impl std::fmt::Display for StEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StEvent::Presence(p) => write!(f, "{p}"),
            StEvent::Pattern(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priste_geo::Region;

    fn region(num_cells: usize, ids: &[usize]) -> Region {
        Region::from_cells(num_cells, ids.iter().map(|&i| CellId(i))).unwrap()
    }

    #[test]
    fn accessors_delegate() {
        let presence: StEvent = Presence::new(region(5, &[0, 1, 2]), 3, 7).unwrap().into();
        assert_eq!(presence.start(), 3);
        assert_eq!(presence.end(), 7);
        assert_eq!(presence.window_len(), 5);
        assert_eq!(presence.width(), 3);
        assert_eq!(presence.num_cells(), 5);

        let pattern: StEvent = Pattern::new(vec![region(5, &[0]), region(5, &[0, 1])], 2)
            .unwrap()
            .into();
        assert_eq!(pattern.start(), 2);
        assert_eq!(pattern.end(), 3);
        assert_eq!(pattern.width(), 2);
    }

    #[test]
    fn eval_and_expr_agree_across_variants() {
        let events: Vec<StEvent> = vec![
            Presence::new(region(3, &[0, 1]), 2, 3).unwrap().into(),
            Pattern::new(vec![region(3, &[0, 1]), region(3, &[1, 2])], 2)
                .unwrap()
                .into(),
        ];
        for ev in &events {
            let expr = ev.to_expr();
            for a in 0..3 {
                for b in 0..3 {
                    for c in 0..3 {
                        let t = vec![CellId(a), CellId(b), CellId(c)];
                        assert_eq!(ev.eval(&t).unwrap(), expr.eval(&t).unwrap());
                    }
                }
            }
        }
    }

    #[test]
    fn display_delegates() {
        let e: StEvent = Presence::new(region(3, &[0]), 1, 2).unwrap().into();
        assert!(e.to_string().starts_with("PRESENCE"));
    }
}
