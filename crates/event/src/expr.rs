use crate::{EventError, Result};
use priste_geo::CellId;

/// A `(location, time)` predicate `u_t = s_i` — the atom of every
/// spatiotemporal event (paper §II.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// 1-based timestamp `t`.
    pub time: usize,
    /// The state `s_i`.
    pub cell: CellId,
}

impl Predicate {
    /// Creates a predicate; `time` is 1-based as in the paper.
    ///
    /// # Panics
    /// Panics if `time == 0` (timestamp 0 does not exist in the paper's
    /// indexing and would silently corrupt window arithmetic).
    pub fn new(time: usize, cell: CellId) -> Self {
        assert!(time >= 1, "timestamps are 1-based; got 0");
        Predicate { time, cell }
    }

    /// Ground-truth value against a trajectory (`traj[i]` = state at
    /// timestamp `i + 1`).
    ///
    /// # Errors
    /// [`EventError::TrajectoryTooShort`] if the trajectory does not reach
    /// this predicate's timestamp.
    pub fn eval(&self, traj: &[CellId]) -> Result<bool> {
        if self.time > traj.len() {
            return Err(EventError::TrajectoryTooShort {
                required: self.time,
                available: traj.len(),
            });
        }
        Ok(traj[self.time - 1] == self.cell)
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(u{} = {})", self.time, self.cell)
    }
}

/// Boolean expression over predicates — Definition II.1's `EVENT`.
///
/// The general AST is the *specification* language; the efficient
/// two-possible-world quantification operates on the structured
/// [`StEvent`](crate::StEvent) forms, while this AST drives ground-truth
/// evaluation and the naive exponential oracle.
#[derive(Debug, Clone, PartialEq)]
pub enum EventExpr {
    /// Atomic predicate `u_t = s_i`.
    Pred(Predicate),
    /// Conjunction of sub-expressions (`∧`). Empty conjunction is `true`.
    And(Vec<EventExpr>),
    /// Disjunction of sub-expressions (`∨`). Empty disjunction is `false`.
    Or(Vec<EventExpr>),
    /// Negation (`¬`).
    Not(Box<EventExpr>),
}

impl EventExpr {
    /// Atomic predicate constructor.
    pub fn pred(time: usize, cell: CellId) -> Self {
        EventExpr::Pred(Predicate::new(time, cell))
    }

    /// Ground-truth evaluation against a trajectory.
    ///
    /// # Errors
    /// [`EventError::TrajectoryTooShort`] if any referenced timestamp
    /// exceeds the trajectory.
    pub fn eval(&self, traj: &[CellId]) -> Result<bool> {
        match self {
            EventExpr::Pred(p) => p.eval(traj),
            EventExpr::And(subs) => {
                // No short-circuit: length errors must surface even when an
                // earlier conjunct is already false.
                let mut all = true;
                for s in subs {
                    all &= s.eval(traj)?;
                }
                Ok(all)
            }
            EventExpr::Or(subs) => {
                let mut any = false;
                for s in subs {
                    any |= s.eval(traj)?;
                }
                Ok(any)
            }
            EventExpr::Not(inner) => Ok(!inner.eval(traj)?),
        }
    }

    /// All predicates appearing in the expression, in syntactic order.
    pub fn predicates(&self) -> Vec<Predicate> {
        let mut out = Vec::new();
        self.collect_predicates(&mut out);
        out
    }

    fn collect_predicates(&self, out: &mut Vec<Predicate>) {
        match self {
            EventExpr::Pred(p) => out.push(*p),
            EventExpr::And(subs) | EventExpr::Or(subs) => {
                for s in subs {
                    s.collect_predicates(out);
                }
            }
            EventExpr::Not(inner) => inner.collect_predicates(out),
        }
    }

    /// The time span `(min, max)` of referenced timestamps, or `None` for a
    /// predicate-free (constant) expression.
    pub fn time_span(&self) -> Option<(usize, usize)> {
        let preds = self.predicates();
        let min = preds.iter().map(|p| p.time).min()?;
        let max = preds.iter().map(|p| p.time).max()?;
        Some((min, max))
    }

    /// Fig. 1(a): `(u_1 = s_a) ∧ (u_1 = s_b)` — the degenerate always-false
    /// event when `a ≠ b` (one cannot be in two places at once).
    pub fn fig1a(t: usize, a: CellId, b: CellId) -> Self {
        EventExpr::And(vec![Self::pred(t, a), Self::pred(t, b)])
    }

    /// Fig. 1(b): a sensitive *area* at one time, `(u_t = s_a) ∨ (u_t = s_b)`.
    pub fn fig1b(t: usize, cells: &[CellId]) -> Self {
        EventExpr::Or(cells.iter().map(|&c| Self::pred(t, c)).collect())
    }

    /// Fig. 1(c): a *trajectory* `(u_1 = c_1) ∧ (u_2 = c_2) ∧ …`.
    pub fn fig1c(start: usize, cells: &[CellId]) -> Self {
        EventExpr::And(
            cells
                .iter()
                .enumerate()
                .map(|(i, &c)| Self::pred(start + i, c))
                .collect(),
        )
    }

    /// Fig. 1(d): a visit to one cell at *any* of the given times.
    pub fn fig1d(times: &[usize], cell: CellId) -> Self {
        EventExpr::Or(times.iter().map(|&t| Self::pred(t, cell)).collect())
    }

    /// Fig. 1(e): trajectory *pattern* — AND over times of OR over cells.
    pub fn fig1e(start: usize, regions: &[Vec<CellId>]) -> Self {
        EventExpr::And(
            regions
                .iter()
                .enumerate()
                .map(|(i, cells)| Self::fig1b(start + i, cells))
                .collect(),
        )
    }

    /// Fig. 1(f): presence in an area at any of the times — OR over times of
    /// OR over cells.
    pub fn fig1f(times: &[usize], cells: &[CellId]) -> Self {
        EventExpr::Or(times.iter().map(|&t| Self::fig1b(t, cells)).collect())
    }
}

impl std::fmt::Display for EventExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventExpr::Pred(p) => write!(f, "{p}"),
            EventExpr::And(subs) => write_joined(f, subs, " ∧ "),
            EventExpr::Or(subs) => write_joined(f, subs, " ∨ "),
            EventExpr::Not(inner) => write!(f, "¬{inner}"),
        }
    }
}

fn write_joined(
    f: &mut std::fmt::Formatter<'_>,
    subs: &[EventExpr],
    sep: &str,
) -> std::fmt::Result {
    write!(f, "(")?;
    for (i, s) in subs.iter().enumerate() {
        if i > 0 {
            write!(f, "{sep}")?;
        }
        write!(f, "{s}")?;
    }
    write!(f, ")")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(ids: &[usize]) -> Vec<CellId> {
        ids.iter().map(|&i| CellId(i)).collect()
    }

    #[test]
    fn predicate_eval_is_one_based() {
        let p = Predicate::new(2, CellId(5));
        assert!(p.eval(&traj(&[0, 5, 1])).unwrap());
        assert!(!p.eval(&traj(&[5, 0, 1])).unwrap());
        assert!(matches!(
            p.eval(&traj(&[0])),
            Err(EventError::TrajectoryTooShort {
                required: 2,
                available: 1
            })
        ));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn time_zero_predicate_panics() {
        let _ = Predicate::new(0, CellId(0));
    }

    #[test]
    fn fig1a_is_always_false_for_distinct_cells() {
        let e = EventExpr::fig1a(1, CellId(0), CellId(1));
        for t in [traj(&[0, 2]), traj(&[1, 2]), traj(&[2, 2])] {
            assert!(!e.eval(&t).unwrap());
        }
    }

    #[test]
    fn fig1b_matches_region_membership() {
        let e = EventExpr::fig1b(1, &[CellId(0), CellId(1)]);
        assert!(e.eval(&traj(&[0])).unwrap());
        assert!(e.eval(&traj(&[1])).unwrap());
        assert!(!e.eval(&traj(&[2])).unwrap());
    }

    #[test]
    fn fig1c_is_exact_trajectory_match() {
        let e = EventExpr::fig1c(1, &[CellId(0), CellId(0)]);
        assert!(e.eval(&traj(&[0, 0, 3])).unwrap());
        assert!(!e.eval(&traj(&[0, 1, 3])).unwrap());
    }

    #[test]
    fn fig1d_any_time_visit() {
        let e = EventExpr::fig1d(&[1, 2], CellId(0));
        assert!(e.eval(&traj(&[0, 9])).unwrap());
        assert!(e.eval(&traj(&[9, 0])).unwrap());
        assert!(!e.eval(&traj(&[9, 9])).unwrap());
    }

    #[test]
    fn fig1e_matches_paper_example_ii2() {
        // PATTERN of Example II.2: region {s1,s2} at t=2 and {s2,s3} at t=3.
        let e = EventExpr::fig1e(2, &[vec![CellId(0), CellId(1)], vec![CellId(1), CellId(2)]]);
        assert!(e.eval(&traj(&[9, 0, 1, 9])).unwrap());
        assert!(e.eval(&traj(&[9, 1, 2, 9])).unwrap());
        assert!(!e.eval(&traj(&[9, 2, 1, 9])).unwrap()); // misses region at t=2
        assert!(!e.eval(&traj(&[9, 0, 0, 9])).unwrap()); // misses region at t=3
    }

    #[test]
    fn fig1f_matches_paper_example_ii1() {
        // PRESENCE of Example II.1: region {s1,s2} during t ∈ {3,4}.
        let e = EventExpr::fig1f(&[3, 4], &[CellId(0), CellId(1)]);
        assert!(e.eval(&traj(&[9, 9, 0, 9, 9])).unwrap());
        assert!(e.eval(&traj(&[9, 9, 9, 1, 9])).unwrap());
        assert!(!e.eval(&traj(&[0, 1, 9, 9, 9])).unwrap()); // outside window
    }

    #[test]
    fn not_negates() {
        let e = EventExpr::Not(Box::new(EventExpr::pred(1, CellId(0))));
        assert!(!e.eval(&traj(&[0])).unwrap());
        assert!(e.eval(&traj(&[1])).unwrap());
    }

    #[test]
    fn empty_connectives_are_boolean_identities() {
        assert!(EventExpr::And(vec![]).eval(&traj(&[0])).unwrap());
        assert!(!EventExpr::Or(vec![]).eval(&traj(&[0])).unwrap());
    }

    #[test]
    fn eval_reports_short_trajectory_even_after_false_conjunct() {
        // First conjunct false at t=1; second references t=5 beyond traj.
        let e = EventExpr::And(vec![
            EventExpr::pred(1, CellId(1)),
            EventExpr::pred(5, CellId(0)),
        ]);
        assert!(matches!(
            e.eval(&traj(&[0, 0])),
            Err(EventError::TrajectoryTooShort { .. })
        ));
    }

    #[test]
    fn predicates_and_time_span() {
        let e = EventExpr::fig1e(2, &[vec![CellId(0)], vec![CellId(1), CellId(2)]]);
        let preds = e.predicates();
        assert_eq!(preds.len(), 3);
        assert_eq!(e.time_span(), Some((2, 3)));
        assert_eq!(EventExpr::And(vec![]).time_span(), None);
    }

    #[test]
    fn display_uses_paper_notation() {
        let e = EventExpr::fig1b(3, &[CellId(0), CellId(1)]);
        assert_eq!(e.to_string(), "((u3 = s1) ∨ (u3 = s2))");
        let n = EventExpr::Not(Box::new(EventExpr::pred(1, CellId(0))));
        assert_eq!(n.to_string(), "¬(u1 = s1)");
    }
}
