//! Spatiotemporal events — the paper's privacy goal (Definition II.1).
//!
//! A *spatiotemporal event* is a Boolean expression over `(location, time)`
//! predicates `u_t = s_i` combined with AND/OR/NOT. This crate provides:
//!
//! * [`EventExpr`] — the general Boolean AST, with ground-truth evaluation
//!   against a trajectory (used by the naive oracle and by tests) and the
//!   six canonical shapes of the paper's Fig. 1 as constructors.
//! * [`Presence`] — `PRESENCE(S, T)` (Definition II.2): the user appears in
//!   region `S` at some timestamp in window `T`. Generalizes single
//!   locations and sensitive areas.
//! * [`Pattern`] — `PATTERN(S, T)` (Definition II.3): the user appears in
//!   region `s_t` at *every* timestamp `t` of the window. Generalizes
//!   trajectories.
//! * [`StEvent`] — the closed union of the two structured events understood
//!   by the two-possible-world quantification engine.
//! * [`dsl`] — a parser/printer for the paper's experiment notation, e.g.
//!   `PRESENCE(S={1:10}, T={4:8})`.
//!
//! Timestamps are 1-based throughout, matching the paper (`t ∈ {1, …, T}`);
//! a trajectory slice `traj[i]` holds the state at timestamp `i + 1`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dsl;
mod error;
mod expr;
mod pattern;
mod presence;
mod st_event;

pub use error::EventError;
pub use expr::{EventExpr, Predicate};
pub use pattern::Pattern;
pub use presence::Presence;
pub use st_event::StEvent;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, EventError>;
