use std::fmt;

/// Errors produced by event construction, validation and parsing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EventError {
    /// A time window was empty or inverted (`start > end` or `start == 0`).
    InvalidWindow {
        /// 1-based start timestamp.
        start: usize,
        /// 1-based end timestamp.
        end: usize,
    },
    /// An event referenced an empty region (its truth value would be
    /// constant `false`, which breaks the ε-indistinguishability ratio).
    EmptyRegion,
    /// A region covered the whole map (truth value constant `true` for
    /// PRESENCE — again degenerate for the privacy ratio).
    FullRegion,
    /// Regions inside one event disagree on the state-domain size.
    DomainMismatch {
        /// Domain size seen first.
        expected: usize,
        /// Conflicting domain size.
        actual: usize,
    },
    /// A PATTERN was built with no regions.
    NoRegions,
    /// A trajectory was too short to evaluate the event's ground truth.
    TrajectoryTooShort {
        /// Timestamps required (the event's `end`).
        required: usize,
        /// Timestamps available.
        available: usize,
    },
    /// The event DSL failed to parse.
    Parse {
        /// Byte offset of the failure in the input.
        position: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for EventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventError::InvalidWindow { start, end } => {
                write!(
                    f,
                    "invalid time window T={{{start}:{end}}} (need 1 <= start <= end)"
                )
            }
            EventError::EmptyRegion => {
                write!(f, "event region is empty (ground truth constant false)")
            }
            EventError::FullRegion => {
                write!(
                    f,
                    "event region covers the whole map (ground truth constant true)"
                )
            }
            EventError::DomainMismatch { expected, actual } => {
                write!(
                    f,
                    "event regions disagree on domain size: {expected} vs {actual}"
                )
            }
            EventError::NoRegions => write!(f, "PATTERN requires at least one region"),
            EventError::TrajectoryTooShort {
                required,
                available,
            } => {
                write!(
                    f,
                    "trajectory has {available} timestamps but event needs {required}"
                )
            }
            EventError::Parse { position, message } => {
                write!(f, "event parse error at byte {position}: {message}")
            }
        }
    }
}

impl std::error::Error for EventError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = EventError::InvalidWindow { start: 5, end: 3 };
        assert!(e.to_string().contains("5:3"));
        let p = EventError::Parse {
            position: 7,
            message: "expected '{'".into(),
        };
        assert!(p.to_string().contains("byte 7"));
    }
}
