//! Stationary-distribution analysis via power iteration.
//!
//! Used by experiments to seed realistic initial distributions `π` and by
//! diagnostics that report how "significant" a mobility pattern is (the
//! Fig. 13 axis): chains with strong patterns mix slowly and have
//! concentrated stationary mass.

use crate::{MarkovError, MarkovModel, Result};
use priste_linalg::{LinalgError, Vector};

/// Total-variation distance `½ · Σ|pᵢ − qᵢ|` between two distributions.
///
/// # Panics
/// Panics on length mismatch (diagnostic helper).
pub fn total_variation(p: &Vector, q: &Vector) -> f64 {
    assert_eq!(p.len(), q.len(), "total_variation length mismatch");
    0.5 * p
        .as_slice()
        .iter()
        .zip(q.as_slice())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
}

/// Computes the stationary distribution of `model` by power iteration from
/// the uniform distribution, stopping when successive iterates are within
/// `tol` in total variation.
///
/// For periodic chains raw power iteration oscillates; we iterate the lazy
/// chain `(M + I)/2`, which has the same stationary distribution and is
/// aperiodic by construction.
///
/// # Errors
/// [`MarkovError::InvalidTransition`] wrapping
/// [`LinalgError::NoConvergence`] if `max_iters` is exhausted (reducible
/// chains may genuinely lack a unique stationary distribution).
pub fn stationary_distribution(model: &MarkovModel, tol: f64, max_iters: usize) -> Result<Vector> {
    let mut p = Vector::uniform(model.num_states());
    for _ in 0..max_iters {
        let stepped = model.step(&p)?;
        // Lazy-chain update: ½p + ½pM.
        let next = p
            .add(&stepped)
            .map_err(MarkovError::InvalidTransition)?
            .scale(0.5);
        let delta = total_variation(&next, &p);
        p = next;
        if delta < tol {
            // One final normalization guards against drift over many iters.
            let mut out = p;
            out.normalize_mut().map_err(MarkovError::InvalidInitial)?;
            return Ok(out);
        }
    }
    Err(MarkovError::InvalidTransition(LinalgError::NoConvergence {
        op: "stationary_distribution",
        iterations: max_iters,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use priste_linalg::Matrix;

    #[test]
    fn uniform_chain_has_uniform_stationary() {
        let m = Matrix::from_rows(&[vec![0.5, 0.5], vec![0.5, 0.5]]).unwrap();
        let model = MarkovModel::new(m).unwrap();
        let pi = stationary_distribution(&model, 1e-12, 10_000).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn stationary_is_fixed_point() {
        let model = MarkovModel::paper_example();
        let pi = stationary_distribution(&model, 1e-13, 100_000).unwrap();
        let stepped = model.step(&pi).unwrap();
        assert!(total_variation(&pi, &stepped) < 1e-9);
        assert!(pi.validate_distribution().is_ok());
    }

    #[test]
    fn paper_example_concentrates_on_s3() {
        // Row 3 of the Example III.1 matrix is [0, 0.1, 0.9]: s3 is sticky.
        let model = MarkovModel::paper_example();
        let pi = stationary_distribution(&model, 1e-13, 100_000).unwrap();
        assert!(pi[2] > 0.7, "stationary {:?}", pi.as_slice());
    }

    #[test]
    fn periodic_chain_converges_via_lazy_iteration() {
        // Pure 2-cycle: raw power iteration oscillates forever.
        let m = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let model = MarkovModel::new(m).unwrap();
        let pi = stationary_distribution(&model, 1e-12, 10_000).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn total_variation_basics() {
        let p = Vector::from(vec![1.0, 0.0]);
        let q = Vector::from(vec![0.0, 1.0]);
        assert_eq!(total_variation(&p, &q), 1.0);
        assert_eq!(total_variation(&p, &p), 0.0);
    }

    #[test]
    fn iteration_budget_is_respected() {
        let model = MarkovModel::paper_example();
        // Absurdly tight tolerance with a tiny budget must error, not hang.
        let r = stationary_distribution(&model, 0.0, 3);
        assert!(r.is_err());
    }
}
