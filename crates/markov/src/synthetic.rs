//! Synthetic Gaussian-kernel mobility models (paper §V.A).
//!
//! "First, a map with 20∗20 cells is generated. Then, the transition
//! probability from one cell to another is proportional to the
//! two-dimensional Gaussian distribution with scale parameter σ. Here, a
//! smaller σ indicates that the user moves to the adjacent cells in a higher
//! probability, i.e., the transition matrix has a more significant pattern."

use crate::{MarkovModel, Result};
use priste_geo::GridMap;
use priste_linalg::Matrix;

/// Builds the §V.A synthetic chain over `grid`: transition probability from
/// cell `i` to cell `j` proportional to `exp(−d(i,j)² / (2σ²))` with `d` the
/// cell-center Euclidean distance in km.
///
/// Small `σ` concentrates mass on the current and adjacent cells (a strong
/// mobility pattern — Fig. 13 shows these need stricter LPPMs); large `σ`
/// approaches a uniform random walk.
///
/// # Panics
/// Panics if `sigma` is non-positive or non-finite (programmer error in
/// experiment configs).
pub fn gaussian_kernel_chain(grid: &GridMap, sigma: f64) -> Result<MarkovModel> {
    assert!(
        sigma.is_finite() && sigma > 0.0,
        "Gaussian kernel scale must be positive and finite, got {sigma}"
    );
    let m = grid.num_cells();
    let dist = grid.distance_table();
    let inv_two_sigma_sq = 1.0 / (2.0 * sigma * sigma);
    let mut t = Matrix::zeros(m, m);
    for (i, dist_row) in dist.iter().enumerate() {
        let row = t.row_mut(i);
        for (j, v) in row.iter_mut().enumerate() {
            let d = dist_row[j];
            // exp underflows to 0 for d ≫ σ, which is exactly the intended
            // "never jumps across the map" behaviour for small σ.
            *v = (-d * d * inv_two_sigma_sq).exp();
        }
    }
    t.normalize_rows_mut();
    MarkovModel::new(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use priste_geo::CellId;

    #[test]
    fn produces_stochastic_matrix() {
        let grid = GridMap::new(5, 5, 1.0).unwrap();
        for sigma in [0.01, 0.1, 1.0, 10.0] {
            let chain = gaussian_kernel_chain(&grid, sigma).unwrap();
            chain.transition().validate_stochastic().unwrap();
        }
    }

    #[test]
    fn small_sigma_concentrates_on_self() {
        let grid = GridMap::new(5, 5, 1.0).unwrap();
        let chain = gaussian_kernel_chain(&grid, 0.01).unwrap();
        // With σ = 0.01 km and 1 km cells, staying put dominates utterly.
        for i in 0..grid.num_cells() {
            assert!(chain.transition().get(i, i) > 0.999, "cell {i}");
        }
    }

    #[test]
    fn large_sigma_approaches_uniform() {
        let grid = GridMap::new(4, 4, 1.0).unwrap();
        let chain = gaussian_kernel_chain(&grid, 1000.0).unwrap();
        let uniform = 1.0 / 16.0;
        for i in 0..16 {
            for j in 0..16 {
                assert!((chain.transition().get(i, j) - uniform).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn closer_cells_get_more_mass() {
        let grid = GridMap::new(3, 3, 1.0).unwrap();
        let chain = gaussian_kernel_chain(&grid, 1.0).unwrap();
        let center = grid.from_row_col(1, 1).unwrap().index();
        let adjacent = grid.from_row_col(1, 2).unwrap().index();
        let corner = grid.from_row_col(0, 0).unwrap().index();
        let p_adj = chain.transition().get(center, adjacent);
        let p_cor = chain.transition().get(center, corner);
        assert!(p_adj > p_cor, "adjacent {p_adj} vs corner {p_cor}");
    }

    #[test]
    fn kernel_is_symmetric_in_distance() {
        // d(i,j) = d(j,i) and all rows share the same kernel, so before
        // normalization the matrix is symmetric; after normalization rows of
        // symmetric-position cells match by reflection.
        let grid = GridMap::new(3, 3, 1.0).unwrap();
        let chain = gaussian_kernel_chain(&grid, 0.7).unwrap();
        let t = chain.transition();
        // Corners 0 and 8 are mirror images: p(0→1) must equal p(8→7).
        assert!((t.get(0, 1) - t.get(8, 7)).abs() < 1e-12);
        assert!((t.get(0, 4) - t.get(8, 4)).abs() < 1e-12);
    }

    #[test]
    fn monotone_decay_along_a_row_of_cells() {
        let grid = GridMap::new(1, 6, 1.0).unwrap();
        let chain = gaussian_kernel_chain(&grid, 1.5).unwrap();
        let row = chain.transition().row(0);
        for w in row.windows(2) {
            assert!(w[0] >= w[1], "row not monotone: {row:?}");
        }
        let _ = CellId(0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_sigma_panics() {
        let grid = GridMap::new(2, 2, 1.0).unwrap();
        let _ = gaussian_kernel_chain(&grid, 0.0);
    }
}
