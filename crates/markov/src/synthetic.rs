//! Synthetic Gaussian-kernel mobility models (paper §V.A).
//!
//! "First, a map with 20∗20 cells is generated. Then, the transition
//! probability from one cell to another is proportional to the
//! two-dimensional Gaussian distribution with scale parameter σ. Here, a
//! smaller σ indicates that the user moves to the adjacent cells in a higher
//! probability, i.e., the transition matrix has a more significant pattern."

use crate::{MarkovModel, Result};
use priste_geo::GridMap;
use priste_linalg::{Matrix, SparseMatrix};

/// Kernel weights below this value (relative to the self-loop's `exp(0) = 1`)
/// are truncated by [`gaussian_kernel_chain_sparse`]. At `1e-12` the dropped
/// mass per row is below `m · 1e-12`, so the truncated chain matches the
/// dense §V.A generator to ~1e-8 after normalization while holding
/// `O(m · band)` entries instead of `m²`.
pub const SPARSE_KERNEL_TRUNCATION: f64 = 1e-12;

/// Builds the §V.A synthetic chain over `grid`: transition probability from
/// cell `i` to cell `j` proportional to `exp(−d(i,j)² / (2σ²))` with `d` the
/// cell-center Euclidean distance in km.
///
/// Small `σ` concentrates mass on the current and adjacent cells (a strong
/// mobility pattern — Fig. 13 shows these need stricter LPPMs); large `σ`
/// approaches a uniform random walk.
///
/// # Panics
/// Panics if `sigma` is non-positive or non-finite (programmer error in
/// experiment configs).
pub fn gaussian_kernel_chain(grid: &GridMap, sigma: f64) -> Result<MarkovModel> {
    assert!(
        sigma.is_finite() && sigma > 0.0,
        "Gaussian kernel scale must be positive and finite, got {sigma}"
    );
    let m = grid.num_cells();
    let dist = grid.distance_table();
    let inv_two_sigma_sq = 1.0 / (2.0 * sigma * sigma);
    let mut t = Matrix::zeros(m, m);
    for (i, dist_row) in dist.iter().enumerate() {
        let row = t.row_mut(i);
        for (j, v) in row.iter_mut().enumerate() {
            let d = dist_row[j];
            // exp underflows to 0 for d ≫ σ, which is exactly the intended
            // "never jumps across the map" behaviour for small σ.
            *v = (-d * d * inv_two_sigma_sq).exp();
        }
    }
    t.normalize_rows_mut();
    MarkovModel::new(t)
}

/// Banded CSR variant of [`gaussian_kernel_chain`] for large grids.
///
/// Builds the same `exp(−d(i,j)² / (2σ²))` kernel but truncates it at the
/// radius where the weight falls below [`SPARSE_KERNEL_TRUNCATION`], visiting
/// only the `O(band²)` neighbor cells of each row instead of the full
/// `O(m²)` distance table. The result is a sparse-backed [`MarkovModel`]
/// whose per-row support is a `(2R+1)²` patch around the cell (clipped at
/// map edges), with `R ≈ 7.4σ` in cells — per-observation quantification
/// cost then scales with `nnz`, not `m²`.
///
/// Numerics: rows are renormalized over the kept entries, so each entry
/// differs from the dense generator's by at most the truncated tail
/// (`< m · 1e-12` of the row mass). For a byte-exact sparse twin of a dense
/// chain use [`SparseMatrix::from_dense`] with threshold `0.0` instead.
///
/// # Panics
/// Panics if `sigma` is non-positive or non-finite (programmer error in
/// experiment configs).
pub fn gaussian_kernel_chain_sparse(grid: &GridMap, sigma: f64) -> Result<MarkovModel> {
    assert!(
        sigma.is_finite() && sigma > 0.0,
        "Gaussian kernel scale must be positive and finite, got {sigma}"
    );
    let inv_two_sigma_sq = 1.0 / (2.0 * sigma * sigma);
    // exp(−d²/2σ²) ≥ tol ⟺ d ≤ σ·√(2·ln(1/tol)); convert to whole cells.
    let cutoff_km = sigma * (2.0 * (1.0 / SPARSE_KERNEL_TRUNCATION).ln()).sqrt();
    let radius = (cutoff_km / grid.cell_size_km()).ceil() as usize;
    let (rows, cols) = (grid.rows(), grid.cols());
    let cell = grid.cell_size_km();
    let mut entries: Vec<Vec<(usize, f64)>> = Vec::with_capacity(grid.num_cells());
    for r in 0..rows {
        for c in 0..cols {
            let r_lo = r.saturating_sub(radius);
            let r_hi = (r + radius).min(rows - 1);
            let c_lo = c.saturating_sub(radius);
            let c_hi = (c + radius).min(cols - 1);
            let mut row = Vec::with_capacity((r_hi - r_lo + 1) * (c_hi - c_lo + 1));
            for rr in r_lo..=r_hi {
                for cc in c_lo..=c_hi {
                    let dy = (rr as f64 - r as f64) * cell;
                    let dx = (cc as f64 - c as f64) * cell;
                    let w = (-(dx * dx + dy * dy) * inv_two_sigma_sq).exp();
                    if w >= SPARSE_KERNEL_TRUNCATION {
                        row.push((rr * cols + cc, w));
                    }
                }
            }
            entries.push(row);
        }
    }
    let mut t = SparseMatrix::from_row_entries(grid.num_cells(), grid.num_cells(), &entries)
        .expect("patch columns are in-range and row-major ordered");
    t.normalize_rows_mut();
    MarkovModel::new_sparse(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use priste_geo::CellId;

    #[test]
    fn produces_stochastic_matrix() {
        let grid = GridMap::new(5, 5, 1.0).unwrap();
        for sigma in [0.01, 0.1, 1.0, 10.0] {
            let chain = gaussian_kernel_chain(&grid, sigma).unwrap();
            chain.transition().validate_stochastic().unwrap();
        }
    }

    #[test]
    fn small_sigma_concentrates_on_self() {
        let grid = GridMap::new(5, 5, 1.0).unwrap();
        let chain = gaussian_kernel_chain(&grid, 0.01).unwrap();
        // With σ = 0.01 km and 1 km cells, staying put dominates utterly.
        for i in 0..grid.num_cells() {
            assert!(chain.transition().get(i, i) > 0.999, "cell {i}");
        }
    }

    #[test]
    fn large_sigma_approaches_uniform() {
        let grid = GridMap::new(4, 4, 1.0).unwrap();
        let chain = gaussian_kernel_chain(&grid, 1000.0).unwrap();
        let uniform = 1.0 / 16.0;
        for i in 0..16 {
            for j in 0..16 {
                assert!((chain.transition().get(i, j) - uniform).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn closer_cells_get_more_mass() {
        let grid = GridMap::new(3, 3, 1.0).unwrap();
        let chain = gaussian_kernel_chain(&grid, 1.0).unwrap();
        let center = grid.from_row_col(1, 1).unwrap().index();
        let adjacent = grid.from_row_col(1, 2).unwrap().index();
        let corner = grid.from_row_col(0, 0).unwrap().index();
        let p_adj = chain.transition().get(center, adjacent);
        let p_cor = chain.transition().get(center, corner);
        assert!(p_adj > p_cor, "adjacent {p_adj} vs corner {p_cor}");
    }

    #[test]
    fn kernel_is_symmetric_in_distance() {
        // d(i,j) = d(j,i) and all rows share the same kernel, so before
        // normalization the matrix is symmetric; after normalization rows of
        // symmetric-position cells match by reflection.
        let grid = GridMap::new(3, 3, 1.0).unwrap();
        let chain = gaussian_kernel_chain(&grid, 0.7).unwrap();
        let t = chain.transition();
        // Corners 0 and 8 are mirror images: p(0→1) must equal p(8→7).
        assert!((t.get(0, 1) - t.get(8, 7)).abs() < 1e-12);
        assert!((t.get(0, 4) - t.get(8, 4)).abs() < 1e-12);
    }

    #[test]
    fn monotone_decay_along_a_row_of_cells() {
        let grid = GridMap::new(1, 6, 1.0).unwrap();
        let chain = gaussian_kernel_chain(&grid, 1.5).unwrap();
        let row = chain.transition().row(0);
        for w in row.windows(2) {
            assert!(w[0] >= w[1], "row not monotone: {row:?}");
        }
        let _ = CellId(0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_sigma_panics() {
        let grid = GridMap::new(2, 2, 1.0).unwrap();
        let _ = gaussian_kernel_chain(&grid, 0.0);
    }

    #[test]
    fn sparse_generator_is_sparse_backed_and_stochastic() {
        let grid = GridMap::new(20, 20, 1.0).unwrap();
        let chain = gaussian_kernel_chain_sparse(&grid, 0.5).unwrap();
        assert!(chain.is_sparse());
        chain.transition_matrix().validate_stochastic().unwrap();
        // σ = 0.5 km on 1 km cells: radius 4 cells ⇒ ≤ 81-cell patches on a
        // 400-cell map.
        assert!(chain.transition_matrix().density() < 0.35);
    }

    #[test]
    fn sparse_generator_matches_dense_generator() {
        let grid = GridMap::new(6, 6, 1.0).unwrap();
        for sigma in [0.5, 1.0, 2.0] {
            let dense = gaussian_kernel_chain(&grid, sigma).unwrap();
            let sparse = gaussian_kernel_chain_sparse(&grid, sigma).unwrap();
            let d = dense.transition();
            let s = sparse.transition_matrix();
            for i in 0..grid.num_cells() {
                for j in 0..grid.num_cells() {
                    assert!(
                        (d.get(i, j) - s.get(i, j)).abs() < 1e-8,
                        "σ={sigma} entry ({i},{j}): dense {} vs sparse {}",
                        d.get(i, j),
                        s.get(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn sparse_generator_truncates_far_transitions() {
        // σ = 0.3 km ⇒ cutoff ≈ 2.2 km ⇒ radius 3 cells; far corners of a
        // 20×20 map must be structurally zero and nnz ≪ m².
        let grid = GridMap::new(20, 20, 1.0).unwrap();
        let chain = gaussian_kernel_chain_sparse(&grid, 0.3).unwrap();
        let t = chain.transition_matrix();
        assert_eq!(t.get(0, 399), 0.0);
        assert!(t.nnz() < 400 * 49 + 1, "nnz {} not banded", t.nnz());
    }
}
