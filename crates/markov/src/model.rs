use crate::TransitionMatrix;
use priste_geo::CellId;
use priste_linalg::{LinalgError, Matrix, SparseMatrix, Vector};
use rand::Rng;
use std::fmt;

/// Errors produced by Markov-model construction and use.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MarkovError {
    /// The transition matrix failed stochasticity or shape validation.
    InvalidTransition(LinalgError),
    /// An initial distribution failed validation.
    InvalidInitial(LinalgError),
    /// A state index exceeded the model's domain.
    StateOutOfRange {
        /// Offending state index.
        state: usize,
        /// Number of states in the model.
        num_states: usize,
    },
    /// Training input contained no transitions.
    NoTrainingData,
    /// A requested trajectory length was zero.
    EmptyTrajectory,
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::InvalidTransition(e) => write!(f, "invalid transition matrix: {e}"),
            MarkovError::InvalidInitial(e) => write!(f, "invalid initial distribution: {e}"),
            MarkovError::StateOutOfRange { state, num_states } => {
                write!(f, "state {state} out of range for {num_states}-state chain")
            }
            MarkovError::NoTrainingData => write!(f, "no transitions in training data"),
            MarkovError::EmptyTrajectory => write!(f, "requested trajectory of length zero"),
        }
    }
}

impl std::error::Error for MarkovError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MarkovError::InvalidTransition(e) | MarkovError::InvalidInitial(e) => Some(e),
            _ => None,
        }
    }
}

/// A first-order Markov chain over the state domain `S = {s_1, …, s_m}`.
///
/// Row `i` of the transition matrix is the distribution of the next state
/// given the current state `s_{i+1}`, matching the paper's convention
/// `p_{t+1} = p_t · M`.
///
/// The matrix lives behind a [`TransitionMatrix`]: dense for small or full
/// chains, CSR for the banded mobility kernels of large grids. All
/// propagation/sampling helpers dispatch to the active backend.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovModel {
    transition: TransitionMatrix,
}

impl MarkovModel {
    /// Wraps a validated row-stochastic transition matrix (dense backend).
    ///
    /// # Errors
    /// [`MarkovError::InvalidTransition`] if the matrix is not square and
    /// row-stochastic.
    pub fn new(transition: Matrix) -> crate::Result<Self> {
        MarkovModel::from_transition_matrix(TransitionMatrix::Dense(transition))
    }

    /// Wraps a validated row-stochastic CSR matrix (sparse backend).
    ///
    /// # Errors
    /// [`MarkovError::InvalidTransition`] if the matrix is not square and
    /// row-stochastic.
    pub fn new_sparse(transition: SparseMatrix) -> crate::Result<Self> {
        MarkovModel::from_transition_matrix(TransitionMatrix::Sparse(transition))
    }

    /// Wraps an already backend-tagged transition matrix.
    ///
    /// # Errors
    /// [`MarkovError::InvalidTransition`] if the matrix is not square and
    /// row-stochastic.
    pub fn from_transition_matrix(transition: TransitionMatrix) -> crate::Result<Self> {
        if !transition.is_square() {
            return Err(MarkovError::InvalidTransition(
                LinalgError::DimensionMismatch {
                    op: "markov transition",
                    expected: transition.rows(),
                    actual: transition.cols(),
                },
            ));
        }
        transition
            .validate_stochastic()
            .map_err(MarkovError::InvalidTransition)?;
        Ok(MarkovModel { transition })
    }

    /// Re-picks the backend by the density cutover
    /// ([`crate::SPARSE_DENSITY_CUTOVER`]): a banded chain converts to CSR,
    /// a dense one stays (or reverts to) blocked dense. The conversion is
    /// exact — only structural zeros are dropped — so every product is
    /// bit-identical across the switch.
    pub fn with_auto_backend(self) -> Self {
        let transition = match self.transition {
            // Already sparse and below the cutover: keep it, avoiding an
            // O(m²) densify round-trip on big grids.
            TransitionMatrix::Sparse(s) if s.density() <= crate::SPARSE_DENSITY_CUTOVER => {
                TransitionMatrix::Sparse(s)
            }
            other => TransitionMatrix::auto(other.to_dense_matrix()),
        };
        MarkovModel { transition }
    }

    /// Whether the CSR backend is active.
    pub fn is_sparse(&self) -> bool {
        self.transition.is_sparse()
    }

    /// The transition matrix from the paper's Example III.1 (Eq. (2)).
    /// Handy for doc examples and tests.
    pub fn paper_example() -> Self {
        let m = Matrix::from_rows(&[
            vec![0.1, 0.2, 0.7],
            vec![0.4, 0.1, 0.5],
            vec![0.0, 0.1, 0.9],
        ])
        .expect("static rows are rectangular");
        MarkovModel::new(m).expect("static matrix is stochastic")
    }

    /// Number of states `m`.
    pub fn num_states(&self) -> usize {
        self.transition.rows()
    }

    /// The transition matrix `M` as a dense matrix.
    ///
    /// Kept for the many dense-only consumers (trainers, delta-location
    /// tracking, fixtures); sparse-aware code should use
    /// [`MarkovModel::transition_matrix`] instead.
    ///
    /// # Panics
    /// Panics if the model is sparse-backed — a CSR chain has no dense
    /// matrix to borrow.
    pub fn transition(&self) -> &Matrix {
        self.transition.as_dense().expect(
            "dense transition requested from a sparse-backed model; use transition_matrix()",
        )
    }

    /// The backend-tagged transition matrix `M`.
    pub fn transition_matrix(&self) -> &TransitionMatrix {
        &self.transition
    }

    /// Single-step transition probability `Pr(u_{t+1} = s_j | u_t = s_i)`.
    ///
    /// # Errors
    /// [`MarkovError::StateOutOfRange`] for out-of-domain states.
    pub fn prob(&self, from: CellId, to: CellId) -> crate::Result<f64> {
        let m = self.num_states();
        for s in [from.index(), to.index()] {
            if s >= m {
                return Err(MarkovError::StateOutOfRange {
                    state: s,
                    num_states: m,
                });
            }
        }
        Ok(self.transition.get(from.index(), to.index()))
    }

    /// Propagates a distribution one step: `p · M`.
    ///
    /// # Errors
    /// [`MarkovError::InvalidInitial`] on length mismatch.
    pub fn step(&self, p: &Vector) -> crate::Result<Vector> {
        self.transition
            .try_vecmat(p)
            .map_err(MarkovError::InvalidInitial)
    }

    /// Propagates a distribution `k` steps: `p · M^k` (via repeated
    /// vector–matrix products, `O(k·m²)`).
    ///
    /// # Errors
    /// [`MarkovError::InvalidInitial`] on length mismatch.
    pub fn step_k(&self, p: &Vector, k: usize) -> crate::Result<Vector> {
        let mut cur = p.clone();
        for _ in 0..k {
            cur = self.step(&cur)?;
        }
        Ok(cur)
    }

    /// Samples the next state given the current one.
    ///
    /// # Errors
    /// [`MarkovError::StateOutOfRange`] for an out-of-domain current state.
    pub fn sample_next<R: Rng + ?Sized>(
        &self,
        current: CellId,
        rng: &mut R,
    ) -> crate::Result<CellId> {
        let m = self.num_states();
        if current.index() >= m {
            return Err(MarkovError::StateOutOfRange {
                state: current.index(),
                num_states: m,
            });
        }
        Ok(CellId(self.transition.sample_row(current.index(), rng)))
    }

    /// Samples a `len`-step trajectory starting from `start` (inclusive).
    ///
    /// # Errors
    /// [`MarkovError::EmptyTrajectory`] for `len == 0`;
    /// [`MarkovError::StateOutOfRange`] for an out-of-domain start.
    pub fn sample_trajectory<R: Rng + ?Sized>(
        &self,
        start: CellId,
        len: usize,
        rng: &mut R,
    ) -> crate::Result<Vec<CellId>> {
        if len == 0 {
            return Err(MarkovError::EmptyTrajectory);
        }
        if start.index() >= self.num_states() {
            return Err(MarkovError::StateOutOfRange {
                state: start.index(),
                num_states: self.num_states(),
            });
        }
        let mut traj = Vec::with_capacity(len);
        traj.push(start);
        let mut cur = start;
        for _ in 1..len {
            cur = self.sample_next(cur, rng)?;
            traj.push(cur);
        }
        Ok(traj)
    }

    /// Samples a trajectory whose first state is drawn from `initial`.
    ///
    /// # Errors
    /// [`MarkovError::InvalidInitial`] if `initial` is not a distribution
    /// over the model's domain; [`MarkovError::EmptyTrajectory`] for
    /// `len == 0`.
    pub fn sample_trajectory_from<R: Rng + ?Sized>(
        &self,
        initial: &Vector,
        len: usize,
        rng: &mut R,
    ) -> crate::Result<Vec<CellId>> {
        if initial.len() != self.num_states() {
            return Err(MarkovError::InvalidInitial(
                LinalgError::DimensionMismatch {
                    op: "initial distribution",
                    expected: self.num_states(),
                    actual: initial.len(),
                },
            ));
        }
        initial
            .validate_distribution()
            .map_err(MarkovError::InvalidInitial)?;
        let start = CellId(sample_categorical(initial.as_slice(), rng));
        self.sample_trajectory(start, len, rng)
    }
}

/// Samples an index from an (unnormalized-tolerant) categorical distribution.
pub(crate) fn sample_categorical<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "categorical weights sum to zero");
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    // Floating-point slack: return the last state with nonzero weight.
    weights
        .iter()
        .rposition(|&w| w > 0.0)
        .unwrap_or(weights.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_non_stochastic() {
        let bad = Matrix::from_rows(&[vec![0.5, 0.4], vec![0.5, 0.5]]).unwrap();
        assert!(matches!(
            MarkovModel::new(bad),
            Err(MarkovError::InvalidTransition(_))
        ));
        let rect = Matrix::zeros(2, 3);
        assert!(MarkovModel::new(rect).is_err());
    }

    #[test]
    fn paper_example_probabilities() {
        let m = MarkovModel::paper_example();
        assert_eq!(m.num_states(), 3);
        assert_eq!(m.prob(CellId(0), CellId(2)).unwrap(), 0.7);
        assert_eq!(m.prob(CellId(2), CellId(0)).unwrap(), 0.0);
        assert!(m.prob(CellId(3), CellId(0)).is_err());
    }

    #[test]
    fn step_preserves_mass() {
        let m = MarkovModel::paper_example();
        let p = Vector::from(vec![0.2, 0.3, 0.5]);
        let q = m.step(&p).unwrap();
        assert!((q.sum() - 1.0).abs() < 1e-12);
        // Hand check: q[0] = 0.2*0.1 + 0.3*0.4 + 0.5*0.0 = 0.14
        assert!((q[0] - 0.14).abs() < 1e-12);
    }

    #[test]
    fn step_k_composes() {
        let m = MarkovModel::paper_example();
        let p = Vector::uniform(3);
        let two = m.step_k(&p, 2).unwrap();
        let manual = m.step(&m.step(&p).unwrap()).unwrap();
        assert!(two.max_abs_diff(&manual) < 1e-12);
        assert_eq!(m.step_k(&p, 0).unwrap(), p);
    }

    #[test]
    fn sampled_trajectory_has_requested_length_and_valid_states() {
        let m = MarkovModel::paper_example();
        let mut rng = StdRng::seed_from_u64(7);
        let t = m.sample_trajectory(CellId(0), 100, &mut rng).unwrap();
        assert_eq!(t.len(), 100);
        assert!(t.iter().all(|c| c.index() < 3));
        assert_eq!(t[0], CellId(0));
    }

    #[test]
    fn sampling_respects_zero_probability_transitions() {
        // From s3 the chain can never reach s1 (row [0, 0.1, 0.9]).
        let m = MarkovModel::paper_example();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let next = m.sample_next(CellId(2), &mut rng).unwrap();
            assert_ne!(next, CellId(0));
        }
    }

    #[test]
    fn empirical_frequencies_approach_row() {
        let m = MarkovModel::paper_example();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 40_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[m.sample_next(CellId(1), &mut rng).unwrap().index()] += 1;
        }
        let freq: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        for (f, expect) in freq.iter().zip([0.4, 0.1, 0.5]) {
            assert!((f - expect).abs() < 0.02, "freq {f} vs {expect}");
        }
    }

    #[test]
    fn trajectory_errors() {
        let m = MarkovModel::paper_example();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            m.sample_trajectory(CellId(0), 0, &mut rng),
            Err(MarkovError::EmptyTrajectory)
        ));
        assert!(matches!(
            m.sample_trajectory(CellId(9), 5, &mut rng),
            Err(MarkovError::StateOutOfRange { .. })
        ));
    }

    #[test]
    fn sample_from_initial_validates() {
        let m = MarkovModel::paper_example();
        let mut rng = StdRng::seed_from_u64(5);
        let bad = Vector::from(vec![0.5, 0.4]);
        assert!(m.sample_trajectory_from(&bad, 5, &mut rng).is_err());
        let not_dist = Vector::from(vec![0.5, 0.4, 0.3]);
        assert!(m.sample_trajectory_from(&not_dist, 5, &mut rng).is_err());
        let ok = Vector::uniform(3);
        assert_eq!(m.sample_trajectory_from(&ok, 5, &mut rng).unwrap().len(), 5);
    }

    #[test]
    fn categorical_handles_rounding_slack() {
        // All mass on the last index must never panic.
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert_eq!(sample_categorical(&[0.0, 0.0, 1.0], &mut rng), 2);
        }
    }
}
