//! The transition-source abstraction consumed by the quantification engine.
//!
//! Paper footnote 3: "If the Markov model is time-varying, i.e., transition
//! matrices at different t are not identical, our approach still works" —
//! Lemma III.1's remark spells out that Eqs. (4)–(8) are simply re-evaluated
//! with the matrix in force at each step. [`TransitionProvider`] makes that
//! generality a first-class seam: the engine asks for "the transition used
//! at step `t → t+1`" and never assumes homogeneity.

use crate::{MarkovError, MarkovModel, Result, TransitionMatrix};

/// Source of (possibly time-varying) transition matrices.
///
/// `transition_at(t)` returns the matrix governing the step from timestamp
/// `t` to `t + 1`, with timestamps 1-based as in the paper. The matrix is
/// backend-tagged ([`TransitionMatrix`]): consumers dispatch products to a
/// dense or CSR kernel without knowing which backend the chain carries.
pub trait TransitionProvider {
    /// Number of states `m`.
    fn num_states(&self) -> usize;

    /// Transition matrix in force for the step `t → t+1` (`t ≥ 1`).
    fn transition_at(&self, t: usize) -> &TransitionMatrix;
}

/// Time-homogeneous chain: the same matrix at every step (the paper's
/// primary setting).
#[derive(Debug, Clone)]
pub struct Homogeneous {
    model: MarkovModel,
}

impl Homogeneous {
    /// Wraps a model as a homogeneous provider.
    pub fn new(model: MarkovModel) -> Self {
        Homogeneous { model }
    }

    /// The underlying model.
    pub fn model(&self) -> &MarkovModel {
        &self.model
    }
}

impl TransitionProvider for Homogeneous {
    fn num_states(&self) -> usize {
        self.model.num_states()
    }

    fn transition_at(&self, _t: usize) -> &TransitionMatrix {
        self.model.transition_matrix()
    }
}

/// Time-varying chain backed by an explicit schedule of matrices.
///
/// Step `t → t+1` uses `schedule[min(t−1, len−1)]`; the final matrix
/// persists beyond the schedule's end, so finite schedules cover unbounded
/// horizons (the common pattern: a daily cycle repeated by the caller, or a
/// transient regime settling into a steady state).
#[derive(Debug, Clone)]
pub struct TimeVarying {
    num_states: usize,
    schedule: Vec<MarkovModel>,
}

impl TimeVarying {
    /// Builds a time-varying provider from a non-empty schedule of models
    /// over a common state domain.
    ///
    /// # Errors
    /// [`MarkovError::NoTrainingData`] for an empty schedule;
    /// [`MarkovError::StateOutOfRange`] if models disagree on domain size.
    pub fn new(schedule: Vec<MarkovModel>) -> Result<Self> {
        let first = schedule.first().ok_or(MarkovError::NoTrainingData)?;
        let n = first.num_states();
        for m in &schedule {
            if m.num_states() != n {
                return Err(MarkovError::StateOutOfRange {
                    state: m.num_states(),
                    num_states: n,
                });
            }
        }
        Ok(TimeVarying {
            num_states: n,
            schedule,
        })
    }

    /// Length of the explicit schedule.
    pub fn schedule_len(&self) -> usize {
        self.schedule.len()
    }
}

impl TransitionProvider for TimeVarying {
    fn num_states(&self) -> usize {
        self.num_states
    }

    fn transition_at(&self, t: usize) -> &TransitionMatrix {
        let idx = t.saturating_sub(1).min(self.schedule.len() - 1);
        self.schedule[idx].transition_matrix()
    }
}

impl<T: TransitionProvider + ?Sized> TransitionProvider for &T {
    fn num_states(&self) -> usize {
        (**self).num_states()
    }

    fn transition_at(&self, t: usize) -> &TransitionMatrix {
        (**self).transition_at(t)
    }
}

/// Shared-ownership provider: lets many long-lived consumers (e.g. the
/// per-user event windows of a streaming service) reference one mobility
/// model without cloning its matrices. `Arc` rather than `Rc` so the
/// sharing consumers — sessions, managers, pipelines — stay `Send + Sync`
/// and can fan work out across threads.
impl<T: TransitionProvider + ?Sized> TransitionProvider for std::sync::Arc<T> {
    fn num_states(&self) -> usize {
        (**self).num_states()
    }

    fn transition_at(&self, t: usize) -> &TransitionMatrix {
        (**self).transition_at(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priste_linalg::Matrix;

    fn two_state(p_stay: f64) -> MarkovModel {
        MarkovModel::new(
            Matrix::from_rows(&[vec![p_stay, 1.0 - p_stay], vec![1.0 - p_stay, p_stay]]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn homogeneous_returns_same_matrix_everywhere() {
        let h = Homogeneous::new(MarkovModel::paper_example());
        assert_eq!(h.num_states(), 3);
        assert_eq!(h.transition_at(1), h.transition_at(99));
    }

    #[test]
    fn time_varying_follows_schedule_then_persists() {
        let tv = TimeVarying::new(vec![two_state(0.9), two_state(0.1)]).unwrap();
        assert_eq!(tv.num_states(), 2);
        assert_eq!(tv.transition_at(1).get(0, 0), 0.9);
        assert_eq!(tv.transition_at(2).get(0, 0), 0.1);
        // Past the schedule end the last regime persists.
        assert_eq!(tv.transition_at(50).get(0, 0), 0.1);
    }

    #[test]
    fn time_varying_validates_input() {
        assert!(matches!(
            TimeVarying::new(vec![]),
            Err(MarkovError::NoTrainingData)
        ));
        let mismatch = TimeVarying::new(vec![two_state(0.5), MarkovModel::paper_example()]);
        assert!(mismatch.is_err());
    }

    #[test]
    fn reference_provider_delegates() {
        let h = Homogeneous::new(MarkovModel::paper_example());
        fn takes_provider<P: TransitionProvider>(p: P) -> usize {
            p.num_states()
        }
        assert_eq!(takes_provider(&h), 3);
    }

    #[test]
    fn arc_provider_delegates_and_shares() {
        let h = std::sync::Arc::new(Homogeneous::new(MarkovModel::paper_example()));
        fn takes_provider<P: TransitionProvider + Send + Sync>(p: P) -> usize {
            p.num_states()
        }
        assert_eq!(takes_provider(std::sync::Arc::clone(&h)), 3);
        let clone = std::sync::Arc::clone(&h);
        assert_eq!(h.transition_at(1), clone.transition_at(7));
    }
}
