//! Backend-polymorphic transition matrices with a density cutover.
//!
//! Real mobility chains are banded: from any cell, mass only reaches nearby
//! cells, so the `m × m` transition matrix holds `O(m · band)` non-zeros.
//! [`TransitionMatrix`] lets every consumer of [`TransitionProvider`]
//! (engine, incremental quantifier, session manager, …) run against either a
//! dense [`Matrix`] or a CSR [`SparseMatrix`] without caring which — the
//! forward/backward products dispatch to the backend, costing `O(m²)` or
//! `O(nnz)` respectively.
//!
//! The cutover rule: CSR wins while the fill ratio stays below
//! [`SPARSE_DENSITY_CUTOVER`]. Above it, the indirection and scattered writes
//! of CSR lose to the dense kernel's sequential streaming, so
//! [`TransitionMatrix::auto`] keeps the blocked dense path.
//!
//! [`TransitionProvider`]: crate::TransitionProvider

use priste_linalg::scaling::ScaledVector;
use priste_linalg::{Matrix, Result as LinalgResult, SparseMatrix, Vector};
use rand::Rng;

/// Fill ratio `nnz/m²` above which the dense backend is preferred.
///
/// CSR trades sequential streaming for an index indirection per entry; on
/// the row-oriented products used here it stops paying for itself somewhere
/// between 25% and 50% fill. We cut over in the middle of that band: a
/// matrix more than ~⅓ full runs dense.
pub const SPARSE_DENSITY_CUTOVER: f64 = 0.35;

/// A transition matrix with a dense or sparse (CSR) backend.
///
/// Both backends expose identical product semantics: the sparse kernels skip
/// only structurally-zero terms, whose contribution to any sum is a literal
/// `+ 0.0`, so a [`TransitionMatrix::Sparse`] built by
/// [`SparseMatrix::from_dense`] with threshold `0.0` reproduces the dense
/// results bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub enum TransitionMatrix {
    /// Blocked dense backend (row-major [`Matrix`]).
    Dense(Matrix),
    /// CSR backend for banded/sparse chains.
    Sparse(SparseMatrix),
}

impl TransitionMatrix {
    /// Picks the backend for a dense matrix by the density cutover: CSR when
    /// the fill ratio is at most [`SPARSE_DENSITY_CUTOVER`], dense otherwise.
    pub fn auto(m: Matrix) -> TransitionMatrix {
        let cells = m.rows() * m.cols();
        if cells == 0 {
            return TransitionMatrix::Dense(m);
        }
        let nnz = m.as_slice().iter().filter(|&&v| v != 0.0).count();
        if nnz as f64 / cells as f64 <= SPARSE_DENSITY_CUTOVER {
            TransitionMatrix::Sparse(SparseMatrix::from_dense(&m, 0.0))
        } else {
            TransitionMatrix::Dense(m)
        }
    }

    /// Whether the CSR backend is active.
    pub fn is_sparse(&self) -> bool {
        matches!(self, TransitionMatrix::Sparse(_))
    }

    /// Dense backend view, if active.
    pub fn as_dense(&self) -> Option<&Matrix> {
        match self {
            TransitionMatrix::Dense(m) => Some(m),
            TransitionMatrix::Sparse(_) => None,
        }
    }

    /// Sparse backend view, if active.
    pub fn as_sparse(&self) -> Option<&SparseMatrix> {
        match self {
            TransitionMatrix::Dense(_) => None,
            TransitionMatrix::Sparse(s) => Some(s),
        }
    }

    /// Materializes a dense copy regardless of backend (`O(m²)` memory —
    /// oracle/test path).
    pub fn to_dense_matrix(&self) -> Matrix {
        match self {
            TransitionMatrix::Dense(m) => m.clone(),
            TransitionMatrix::Sparse(s) => s.to_dense(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            TransitionMatrix::Dense(m) => m.rows(),
            TransitionMatrix::Sparse(s) => s.rows(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            TransitionMatrix::Dense(m) => m.cols(),
            TransitionMatrix::Sparse(s) => s.cols(),
        }
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows() == self.cols()
    }

    /// Stored non-zero count: structural for CSR, exact for dense.
    pub fn nnz(&self) -> usize {
        match self {
            TransitionMatrix::Dense(m) => m.as_slice().iter().filter(|&&v| v != 0.0).count(),
            TransitionMatrix::Sparse(s) => s.nnz(),
        }
    }

    /// Fill ratio `nnz / m²`.
    pub fn density(&self) -> f64 {
        let cells = self.rows() * self.cols();
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// Entry at `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        match self {
            TransitionMatrix::Dense(m) => m.get(r, c),
            TransitionMatrix::Sparse(s) => s.get(r, c),
        }
    }

    /// Row-vector × matrix product `x · M` (forward orientation).
    ///
    /// # Panics
    /// Panics if `x.len() != rows`.
    pub fn vecmat(&self, x: &Vector) -> Vector {
        match self {
            TransitionMatrix::Dense(m) => m.vecmat(x),
            TransitionMatrix::Sparse(s) => s.vecmat(x),
        }
    }

    /// Fallible variant of [`TransitionMatrix::vecmat`].
    ///
    /// # Errors
    /// Dimension mismatch from the backend.
    pub fn try_vecmat(&self, x: &Vector) -> LinalgResult<Vector> {
        match self {
            TransitionMatrix::Dense(m) => m.try_vecmat(x),
            TransitionMatrix::Sparse(s) => s.try_vecmat(x),
        }
    }

    /// Allocation-free `x · M` into `out` (overwritten).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn vecmat_into(&self, x: &[f64], out: &mut [f64]) {
        match self {
            TransitionMatrix::Dense(m) => m.vecmat_into(x, out),
            TransitionMatrix::Sparse(s) => s.vecmat_into(x, out),
        }
    }

    /// Matrix × column-vector product `M · x` (suffix/backward orientation).
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &Vector) -> Vector {
        match self {
            TransitionMatrix::Dense(m) => m.matvec(x),
            TransitionMatrix::Sparse(s) => s.matvec(x),
        }
    }

    /// Allocation-free `M · x` into `out`.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        match self {
            TransitionMatrix::Dense(m) => m.matvec_into(x, out),
            TransitionMatrix::Sparse(s) => s.matvec_into(x, out),
        }
    }

    /// Validates row-stochasticity on the active backend.
    ///
    /// # Errors
    /// As [`Matrix::validate_stochastic`] / [`SparseMatrix::validate_stochastic`].
    pub fn validate_stochastic(&self) -> LinalgResult<()> {
        match self {
            TransitionMatrix::Dense(m) => m.validate_stochastic(),
            TransitionMatrix::Sparse(s) => s.validate_stochastic(),
        }
    }

    /// One forward HMM factor: `s ← (s · M) ∘ e`, mirroring
    /// [`ScaledVector::forward_step`] over either backend.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn forward_step(&self, s: &mut ScaledVector, e: &Vector) {
        s.vector = self
            .vecmat(&s.vector)
            .hadamard(e)
            .expect("emission dimension mismatch");
        s.renormalize();
    }

    /// One plain transition: `s ← s · M`, mirroring
    /// [`ScaledVector::transition_step`].
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn transition_step(&self, s: &mut ScaledVector) {
        s.vector = self.vecmat(&s.vector);
        s.renormalize();
    }

    /// One backward HMM factor: `s ← M · (s ∘ e)`, mirroring
    /// [`ScaledVector::backward_step`].
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn backward_step(&self, s: &mut ScaledVector, e: &Vector) {
        let weighted = s.vector.hadamard(e).expect("emission dimension mismatch");
        s.vector = self.matvec(&weighted);
        s.renormalize();
    }

    /// Samples a next state from row `r`'s categorical distribution. CSR
    /// rows sample among the stored entries only (structural zeros carry no
    /// probability mass by construction).
    ///
    /// # Panics
    /// Panics if `r` is out of bounds.
    pub fn sample_row<R: Rng + ?Sized>(&self, r: usize, rng: &mut R) -> usize {
        match self {
            TransitionMatrix::Dense(m) => crate::model::sample_categorical(m.row(r), rng),
            TransitionMatrix::Sparse(s) => {
                let (cols, vals) = s.row_entries(r);
                cols[crate::model::sample_categorical(vals, rng)]
            }
        }
    }
}

impl From<Matrix> for TransitionMatrix {
    fn from(m: Matrix) -> Self {
        TransitionMatrix::Dense(m)
    }
}

impl From<SparseMatrix> for TransitionMatrix {
    fn from(s: SparseMatrix) -> Self {
        TransitionMatrix::Sparse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn banded4() -> Matrix {
        Matrix::from_rows(&[
            vec![0.5, 0.5, 0.0, 0.0],
            vec![0.25, 0.5, 0.25, 0.0],
            vec![0.0, 0.25, 0.5, 0.25],
            vec![0.0, 0.0, 0.5, 0.5],
        ])
        .unwrap()
    }

    #[test]
    fn auto_picks_sparse_below_cutover_and_dense_above() {
        // Density 10/16 = 0.625 > 0.35 → dense.
        let dense_pick = TransitionMatrix::auto(banded4());
        assert!(!dense_pick.is_sparse());
        assert!(dense_pick.as_dense().is_some());

        // Identity: density 4/16 = 0.25 ≤ 0.35 → sparse.
        let sparse_pick = TransitionMatrix::auto(Matrix::identity(4));
        assert!(sparse_pick.is_sparse());
        assert_eq!(sparse_pick.nnz(), 4);
    }

    #[test]
    fn auto_cutover_boundary_is_inclusive_for_sparse() {
        // 8×8 with exactly ⌊0.35·64⌋ = 22 non-zeros → density 0.34375 ≤ 0.35
        // stays sparse; 23 non-zeros → 0.359… > 0.35 goes dense.
        let mut m = Matrix::zeros(8, 8);
        for k in 0..22 {
            m.set(k / 8, k % 8, 1.0);
        }
        // Make rows stochastic-ish is irrelevant here; auto() only counts.
        assert!(TransitionMatrix::auto(m.clone()).is_sparse());
        m.set(22 / 8, 22 % 8, 1.0);
        assert!(!TransitionMatrix::auto(m).is_sparse());
    }

    #[test]
    fn products_agree_across_backends_bitwise() {
        let d = banded4();
        let tm_d = TransitionMatrix::Dense(d.clone());
        let tm_s = TransitionMatrix::Sparse(SparseMatrix::from_dense(&d, 0.0));
        let x = Vector::from(vec![0.1, 0.2, 0.3, 0.4]);
        assert_eq!(tm_d.vecmat(&x).as_slice(), tm_s.vecmat(&x).as_slice());
        assert_eq!(tm_d.matvec(&x).as_slice(), tm_s.matvec(&x).as_slice());
        assert_eq!(tm_d.get(1, 2), tm_s.get(1, 2));
        assert_eq!(tm_d.nnz(), tm_s.nnz());
        assert_eq!(tm_d.to_dense_matrix(), tm_s.to_dense_matrix());
    }

    #[test]
    fn scaled_steps_match_scaling_module() {
        let d = banded4();
        let tm = TransitionMatrix::Sparse(SparseMatrix::from_dense(&d, 0.0));
        let e = Vector::from(vec![0.5, 0.2, 0.2, 0.1]);

        let mut ours = ScaledVector::new(Vector::uniform(4));
        let mut reference = ScaledVector::new(Vector::uniform(4));
        tm.forward_step(&mut ours, &e);
        reference.forward_step(&d, &e);
        assert_eq!(ours, reference);

        tm.backward_step(&mut ours, &e);
        reference.backward_step(&d, &e);
        assert_eq!(ours, reference);

        tm.transition_step(&mut ours);
        reference.transition_step(&d);
        assert_eq!(ours, reference);
    }

    #[test]
    fn sample_row_respects_structural_zeros() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let tm = TransitionMatrix::Sparse(SparseMatrix::from_dense(&banded4(), 0.0));
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let next = tm.sample_row(0, &mut rng);
            assert!(next < 2, "row 0 only reaches columns 0 and 1, got {next}");
        }
    }
}
