//! Markov mobility models for PriSTE.
//!
//! The paper models temporal correlation in a user's movement with a
//! first-order time-homogeneous Markov chain over the `m` grid cells
//! (§III.A), trained from the user's full trajectory (§V.A trains with R's
//! `markovchain` on Geolife) or synthesized from a two-dimensional Gaussian
//! kernel with scale `σ` (§V.A synthetic data). Footnotes 2–3 note that the
//! machinery extends to higher-order and time-varying chains; the
//! [`TransitionProvider`] trait is that extension point, and the
//! quantification engine consumes transitions exclusively through it.
//!
//! Contents:
//!
//! * [`MarkovModel`] — validated row-stochastic transition matrix with
//!   propagation, sampling and analysis helpers.
//! * [`train_mle`] / [`TransitionCounts`] — maximum-likelihood estimation
//!   from observed state sequences with additive smoothing (replaces the R
//!   `markovchain` dependency).
//! * [`gaussian_kernel_chain`] / [`gaussian_kernel_chain_sparse`] — the
//!   §V.A synthetic world generator, dense and truncated-banded CSR.
//! * [`stationary_distribution`] — power-iteration stationary analysis.
//! * [`TransitionMatrix`] — dense/CSR backend enum with the
//!   [`SPARSE_DENSITY_CUTOVER`] auto-selection rule.
//! * [`TransitionProvider`], [`Homogeneous`], [`TimeVarying`] — the chain
//!   abstraction used by `priste-quantify`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod model;
mod provider;
mod stationary;
mod synthetic;
mod train;
mod transition;

pub use model::{MarkovError, MarkovModel};
pub use provider::{Homogeneous, TimeVarying, TransitionProvider};
pub use stationary::{stationary_distribution, total_variation};
pub use synthetic::{
    gaussian_kernel_chain, gaussian_kernel_chain_sparse, SPARSE_KERNEL_TRUNCATION,
};
pub use train::{train_mle, TransitionCounts};
pub use transition::{TransitionMatrix, SPARSE_DENSITY_CUTOVER};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, MarkovError>;
