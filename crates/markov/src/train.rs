//! Maximum-likelihood training of Markov chains from observed trajectories.
//!
//! Replaces the paper's use of the R package `markovchain` (§V.A: "The
//! user's entire trajectory is used to train the transition matrix M"). The
//! estimator is the standard MLE — row-normalized transition counts — with
//! optional additive (Laplace) smoothing so states that never appear in
//! training still get a well-defined (uniform) outgoing row, keeping the
//! matrix stochastic as the quantification engine requires.

use crate::{MarkovError, MarkovModel, Result};
use priste_geo::CellId;
use priste_linalg::Matrix;

/// Accumulated transition counts, separable from normalization so callers
/// can merge counts from many trajectories (e.g. multi-day Geolife data)
/// before fitting.
#[derive(Debug, Clone)]
pub struct TransitionCounts {
    num_states: usize,
    counts: Vec<f64>,
    total_transitions: usize,
}

impl TransitionCounts {
    /// Creates an empty count table over `num_states` states.
    pub fn new(num_states: usize) -> Self {
        TransitionCounts {
            num_states,
            counts: vec![0.0; num_states * num_states],
            total_transitions: 0,
        }
    }

    /// Number of states in the domain.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Total number of observed transitions.
    pub fn total_transitions(&self) -> usize {
        self.total_transitions
    }

    /// Records every consecutive pair of `trajectory` as one transition.
    ///
    /// # Errors
    /// [`MarkovError::StateOutOfRange`] if any state exceeds the domain.
    pub fn observe(&mut self, trajectory: &[CellId]) -> Result<()> {
        for c in trajectory {
            if c.index() >= self.num_states {
                return Err(MarkovError::StateOutOfRange {
                    state: c.index(),
                    num_states: self.num_states,
                });
            }
        }
        for w in trajectory.windows(2) {
            self.counts[w[0].index() * self.num_states + w[1].index()] += 1.0;
            self.total_transitions += 1;
        }
        Ok(())
    }

    /// Raw count for a transition.
    pub fn count(&self, from: CellId, to: CellId) -> f64 {
        self.counts[from.index() * self.num_states + to.index()]
    }

    /// Fits the MLE transition matrix with additive smoothing `alpha` added
    /// to every cell before row normalization. `alpha = 0` is the pure MLE;
    /// rows with no observations fall back to the uniform distribution.
    ///
    /// # Errors
    /// [`MarkovError::NoTrainingData`] if no transitions were observed and
    /// `alpha == 0` (the fit would be entirely fabricated).
    pub fn fit(&self, alpha: f64) -> Result<MarkovModel> {
        if self.total_transitions == 0 && alpha == 0.0 {
            return Err(MarkovError::NoTrainingData);
        }
        let n = self.num_states;
        let mut m = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                m.set(r, c, self.counts[r * n + c] + alpha);
            }
        }
        m.normalize_rows_mut();
        MarkovModel::new(m)
    }
}

/// One-shot convenience: trains a model from a batch of trajectories.
///
/// # Errors
/// Propagates [`TransitionCounts::observe`] and [`TransitionCounts::fit`]
/// errors.
pub fn train_mle(
    num_states: usize,
    trajectories: &[Vec<CellId>],
    smoothing_alpha: f64,
) -> Result<MarkovModel> {
    let mut counts = TransitionCounts::new(num_states);
    for t in trajectories {
        counts.observe(t)?;
    }
    counts.fit(smoothing_alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cells(ids: &[usize]) -> Vec<CellId> {
        ids.iter().map(|&i| CellId(i)).collect()
    }

    #[test]
    fn counts_accumulate_pairs() {
        let mut c = TransitionCounts::new(3);
        c.observe(&cells(&[0, 1, 1, 2])).unwrap();
        assert_eq!(c.total_transitions(), 3);
        assert_eq!(c.count(CellId(0), CellId(1)), 1.0);
        assert_eq!(c.count(CellId(1), CellId(1)), 1.0);
        assert_eq!(c.count(CellId(1), CellId(2)), 1.0);
        assert_eq!(c.count(CellId(2), CellId(0)), 0.0);
    }

    #[test]
    fn observe_rejects_out_of_range() {
        let mut c = TransitionCounts::new(2);
        assert!(matches!(
            c.observe(&cells(&[0, 2])),
            Err(MarkovError::StateOutOfRange { .. })
        ));
        // Nothing was partially recorded.
        assert_eq!(c.total_transitions(), 0);
    }

    #[test]
    fn pure_mle_matches_hand_computation() {
        // 0→1 twice, 0→2 once ⇒ row 0 = [0, 2/3, 1/3].
        let model = train_mle(3, &[cells(&[0, 1]), cells(&[0, 1]), cells(&[0, 2])], 0.0).unwrap();
        let row: Vec<f64> = model.transition().row(0).to_vec();
        assert!((row[1] - 2.0 / 3.0).abs() < 1e-12);
        assert!((row[2] - 1.0 / 3.0).abs() < 1e-12);
        // Unobserved rows become uniform.
        assert_eq!(model.transition().row(1), &[1.0 / 3.0; 3]);
    }

    #[test]
    fn smoothing_spreads_mass() {
        let model = train_mle(2, &[cells(&[0, 0, 0])], 1.0).unwrap();
        // Row 0 counts: [2, 0] + alpha 1 ⇒ [3/4, 1/4].
        assert!((model.transition().get(0, 0) - 0.75).abs() < 1e-12);
        assert!((model.transition().get(0, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_training_without_smoothing_errors() {
        assert!(matches!(
            train_mle(3, &[], 0.0),
            Err(MarkovError::NoTrainingData)
        ));
        // With smoothing the fit degrades gracefully to uniform.
        let m = train_mle(3, &[], 0.5).unwrap();
        assert_eq!(m.transition().row(0), &[1.0 / 3.0; 3]);
    }

    #[test]
    fn single_point_trajectories_contribute_nothing() {
        let mut c = TransitionCounts::new(3);
        c.observe(&cells(&[1])).unwrap();
        assert_eq!(c.total_transitions(), 0);
    }

    #[test]
    fn training_recovers_generating_chain() {
        // Sample a long trajectory from a known chain and re-estimate it.
        let truth = MarkovModel::paper_example();
        let mut rng = StdRng::seed_from_u64(2024);
        let traj = truth
            .sample_trajectory(CellId(0), 60_000, &mut rng)
            .unwrap();
        let fitted = train_mle(3, &[traj], 0.0).unwrap();
        let err = fitted.transition().max_abs_diff(truth.transition());
        assert!(err < 0.02, "estimation error {err}");
    }

    #[test]
    fn fitted_matrix_is_always_stochastic() {
        let model = train_mle(4, &[cells(&[0, 1, 2, 3, 0])], 0.1).unwrap();
        model.transition().validate_stochastic().unwrap();
    }
}
