//! Property-based tests for the Markov substrate.

use priste_geo::{CellId, GridMap};
use priste_linalg::{Matrix, Vector};
use priste_markov::{
    gaussian_kernel_chain, stationary_distribution, total_variation, train_mle, MarkovModel,
    TimeVarying, TransitionProvider,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn stochastic(n: usize) -> impl Strategy<Value = MarkovModel> {
    proptest::collection::vec(proptest::collection::vec(0.01f64..1.0, n), n).prop_map(|rows| {
        let mut m = Matrix::from_rows(&rows).unwrap();
        m.normalize_rows_mut();
        MarkovModel::new(m).unwrap()
    })
}

fn distribution(n: usize) -> impl Strategy<Value = Vector> {
    proptest::collection::vec(0.01f64..1.0, n).prop_map(|raw| {
        let mut v = Vector::from(raw);
        v.normalize_mut().unwrap();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// k-step propagation preserves probability mass and non-negativity.
    #[test]
    fn propagation_preserves_distributions(
        model in stochastic(4),
        pi in distribution(4),
        k in 0usize..12,
    ) {
        let p = model.step_k(&pi, k).unwrap();
        p.validate_distribution().unwrap();
    }

    /// Total variation is a metric-ish: symmetric, zero on identical
    /// inputs, bounded by 1 for distributions.
    #[test]
    fn total_variation_properties(a in distribution(5), b in distribution(5)) {
        let d = total_variation(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d));
        prop_assert!((total_variation(&b, &a) - d).abs() < 1e-12);
        prop_assert!(total_variation(&a, &a) < 1e-15);
    }

    /// The stationary distribution is a fixed point of every ergodic chain
    /// generated here (all entries positive ⇒ irreducible + aperiodic).
    #[test]
    fn stationary_is_fixed_point(model in stochastic(4)) {
        let pi = stationary_distribution(&model, 1e-12, 200_000).unwrap();
        let stepped = model.step(&pi).unwrap();
        prop_assert!(total_variation(&pi, &stepped) < 1e-8);
    }

    /// Sampled trajectories only use transitions with positive probability.
    #[test]
    fn sampling_respects_support(model in stochastic(4), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let traj = model.sample_trajectory(CellId(0), 40, &mut rng).unwrap();
        for w in traj.windows(2) {
            prop_assert!(model.prob(w[0], w[1]).unwrap() > 0.0);
        }
    }

    /// MLE training on data from a chain concentrates on observed support:
    /// every trained transition with mass was observed or smoothed.
    #[test]
    fn training_support_matches_observations(seed in 0u64..200) {
        let truth = MarkovModel::paper_example();
        let mut rng = StdRng::seed_from_u64(seed);
        let traj = truth.sample_trajectory(CellId(0), 400, &mut rng).unwrap();
        let fitted = train_mle(3, std::slice::from_ref(&traj), 0.0).unwrap();
        // Any transition the truth forbids must stay at zero (no smoothing).
        for i in 0..3 {
            let row_observed = traj.windows(2).any(|w| w[0].index() == i);
            for j in 0..3 {
                if row_observed && truth.transition().get(i, j) == 0.0 {
                    prop_assert_eq!(fitted.transition().get(i, j), 0.0);
                }
            }
        }
    }

    /// Gaussian kernels are monotone in σ at the diagonal: smaller σ means
    /// more self-transition mass.
    #[test]
    fn kernel_diagonal_monotone_in_sigma(s1 in 0.2f64..1.0, factor in 1.1f64..4.0) {
        let grid = GridMap::new(4, 4, 1.0).unwrap();
        let tight = gaussian_kernel_chain(&grid, s1).unwrap();
        let loose = gaussian_kernel_chain(&grid, s1 * factor).unwrap();
        for i in 0..16 {
            prop_assert!(
                tight.transition().get(i, i) >= loose.transition().get(i, i) - 1e-12
            );
        }
    }

    /// Time-varying providers agree with their schedule and persist the
    /// last regime.
    #[test]
    fn time_varying_schedule_semantics(
        models in proptest::collection::vec(stochastic(3), 1..4),
        t in 1usize..20,
    ) {
        let len = models.len();
        let tv = TimeVarying::new(models.clone()).unwrap();
        let expect = &models[(t - 1).min(len - 1)];
        prop_assert!(tv.transition_at(t).to_dense_matrix().max_abs_diff(expect.transition()) < 1e-15);
    }
}
