//! Experiment scale presets.

/// Workload sizing for one experiment invocation.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Synthetic grid side (paper: 20 → 400 cells).
    pub grid_side: usize,
    /// Timestamps per run (paper: 50).
    pub horizon: usize,
    /// Runs per parameter point (paper: 100).
    pub runs: usize,
    /// GeoLife-world grid side (paper-equivalent: 20).
    pub geolife_side: usize,
    /// GeoLife-world cell size in km (tuned so the map spans metro Beijing).
    pub geolife_cell_km: f64,
    /// Horizon for GeoLife experiments.
    pub geolife_horizon: usize,
    /// Base RNG seed; run `k` of a point uses `seed + k`.
    pub seed: u64,
}

impl Scale {
    /// Default scale: every figure's shape in minutes, not hours.
    pub fn default_scale() -> Self {
        Scale {
            grid_side: 10,
            horizon: 50,
            runs: 20,
            geolife_side: 12,
            geolife_cell_km: 1.0,
            geolife_horizon: 24,
            seed: 20190401,
        }
    }

    /// The paper's full workload (§V.A).
    pub fn paper() -> Self {
        Scale {
            grid_side: 20,
            horizon: 50,
            runs: 100,
            geolife_side: 20,
            geolife_cell_km: 1.0,
            geolife_horizon: 50,
            seed: 20190401,
        }
    }

    /// Tiny scale for Criterion benches and CI smoke tests.
    pub fn smoke() -> Self {
        Scale {
            grid_side: 6,
            horizon: 16,
            runs: 3,
            geolife_side: 8,
            geolife_cell_km: 5.0,
            geolife_horizon: 12,
            seed: 20190401,
        }
    }

    /// Parses binary arguments: `--paper`, `--smoke`, `--runs N`, `--seed N`.
    ///
    /// # Panics
    /// Panics with a usage message on malformed arguments (binaries only).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut scale = Scale::default_scale();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--paper" => scale = Scale::paper(),
                "--smoke" => scale = Scale::smoke(),
                "--runs" => {
                    i += 1;
                    scale.runs = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--runs requires a number"));
                }
                "--seed" => {
                    i += 1;
                    scale.seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--seed requires a number"));
                }
                other => panic!(
                    "unknown argument {other}; usage: [--paper|--smoke] [--runs N] [--seed N]"
                ),
            }
            i += 1;
        }
        scale
    }

    /// Number of cells of the synthetic grid.
    pub fn num_cells(&self) -> usize {
        self.grid_side * self.grid_side
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        let s = Scale::smoke();
        let d = Scale::default_scale();
        let p = Scale::paper();
        assert!(s.num_cells() < d.num_cells());
        assert!(d.num_cells() < p.num_cells());
        assert!(s.runs < d.runs && d.runs < p.runs);
        assert_eq!(p.grid_side, 20);
        assert_eq!(p.horizon, 50);
        assert_eq!(p.runs, 100);
    }
}
