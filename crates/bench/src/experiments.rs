//! Experiment implementations, one function per paper figure/table.
//!
//! All functions are pure with respect to their [`Scale`]: the same scale
//! and seed regenerate identical series (except the wall-clock columns of
//! Table III and Fig. 14, which measure real time).

use crate::output::Experiment;
use crate::scale::Scale;
use priste_core::runner::{self, Aggregate};
use priste_core::{DeltaLocSource, PlmSource, PristeConfig};
use priste_data::{geolife_sim, World};
use priste_event::{dsl::parse_event, Pattern, StEvent};
use priste_geo::{GridMap, Region};
use priste_linalg::Vector;
use priste_lppm::{Lppm, PlanarLaplace};
use priste_markov::{gaussian_kernel_chain, Homogeneous, MarkovModel};
use priste_quantify::{naive, TheoremBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Builds the §V.A synthetic world at the experiment scale.
///
/// # Panics
/// Panics on construction failure (experiment configs are static).
pub fn synthetic_world(scale: &Scale, sigma: f64) -> (GridMap, MarkovModel) {
    let grid = GridMap::new(scale.grid_side, scale.grid_side, 1.0).expect("static grid");
    let chain = gaussian_kernel_chain(&grid, sigma).expect("static sigma");
    (grid, chain)
}

/// Builds the GeoLife-substitute world at the experiment scale.
///
/// # Panics
/// Panics on construction failure (experiment configs are static).
pub fn geolife_world(scale: &Scale) -> World {
    geolife_sim::build(&geolife_sim::CommuterConfig {
        rows: scale.geolife_side,
        cols: scale.geolife_side,
        cell_size_km: scale.geolife_cell_km,
        days: 40,
        steps_per_day: scale.geolife_horizon.max(12),
        seed: scale.seed,
        ..Default::default()
    })
    .expect("simulator config is valid")
}

/// The paper's event `PRESENCE(S={1:10}, T={start:end})`, with the region
/// scaled to one grid row at non-paper scales so the protected fraction of
/// the map stays comparable.
///
/// # Panics
/// Panics on parse failure (the spec is generated).
pub fn presence_event(scale: &Scale, start: usize, end: usize) -> StEvent {
    let width = if scale.grid_side >= 20 {
        10
    } else {
        scale.grid_side
    };
    parse_event(
        &format!("PRESENCE(S={{1:{width}}}, T={{{start}:{end}}})"),
        scale.num_cells(),
    )
    .expect("generated spec parses")
}

/// PATTERN analogue of [`presence_event`]: the same region at every
/// timestamp of the window (the appendix experiments' shape).
///
/// # Panics
/// Panics on construction failure.
pub fn pattern_event(scale: &Scale, start: usize, end: usize) -> StEvent {
    let width = if scale.grid_side >= 20 {
        10
    } else {
        scale.grid_side
    };
    let region = Region::from_one_based_range(scale.num_cells(), 1, width).expect("static range");
    Pattern::new(vec![region; end - start + 1], start)
        .expect("static pattern")
        .into()
}

fn epsilon_label(eps: f64) -> String {
    format!("eps={eps}")
}

fn alpha_label(alpha: f64) -> String {
    format!("{alpha}-PLM")
}

/// Runs Algorithm 2 for one parameter point and returns the aggregate.
///
/// # Panics
/// Panics on framework errors (the experiment worlds are well-formed).
pub fn run_plm_point(
    events: &[StEvent],
    grid: &GridMap,
    chain: &MarkovModel,
    alpha: f64,
    config: &PristeConfig,
    scale: &Scale,
    horizon: usize,
) -> Aggregate {
    let factory = {
        let grid = grid.clone();
        move || PlmSource::new(grid.clone(), alpha)
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    runner::run_many_parallel(
        events, chain, grid, config, &factory, horizon, scale.runs, scale.seed, threads,
    )
    .expect("experiment run")
}

/// Runs Algorithm 3 (δ-location-set) for one parameter point.
///
/// # Panics
/// Panics on framework errors.
#[allow(clippy::too_many_arguments)]
pub fn run_delta_point(
    events: &[StEvent],
    grid: &GridMap,
    chain: &MarkovModel,
    alpha: f64,
    delta: f64,
    config: &PristeConfig,
    scale: &Scale,
    horizon: usize,
) -> Aggregate {
    let factory = {
        let grid = grid.clone();
        let chain = chain.clone();
        let m = grid.num_cells();
        move || {
            DeltaLocSource::new(
                grid.clone(),
                delta,
                alpha,
                chain.clone(),
                Vector::uniform(m),
            )
        }
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    runner::run_many_parallel(
        events, chain, grid, config, &factory, horizon, scale.runs, scale.seed, threads,
    )
    .expect("experiment run")
}

/// Fig. 7: per-timestamp mean budget, event `T={4:8}`.
/// Panel (a): fixed 0.2-PLM across ε; panel (b): fixed ε=0.5 across α-PLMs.
pub fn fig7(scale: &Scale) -> Vec<Experiment> {
    presence_panels(
        scale,
        4,
        8,
        "fig7",
        "PRESENCE(S={1:10}, T={4:8}) on synthetic data",
    )
}

/// Fig. 8: same panels with the event window moved to `T={16:20}`.
pub fn fig8(scale: &Scale) -> Vec<Experiment> {
    presence_panels(
        scale,
        16,
        20,
        "fig8",
        "PRESENCE(S={1:10}, T={16:20}) on synthetic data",
    )
}

fn presence_panels(
    scale: &Scale,
    start: usize,
    end: usize,
    id: &str,
    caption: &str,
) -> Vec<Experiment> {
    let (grid, chain) = synthetic_world(scale, 1.0);
    let events = vec![presence_event(scale, start, end)];
    let x: Vec<f64> = (1..=scale.horizon).map(|t| t as f64).collect();

    let mut panel_a = Experiment::new(
        &format!("{id}a"),
        &format!("{caption} — 0.2-PLM for different ε"),
        "time",
        x.clone(),
    );
    for eps in [0.1, 0.5, 1.0] {
        let agg = run_plm_point(
            &events,
            &grid,
            &chain,
            0.2,
            &PristeConfig::with_epsilon(eps),
            scale,
            scale.horizon,
        );
        panel_a.push_series(epsilon_label(eps), agg.budget_by_t);
    }

    let mut panel_b = Experiment::new(
        &format!("{id}b"),
        &format!("{caption} — different PLMs for ε = 0.5"),
        "time",
        x,
    );
    for alpha in [0.1, 0.5, 1.0] {
        let agg = run_plm_point(
            &events,
            &grid,
            &chain,
            alpha,
            &PristeConfig::with_epsilon(0.5),
            scale,
            scale.horizon,
        );
        panel_b.push_series(alpha_label(alpha), agg.budget_by_t);
    }
    vec![panel_a, panel_b]
}

/// Fig. 9: protecting the Fig. 7 and Fig. 8 events *simultaneously*.
pub fn fig9(scale: &Scale) -> Vec<Experiment> {
    let (grid, chain) = synthetic_world(scale, 1.0);
    let events = vec![presence_event(scale, 4, 8), presence_event(scale, 16, 20)];
    let x: Vec<f64> = (1..=scale.horizon).map(|t| t as f64).collect();

    let mut panel_a = Experiment::new(
        "fig9a",
        "Two events T={4:8} and T={16:20} — 0.2-PLM for different ε",
        "time",
        x.clone(),
    );
    for eps in [0.1, 0.5, 1.0] {
        let agg = run_plm_point(
            &events,
            &grid,
            &chain,
            0.2,
            &PristeConfig::with_epsilon(eps),
            scale,
            scale.horizon,
        );
        panel_a.push_series(epsilon_label(eps), agg.budget_by_t);
    }
    let mut panel_b = Experiment::new(
        "fig9b",
        "Two events — different PLMs for ε = 0.5",
        "time",
        x,
    );
    for alpha in [0.1, 0.5, 1.0] {
        let agg = run_plm_point(
            &events,
            &grid,
            &chain,
            alpha,
            &PristeConfig::with_epsilon(0.5),
            scale,
            scale.horizon,
        );
        panel_b.push_series(alpha_label(alpha), agg.budget_by_t);
    }
    vec![panel_a, panel_b]
}

/// Appendix experiment: Fig. 7-style per-timestamp utility for a PATTERN
/// event ("the results of protecting PATTERN event are included in
/// Appendices").
pub fn fig_pattern(scale: &Scale) -> Vec<Experiment> {
    let (grid, chain) = synthetic_world(scale, 1.0);
    let events = vec![pattern_event(scale, 4, 8)];
    let x: Vec<f64> = (1..=scale.horizon).map(|t| t as f64).collect();
    let mut panel = Experiment::new(
        "fig_pattern",
        "PATTERN(S repeated, T={4:8}) on synthetic data — 0.2-PLM for different ε",
        "time",
        x,
    );
    for eps in [0.1, 0.5, 1.0] {
        let agg = run_plm_point(
            &events,
            &grid,
            &chain,
            0.2,
            &PristeConfig::with_epsilon(eps),
            scale,
            scale.horizon,
        );
        panel.push_series(epsilon_label(eps), agg.budget_by_t);
    }
    vec![panel]
}

/// Fig. 10: PriSTE with δ-location-set privacy (Algorithm 3), horizon 20.
pub fn fig10(scale: &Scale) -> Vec<Experiment> {
    let (grid, chain) = synthetic_world(scale, 1.0);
    let events = vec![presence_event(scale, 4, 8)];
    let horizon = 20.min(scale.horizon);
    let x: Vec<f64> = (1..=horizon).map(|t| t as f64).collect();
    let delta = 0.2;

    let mut panel_a = Experiment::new(
        "fig10a",
        "PRESENCE(T={4:8}), 0.2-PLM with δ=0.2 location-set privacy, varying ε",
        "time",
        x.clone(),
    );
    for eps in [0.1, 0.5, 1.0] {
        let agg = run_delta_point(
            &events,
            &grid,
            &chain,
            0.2,
            delta,
            &PristeConfig::with_epsilon(eps),
            scale,
            horizon,
        );
        panel_a.push_series(epsilon_label(eps), agg.budget_by_t);
    }
    let mut panel_b = Experiment::new(
        "fig10b",
        "Different PLMs with δ=0.2 location-set privacy at ε = 0.5",
        "time",
        x,
    );
    for alpha in [0.1, 0.5, 1.0] {
        let agg = run_delta_point(
            &events,
            &grid,
            &chain,
            alpha,
            delta,
            &PristeConfig::with_epsilon(0.5),
            scale,
            horizon,
        );
        panel_b.push_series(alpha_label(alpha), agg.budget_by_t);
    }
    vec![panel_a, panel_b]
}

/// Fig. 11: GeoLife(-substitute) data, α-PLM sweep × ε sweep; left panel
/// mean budget, right panel mean Euclidean distance (km).
pub fn fig11(scale: &Scale) -> Vec<Experiment> {
    let world = geolife_world(scale);
    let gl_scale = Scale {
        grid_side: scale.geolife_side,
        ..scale.clone()
    };
    let events = vec![presence_event(&gl_scale, 4, 8)];
    let eps_grid = [0.1, 0.5, 1.0, 2.0];
    let alphas = [0.5, 1.0, 3.0, 5.0];
    let x: Vec<f64> = eps_grid.to_vec();

    let mut budget_panel = Experiment::new(
        "fig11_budget",
        "GeoLife-sim: mean budgets of PLMs vs ε (PRESENCE T={4:8})",
        "epsilon",
        x.clone(),
    );
    let mut euclid_panel = Experiment::new(
        "fig11_euclid",
        "GeoLife-sim: mean Euclidean distance (km) of PLMs vs ε",
        "epsilon",
        x,
    );
    for &alpha in &alphas {
        let mut budgets = Vec::new();
        let mut dists = Vec::new();
        for &eps in &eps_grid {
            let agg = run_plm_point(
                &events,
                &world.grid,
                &world.chain,
                alpha,
                &PristeConfig::with_epsilon(eps),
                scale,
                scale.geolife_horizon,
            );
            budgets.push(agg.mean_budget);
            dists.push(agg.mean_euclid_km);
        }
        budget_panel.push_series(alpha_label(alpha), budgets);
        euclid_panel.push_series(alpha_label(alpha), dists);
    }
    vec![budget_panel, euclid_panel]
}

/// Fig. 12: GeoLife(-substitute), 0.5-PLM with δ-location-set privacy,
/// δ sweep × ε sweep.
pub fn fig12(scale: &Scale) -> Vec<Experiment> {
    let world = geolife_world(scale);
    let gl_scale = Scale {
        grid_side: scale.geolife_side,
        ..scale.clone()
    };
    let events = vec![presence_event(&gl_scale, 4, 8)];
    let eps_grid = [0.1, 1.0, 2.0, 3.0];
    let deltas = [0.1, 0.3, 0.5, 0.7];
    let x: Vec<f64> = eps_grid.to_vec();

    let mut budget_panel = Experiment::new(
        "fig12_budget",
        "GeoLife-sim: 0.5-PLM with δ-location-set privacy, mean budget vs ε",
        "epsilon",
        x.clone(),
    );
    let mut euclid_panel = Experiment::new(
        "fig12_euclid",
        "GeoLife-sim: 0.5-PLM with δ-location-set privacy, mean distance (km) vs ε",
        "epsilon",
        x,
    );
    for &delta in &deltas {
        let mut budgets = Vec::new();
        let mut dists = Vec::new();
        for &eps in &eps_grid {
            let agg = run_delta_point(
                &events,
                &world.grid,
                &world.chain,
                0.5,
                delta,
                &PristeConfig::with_epsilon(eps),
                scale,
                scale.geolife_horizon,
            );
            budgets.push(agg.mean_budget);
            dists.push(agg.mean_euclid_km);
        }
        budget_panel.push_series(format!("delta={delta}"), budgets);
        euclid_panel.push_series(format!("delta={delta}"), dists);
    }
    vec![budget_panel, euclid_panel]
}

/// Fig. 13: synthetic data, 1-PLM, transition-pattern strength sweep
/// (σ ∈ {0.01, 0.1, 1, 10}) × ε sweep.
pub fn fig13(scale: &Scale) -> Vec<Experiment> {
    let eps_grid = [0.1, 0.5, 1.0, 2.0];
    let sigmas = [0.01, 0.1, 1.0, 10.0];
    let x: Vec<f64> = eps_grid.to_vec();
    let mut budget_panel = Experiment::new(
        "fig13_budget",
        "Synthetic: 1-PLM mean budget vs ε across mobility-pattern strengths σ",
        "epsilon",
        x.clone(),
    );
    let mut euclid_panel = Experiment::new(
        "fig13_euclid",
        "Synthetic: 1-PLM mean distance (km) vs ε across σ",
        "epsilon",
        x,
    );
    for &sigma in &sigmas {
        let (grid, chain) = synthetic_world(scale, sigma);
        let events = vec![presence_event(scale, 4, 8)];
        let mut budgets = Vec::new();
        let mut dists = Vec::new();
        for &eps in &eps_grid {
            let agg = run_plm_point(
                &events,
                &grid,
                &chain,
                1.0,
                &PristeConfig::with_epsilon(eps),
                scale,
                scale.horizon,
            );
            budgets.push(agg.mean_budget);
            dists.push(agg.mean_euclid_km);
        }
        budget_panel.push_series(format!("sigma={sigma}"), budgets);
        euclid_panel.push_series(format!("sigma={sigma}"), dists);
    }
    vec![budget_panel, euclid_panel]
}

/// Fig. 14: runtime of the quantification — exponential baseline
/// (Algorithm 4) vs the two-possible-world method — against event length
/// (width 5) and event width (length 5).
///
/// The baseline visits `width^length` trajectories; points whose count
/// exceeds `baseline_cap` are reported as `NaN` (the paper plots them on a
/// log axis measured on their hardware; we measure what fits and document
/// the cap in EXPERIMENTS.md).
pub fn fig14(scale: &Scale, baseline_cap: u128) -> Vec<Experiment> {
    let side = scale.grid_side.max(15);
    let grid = GridMap::new(side, side, 1.0).expect("static grid");
    let chain = gaussian_kernel_chain(&grid, 1.0).expect("static sigma");
    let m = grid.num_cells();
    let plm = PlanarLaplace::new(grid, 1.0).expect("static alpha");

    let mut by_length = Experiment::new(
        "fig14_length",
        "Runtime (s) vs event length at width 5: baseline (PATTERN) vs PriSTE",
        "event length",
        (5..=15).map(|l| l as f64).collect(),
    );
    let mut base_series = Vec::new();
    let mut fast_series = Vec::new();
    for len in 5..=15 {
        let (b, f) = time_pattern_point(&chain, &plm, m, len, 5, 2, scale.seed, baseline_cap);
        base_series.push(b);
        fast_series.push(f);
    }
    by_length.push_series("baseline (Pattern)", base_series);
    by_length.push_series("PriSTE (Pattern)", fast_series);

    let mut by_width = Experiment::new(
        "fig14_width",
        "Runtime (s) vs event width at length 5: baseline (PATTERN) vs PriSTE",
        "event width",
        (5..=15).map(|w| w as f64).collect(),
    );
    let mut base_series = Vec::new();
    let mut fast_series = Vec::new();
    for width in 5..=15 {
        let (b, f) = time_pattern_point(&chain, &plm, m, 5, width, 2, scale.seed, baseline_cap);
        base_series.push(b);
        fast_series.push(f);
    }
    by_width.push_series("baseline (Pattern)", base_series);
    by_width.push_series("PriSTE (Pattern)", fast_series);

    vec![by_length, by_width]
}

/// Times one (length, width) point: both methods compute the same joint
/// probability `Pr(PATTERN, o_1..o_end)` for a fixed observation stream.
/// Returns `(baseline_seconds, priste_seconds)`; the baseline is `NaN` when
/// its trajectory count exceeds `cap`.
#[allow(clippy::too_many_arguments)]
fn time_pattern_point(
    chain: &MarkovModel,
    plm: &PlanarLaplace,
    m: usize,
    length: usize,
    width: usize,
    start: usize,
    seed: u64,
    cap: u128,
) -> (f64, f64) {
    let region = Region::from_one_based_range(m, 1, width).expect("width fits grid");
    let pattern = Pattern::new(vec![region; length], start).expect("static pattern");
    let event: StEvent = pattern.clone().into();
    let end = event.end();
    let provider = Homogeneous::new(chain.clone());
    let pi = Vector::uniform(m);

    // A fixed observation stream (released cells 1..end cycling over the map).
    let mut rng = StdRng::seed_from_u64(seed);
    let obs: Vec<priste_geo::CellId> = chain
        .sample_trajectory(priste_geo::CellId(0), end, &mut rng)
        .expect("sampling");
    let cols: Vec<Vector> = obs.iter().map(|&o| plm.emission_column(o)).collect();

    // PriSTE: incremental two-world joint over the full window.
    let t0 = Instant::now();
    let mut builder = TheoremBuilder::new(&event, &provider).expect("domains match");
    let mut fast_joint = 0.0;
    for (i, col) in cols.iter().enumerate() {
        let inputs = builder.candidate(col).expect("valid column");
        if i + 1 == cols.len() {
            fast_joint = pi.dot(&inputs.b).expect("length") * inputs.bc_log_scale.exp();
        }
        builder.commit(col.clone()).expect("valid column");
    }
    let fast_s = t0.elapsed().as_secs_f64();

    // Baseline: Algorithm 4 over the window (observations inside it).
    let count = (width as u128).saturating_pow(length as u32);
    let base_s = if count > cap {
        f64::NAN
    } else {
        let window_cols = &cols[start - 1..end];
        let t0 = Instant::now();
        let slow_joint =
            naive::pattern_joint_algorithm4(&pattern, &provider, &pi, window_cols, cap)
                .expect("within cap");
        let elapsed = t0.elapsed().as_secs_f64();
        // Cross-check the two methods on the same quantity: the baseline
        // ignores observations before `start`, so compare conditionals via
        // ratio only when start == 1; otherwise just sanity-bound.
        assert!(slow_joint.is_finite() && slow_joint >= 0.0);
        assert!(fast_joint.is_finite() && fast_joint >= 0.0);
        elapsed
    };
    (base_s, fast_s)
}

/// Table III: conservative release under QP deadlines. Returns one
/// experiment whose x axis indexes the thresholds and whose series are the
/// table's columns.
pub fn table3(scale: &Scale) -> Experiment {
    let (grid, chain) = synthetic_world(scale, 1.0);
    let events = vec![presence_event(scale, 4, 8)];
    // Deadlines chosen around the full-scan time of the simplex checker at
    // this grid size (measured: tens of μs at m=100, ~1 ms at m=400).
    let thresholds: Vec<(String, Option<std::time::Duration>)> = vec![
        ("2us".into(), Some(std::time::Duration::from_micros(2))),
        ("10us".into(), Some(std::time::Duration::from_micros(10))),
        ("50us".into(), Some(std::time::Duration::from_micros(50))),
        ("250us".into(), Some(std::time::Duration::from_micros(250))),
        ("1ms".into(), Some(std::time::Duration::from_millis(1))),
        ("none".into(), None),
    ];
    let mut runtime_s = Vec::new();
    let mut conservative = Vec::new();
    let mut budgets = Vec::new();
    let mut euclids = Vec::new();
    for (_, deadline) in &thresholds {
        let mut config = PristeConfig::with_epsilon(0.5);
        config.qp_deadline = *deadline;
        let t0 = Instant::now();
        let agg = run_plm_point(&events, &grid, &chain, 0.2, &config, scale, scale.horizon);
        runtime_s.push(t0.elapsed().as_secs_f64() / scale.runs as f64);
        conservative.push(agg.mean_conservative_hits);
        budgets.push(agg.mean_budget);
        euclids.push(agg.mean_euclid_km);
    }
    let mut exp = Experiment::new(
        "table3",
        "Runtime vs QP threshold (0.2-PLM, ε=0.5): per-run runtime, conservative releases, budget, distance",
        "threshold idx",
        (0..thresholds.len()).map(|i| i as f64).collect(),
    );
    exp.push_series("ave total runtime (s)", runtime_s);
    exp.push_series("# conservative release", conservative);
    exp.push_series("ave privacy budget", budgets);
    exp.push_series("ave Euclidean dist (km)", euclids);
    println!(
        "threshold labels: {:?}",
        thresholds
            .iter()
            .map(|(l, _)| l.clone())
            .collect::<Vec<_>>()
    );
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worlds_build_at_smoke_scale() {
        let scale = Scale::smoke();
        let (grid, chain) = synthetic_world(&scale, 1.0);
        assert_eq!(grid.num_cells(), scale.num_cells());
        chain.transition().validate_stochastic().unwrap();
        let world = geolife_world(&scale);
        assert_eq!(
            world.grid.num_cells(),
            scale.geolife_side * scale.geolife_side
        );
    }

    #[test]
    fn events_scale_with_grid() {
        let scale = Scale::smoke();
        let ev = presence_event(&scale, 2, 4);
        assert_eq!(ev.width(), scale.grid_side);
        assert_eq!((ev.start(), ev.end()), (2, 4));
        let paper = Scale::paper();
        let ev = presence_event(&paper, 4, 8);
        assert_eq!(ev.width(), 10);
        let pat = pattern_event(&scale, 4, 6);
        assert_eq!(pat.window_len(), 3);
    }

    #[test]
    fn fig7_smoke_has_expected_shape() {
        let mut scale = Scale::smoke();
        scale.runs = 2;
        scale.horizon = 10;
        let panels = fig7(&scale);
        assert_eq!(panels.len(), 2);
        assert_eq!(panels[0].series.len(), 3);
        assert_eq!(panels[0].x.len(), 10);
        // Budgets never exceed the base mechanism's.
        for s in &panels[0].series {
            for &b in &s.y {
                assert!((0.0..=0.2 + 1e-12).contains(&b), "budget {b}");
            }
        }
        // Larger ε keeps more budget on average.
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&panels[0].series[0].y) <= mean(&panels[0].series[2].y) + 1e-9);
    }

    #[test]
    fn fig14_smoke_runs_and_baseline_is_slower_at_scale() {
        let mut scale = Scale::smoke();
        scale.grid_side = 15;
        let panels = fig14(&scale, 1 << 22);
        assert_eq!(panels.len(), 2);
        let by_length = &panels[0];
        // Large lengths exceed the baseline cap → NaN; PriSTE always runs.
        let base = &by_length.series[0].y;
        let fast = &by_length.series[1].y;
        assert!(base.iter().any(|v| v.is_nan()));
        assert!(fast.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn table3_deadlines_grade_conservatism() {
        let mut scale = Scale::smoke();
        scale.runs = 2;
        scale.horizon = 8;
        let exp = table3(&scale);
        let conservative = &exp.series[1].y;
        // The tightest threshold must be at least as conservative as none.
        let first = conservative.first().copied().unwrap();
        let last = conservative.last().copied().unwrap();
        assert!(first >= last, "tight {first} < none {last}");
        assert_eq!(last, 0.0, "no deadline must never be conservative");
    }
}
