//! Experiment output: aligned console tables and CSV files.

use std::io::Write;
use std::path::{Path, PathBuf};

/// One plotted line (or table column family).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label, e.g. `"ε=0.5"` or `"baseline (Pattern)"`.
    pub label: String,
    /// Y values, aligned with the experiment's shared x axis.
    pub y: Vec<f64>,
}

/// One regenerated figure panel or table.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Stable identifier, e.g. `"fig7a"`; used as the CSV file name.
    pub id: String,
    /// Human description, e.g. the paper caption.
    pub description: String,
    /// X-axis name (e.g. `"time"`, `"epsilon"`, `"event length"`).
    pub x_name: String,
    /// Shared x values.
    pub x: Vec<f64>,
    /// The series.
    pub series: Vec<Series>,
}

impl Experiment {
    /// Creates an empty experiment shell.
    pub fn new(id: &str, description: &str, x_name: &str, x: Vec<f64>) -> Self {
        Experiment {
            id: id.to_string(),
            description: description.to_string(),
            x_name: x_name.to_string(),
            x,
            series: Vec::new(),
        }
    }

    /// Adds a series, validating alignment with the x axis.
    ///
    /// # Panics
    /// Panics if `y.len() != x.len()` (experiment construction bug).
    pub fn push_series(&mut self, label: impl Into<String>, y: Vec<f64>) {
        assert_eq!(y.len(), self.x.len(), "series misaligned with x axis");
        self.series.push(Series {
            label: label.into(),
            y,
        });
    }
}

/// Prints an aligned table of the experiment to stdout.
pub fn print_experiment(exp: &Experiment) {
    println!("\n== {} — {}", exp.id, exp.description);
    print!("{:>14}", exp.x_name);
    for s in &exp.series {
        print!(" | {:>16}", s.label);
    }
    println!();
    for (i, x) in exp.x.iter().enumerate() {
        print!("{x:>14.4}");
        for s in &exp.series {
            print!(" | {:>16.6}", s.y[i]);
        }
        println!();
    }
}

/// Writes the experiment as `<dir>/<id>.csv` and returns the path.
///
/// # Errors
/// I/O failures creating the directory or writing the file.
pub fn write_csv(exp: &Experiment, dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.csv", exp.id));
    let mut out = std::io::BufWriter::new(std::fs::File::create(&path)?);
    write!(out, "{}", exp.x_name)?;
    for s in &exp.series {
        write!(out, ",{}", s.label.replace(',', ";"))?;
    }
    writeln!(out)?;
    for (i, x) in exp.x.iter().enumerate() {
        write!(out, "{x}")?;
        for s in &exp.series {
            write!(out, ",{}", s.y[i])?;
        }
        writeln!(out)?;
    }
    out.flush()?;
    Ok(path)
}

/// Default output directory (`target/experiments`).
pub fn default_output_dir() -> PathBuf {
    PathBuf::from("target").join("experiments")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip_structure() {
        let mut exp = Experiment::new("test_fig", "unit test", "time", vec![1.0, 2.0]);
        exp.push_series("a", vec![0.1, 0.2]);
        exp.push_series("b,with,commas", vec![0.3, 0.4]);
        let dir = std::env::temp_dir().join("priste_bench_test");
        let path = write_csv(&exp, &dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let mut lines = content.lines();
        assert_eq!(lines.next().unwrap(), "time,a,b;with;commas");
        assert_eq!(lines.next().unwrap(), "1,0.1,0.3");
        assert_eq!(lines.next().unwrap(), "2,0.2,0.4");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_series_panics() {
        let mut exp = Experiment::new("x", "d", "t", vec![1.0]);
        exp.push_series("bad", vec![0.1, 0.2]);
    }
}
