//! Experiment harness for the PriSTE evaluation (paper §V).
//!
//! Every table and figure of the paper has (a) a binary in `src/bin/` that
//! regenerates its data series (printed as a table and written as CSV under
//! `target/experiments/`), and (b) a Criterion bench in `benches/`
//! exercising its computational core. See DESIGN.md for the experiment
//! index and EXPERIMENTS.md for measured-vs-paper comparisons.
//!
//! Scale control: the paper runs 20×20 grids, 50 timestamps, 100 runs per
//! point. That is reproducible here ([`Scale::paper`]) but takes hours for
//! the full suite; the default scale keeps every figure's *shape* while
//! finishing in minutes. Binaries accept `--paper`, `--runs N` and
//! `--seed N`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod output;
pub mod scale;

pub use output::{print_experiment, write_csv, Experiment, Series};
pub use scale::Scale;
