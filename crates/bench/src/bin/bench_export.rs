//! Machine-readable benchmark exporter with a regression gate.
//!
//! Three suites, each written as a flat JSON artifact so CI and the repo
//! root keep a queryable performance record without parsing Criterion's
//! console output:
//!
//! * `online` (`BENCH_online.json`) — session-service hot paths: audit
//!   ingest (with and without a live metrics registry attached), enforced
//!   release, the durability tax, and crash/recover round-trips.
//! * `quantify` (`BENCH_quantify.json`) — the incremental two-world
//!   engine: quantifier construction and per-step observe throughput.
//! * `calibrate` (`BENCH_calibrate.json`) — the three budget planners and
//!   guarded-release throughput behind the calibration ladder.
//! * `serve` (`BENCH_serve.json`) — the HTTP daemon end-to-end: an
//!   in-process `priste_serve::Server` on an ephemeral port driven by the
//!   closed-loop load generator; client-observed p50/p90/p99 latency and
//!   sustained throughput over the full request count.
//! * `cluster` (`BENCH_cluster.json`) — the router tier: router-added
//!   median latency versus hitting a worker directly (stall-free), and
//!   ingest throughput scaling across 1/2/4 workers whose per-request
//!   commit is artificially stalled so sharding — not the single bench
//!   CPU — is what's being measured.
//!
//! Usage: `bench_export [--out PATH] [--suite online|quantify|calibrate|serve|cluster|all]
//! [--users N] [--steps N] [--reps N] [--dense-max-cells M] [--compare DIR]
//! [--noise F] [--markdown]`
//!
//! The `online` and `quantify` suites carry a grid-size axis up to
//! `m = 10⁴` cells on the banded §V.A Gaussian world, comparing the dense
//! `O(m²)` and CSR `O(nnz)` transition backends per observation.
//! `--dense-max-cells M` caps the *dense* comparator (the CSR side always
//! runs the full axis — it is cheap by construction); CI smoke passes
//! `--dense-max-cells 2500` to skip the one genuinely slow dense point.
//!
//! `--compare DIR` re-reads the committed `BENCH_<suite>.json` artifacts
//! from DIR and diffs the fresh run against them, direction-aware (rates
//! regress downward, latencies and ratios regress upward). Any metric
//! drifting beyond the `--noise` band (default 0.05 = ±5%) fails the run
//! with exit code 1; metrics absent from the committed file are skipped,
//! so new instrumentation can land before its baseline. `--markdown`
//! additionally renders the comparison as a GitHub-flavored before/after
//! delta table on stdout — paste it straight into a PR description.
//!
//! The defaults (500 users, 8 steps, 5 reps) finish in a few seconds; CI
//! runs `--users 50 --steps 4 --reps 2` as a smoke test of the exporter
//! and the comparison gate, not of the numbers.

use priste_calibrate::{
    plan_greedy, plan_knapsack, plan_uniform_split, CalibratedMechanism, GuardConfig,
    PlanarLaplaceError, PlannerConfig,
};
use priste_cluster::{Router, RouterConfig, ShardMap};
use priste_event::{Presence, StEvent};
use priste_geo::{CellId, GridMap, Region};
use priste_linalg::Vector;
use priste_lppm::{Lppm, PlanarLaplace};
use priste_markov::{
    gaussian_kernel_chain, gaussian_kernel_chain_sparse, Homogeneous, MarkovModel,
    TransitionProvider,
};
use priste_obs::json::{parse, Json};
use priste_obs::Registry;
use priste_online::{DurableOptions, OnlineConfig, SessionManager, UserId};
use priste_quantify::IncrementalTwoWorld;
use priste_serve::{LoadMode, LoadgenOptions, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 8;

struct Opts {
    out: PathBuf,
    suite: String,
    users: usize,
    steps: usize,
    reps: usize,
    dense_max_cells: usize,
    compare: Option<PathBuf>,
    noise: f64,
    markdown: bool,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        out: PathBuf::from("BENCH_online.json"),
        suite: "all".to_owned(),
        users: 500,
        steps: 8,
        reps: 5,
        dense_max_cells: 10_000,
        compare: None,
        noise: 0.05,
        markdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--out" => opts.out = PathBuf::from(value("--out")),
            "--suite" => opts.suite = value("--suite"),
            "--users" => opts.users = value("--users").parse().expect("--users N"),
            "--steps" => opts.steps = value("--steps").parse().expect("--steps N"),
            "--reps" => opts.reps = value("--reps").parse().expect("--reps N"),
            "--dense-max-cells" => {
                opts.dense_max_cells = value("--dense-max-cells")
                    .parse()
                    .expect("--dense-max-cells M")
            }
            "--compare" => opts.compare = Some(PathBuf::from(value("--compare"))),
            "--noise" => opts.noise = value("--noise").parse().expect("--noise F"),
            "--markdown" => opts.markdown = true,
            other => panic!("unknown flag {other}; see the module docs for usage"),
        }
    }
    assert!(
        matches!(
            opts.suite.as_str(),
            "online" | "quantify" | "calibrate" | "serve" | "cluster" | "all"
        ),
        "--suite must be online, quantify, calibrate, serve, cluster or all"
    );
    assert!(
        opts.noise >= 0.0 && opts.noise.is_finite(),
        "--noise must be a non-negative fraction"
    );
    assert!(
        !opts.markdown || opts.compare.is_some(),
        "--markdown renders the comparison table and so requires --compare DIR"
    );
    opts
}

fn world() -> (GridMap, Arc<Homogeneous>, StEvent) {
    let grid = GridMap::new(6, 6, 1.0).expect("grid");
    let m = grid.num_cells();
    let chain = gaussian_kernel_chain(&grid, 1.0).expect("chain");
    let event: StEvent = Presence::new(
        Region::from_one_based_range(m, 1, m / 4).expect("range"),
        2,
        5,
    )
    .expect("presence")
    .into();
    (grid, Arc::new(Homogeneous::new(chain)), event)
}

fn config() -> OnlineConfig {
    OnlineConfig {
        epsilon: 1.0,
        num_shards: SHARDS,
        linger: 2,
        budget: 1e9,
    }
}

fn service(
    provider: &Arc<Homogeneous>,
    event: &StEvent,
    users: usize,
) -> SessionManager<Arc<Homogeneous>> {
    let m = provider.num_states();
    let mut svc = SessionManager::new(Arc::clone(provider), config()).expect("service");
    let tpl = svc.register_template(event.clone()).expect("template");
    for u in 0..users as u64 {
        svc.add_user(UserId(u), Vector::uniform(m)).expect("user");
        svc.attach_event(UserId(u), tpl).expect("attach");
    }
    svc
}

fn batch(grid: &GridMap, users: usize, seed: u64) -> Vec<(UserId, Vector)> {
    let m = grid.num_cells();
    let plm = PlanarLaplace::new(grid.clone(), 0.8).expect("plm");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..users as u64)
        .map(|u| {
            let cell = CellId((u as usize * 7 + seed as usize) % m);
            (UserId(u), plm.emission_column(plm.perturb(cell, &mut rng)))
        })
        .collect()
}

fn tempdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("priste-bench-export-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Best (minimum) wall-clock milliseconds of `reps` runs of `f`, after one
/// unmeasured warm-up run. The minimum is the robust estimator for a
/// regression gate: scheduler preemption and noisy neighbors only ever add
/// time, so the fastest rep is the closest view of the code's true cost —
/// medians still swing several-fold on busy CI machines.
fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

struct Metric {
    name: &'static str,
    value: f64,
    unit: &'static str,
    note: &'static str,
}

/// Units where a *larger* fresh value is an improvement. Everything else
/// (`ms`, `x`) improves downward.
fn higher_is_better(unit: &str) -> bool {
    unit.ends_with("/s")
}

fn suite_online(
    opts: &Opts,
    grid: &GridMap,
    provider: &Arc<Homogeneous>,
    event: &StEvent,
) -> Vec<Metric> {
    let feed: Vec<_> = (0..opts.steps)
        .map(|t| batch(grid, opts.users, t as u64))
        .collect();
    let observations = (opts.users * opts.steps) as f64;
    let mut metrics = Vec::new();

    // Cold start: build, register, and populate a fresh in-memory service.
    let cold_ms = best_ms(opts.reps, || {
        let svc = service(provider, event, opts.users);
        assert_eq!(svc.num_users(), opts.users);
    });
    metrics.push(Metric {
        name: "cold_start",
        value: cold_ms,
        unit: "ms",
        note: "build + register + add/attach all users, in-memory",
    });

    // Audit ingest throughput, in-memory, observability detached.
    let ingest_ms = best_ms(opts.reps, || {
        let mut svc = service(provider, event, opts.users);
        for step in &feed {
            svc.ingest_batch(step).expect("ingest");
        }
    });
    metrics.push(Metric {
        name: "audit_ingest",
        value: observations / ((ingest_ms - cold_ms).max(1e-6) / 1e3),
        unit: "obs/s",
        note: "sequential ingest_batch, cold-start cost subtracted",
    });

    // The observability tax: the same stream with a live metrics registry
    // attached (per-batch latency/size histograms and occupancy gauges on).
    let observed_ms = best_ms(opts.reps, || {
        let registry = Registry::new();
        let mut svc = service(provider, event, opts.users);
        svc.observe(&registry);
        for step in &feed {
            svc.ingest_batch(step).expect("ingest");
        }
    });
    metrics.push(Metric {
        name: "audit_ingest_observed",
        value: observations / ((observed_ms - cold_ms).max(1e-6) / 1e3),
        unit: "obs/s",
        note: "ingest with a live metrics registry attached, cold-start subtracted",
    });
    metrics.push(Metric {
        name: "obs_overhead",
        value: (observed_ms - cold_ms).max(1e-6) / (ingest_ms - cold_ms).max(1e-6),
        unit: "x",
        note: "observed vs unobserved ingest wall-clock ratio",
    });

    // The durability tax: the same stream journaled to a per-shard WAL
    // (fsync off — codec + buffered-write cost only).
    let durable_ms = best_ms(opts.reps, || {
        let dir = tempdir("tax");
        let mut svc = service(provider, event, opts.users);
        svc.make_durable(
            &dir,
            DurableOptions {
                fsync: false,
                snapshot_every: 0,
            },
        )
        .expect("make_durable");
        for step in &feed {
            svc.ingest_batch(step).expect("ingest");
        }
        drop(svc);
        std::fs::remove_dir_all(&dir).ok();
    });
    metrics.push(Metric {
        name: "durable_ingest",
        value: observations / ((durable_ms - cold_ms).max(1e-6) / 1e3),
        unit: "obs/s",
        note: "journaled ingest (fsync off), cold-start cost subtracted",
    });
    metrics.push(Metric {
        name: "journaling_overhead",
        value: (durable_ms - cold_ms).max(1e-6) / (ingest_ms - cold_ms).max(1e-6),
        unit: "x",
        note: "durable vs in-memory wall-clock ratio for the same stream",
    });

    // Enforced release throughput behind the calibration guard.
    let locations: Vec<(UserId, CellId)> = (0..opts.users as u64)
        .map(|u| (UserId(u), CellId((u as usize * 5) % grid.num_cells())))
        .collect();
    let release_ms = best_ms(opts.reps, || {
        let mut svc = service(provider, event, opts.users);
        svc.enable_enforcement(
            Box::new(PlanarLaplace::new(grid.clone(), 2.0).expect("plm")),
            GuardConfig {
                target_epsilon: 1.0,
                ..GuardConfig::default()
            },
        )
        .expect("enforcement");
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..opts.steps {
            for &(u, loc) in &locations {
                svc.release(u, loc, &mut rng).expect("release");
            }
        }
    });
    metrics.push(Metric {
        name: "enforced_release",
        value: observations / ((release_ms - cold_ms).max(1e-6) / 1e3),
        unit: "releases/s",
        note: "guarded release incl. mechanism sampling, cold-start subtracted",
    });

    // Recovery from a WAL-only directory (crash mid-stream, no snapshot
    // beyond the opening checkpoint) vs from a compacted snapshot.
    for (name, checkpoint, note) in [
        (
            "recover_wal_replay",
            false,
            "recover(): opening snapshot + full deterministic WAL replay",
        ),
        (
            "recover_snapshot",
            true,
            "recover(): single CRC-checked snapshot, empty WAL tail",
        ),
    ] {
        let dir = tempdir(name);
        let mut svc = service(provider, event, opts.users);
        svc.make_durable(
            &dir,
            DurableOptions {
                fsync: false,
                snapshot_every: 0,
            },
        )
        .expect("make_durable");
        for step in &feed {
            svc.ingest_batch(step).expect("ingest");
        }
        if checkpoint {
            svc.checkpoint().expect("checkpoint");
        }
        let digest = svc.state_digest();
        drop(svc); // crash

        let ms = best_ms(opts.reps, || {
            let recovered =
                SessionManager::recover(Arc::clone(provider), config(), vec![event.clone()], &dir)
                    .expect("recover");
            assert_eq!(recovered.state_digest(), digest, "recovery must be exact");
        });
        metrics.push(Metric {
            name,
            value: ms,
            unit: "ms",
            note,
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    // --- Grid-size axis: CSR-backed service ingest ------------------------
    //
    // The session manager on 50×50 and 100×100 banded worlds (σ = 0.5 km ⇒
    // ≤ 81 entries per row), proving the streaming tier inherits the
    // O(nnz)-per-observation cost. Synthetic emission columns and a small
    // fixed cohort: a PLM discretization and 500 users at m = 10⁴ would
    // measure setup, not ingest. No dense twin here — the quantify suite
    // already carries the dense/sparse comparison.
    let mut scale_rng = StdRng::seed_from_u64(29);
    for (side, name, note) in [
        (
            50usize,
            "ingest_sparse_m2500",
            "ingest_batch on a CSR-backed 50x50 world, 32 users, synthetic columns",
        ),
        (
            100,
            "ingest_sparse_m10000",
            "ingest_batch on a CSR-backed 100x100 world, 32 users, synthetic columns",
        ),
    ] {
        let grid_s = GridMap::new(side, side, 1.0).expect("grid");
        let ms = grid_s.num_cells();
        let chain = gaussian_kernel_chain_sparse(&grid_s, 0.5).expect("sparse chain");
        let provider_s = Arc::new(Homogeneous::new(chain));
        let event_s: StEvent = Presence::new(
            Region::from_one_based_range(ms, 1, ms / 4).expect("range"),
            2,
            5,
        )
        .expect("presence")
        .into();
        let users = opts.users.min(32);
        let steps = opts.steps.min(4);
        let feed: Vec<Vec<(UserId, Vector)>> = (0..steps)
            .map(|_| {
                (0..users as u64)
                    .map(|u| {
                        (
                            UserId(u),
                            Vector::from(
                                (0..ms)
                                    .map(|_| rand::Rng::gen::<f64>(&mut scale_rng) * 0.9 + 0.1)
                                    .collect::<Vec<_>>(),
                            ),
                        )
                    })
                    .collect()
            })
            .collect();
        let build = || {
            let mut svc = SessionManager::new(Arc::clone(&provider_s), config()).expect("service");
            let tpl = svc.register_template(event_s.clone()).expect("template");
            for u in 0..users as u64 {
                svc.add_user(UserId(u), Vector::uniform(ms)).expect("user");
                svc.attach_event(UserId(u), tpl).expect("attach");
            }
            svc
        };
        let cold_ms = best_ms(opts.reps, || {
            let svc = build();
            assert_eq!(svc.num_users(), users);
        });
        let ingest_ms = best_ms(opts.reps, || {
            let mut svc = build();
            for step in &feed {
                svc.ingest_batch(step).expect("ingest");
            }
        });
        metrics.push(Metric {
            name,
            value: (users * steps) as f64 / ((ingest_ms - cold_ms).max(1e-6) / 1e3),
            unit: "obs/s",
            note,
        });
    }

    metrics
}

fn suite_quantify(
    opts: &Opts,
    grid: &GridMap,
    provider: &Arc<Homogeneous>,
    event: &StEvent,
) -> Vec<Metric> {
    let m = grid.num_cells();
    let plm = PlanarLaplace::new(grid.clone(), 0.8).expect("plm");
    let mut rng = StdRng::seed_from_u64(11);
    let columns: Vec<Vector> = (0..opts.steps)
        .map(|t| plm.emission_column(plm.perturb(CellId((t * 7) % m), &mut rng)))
        .collect();
    let mut metrics = Vec::new();

    let cold_ms = best_ms(opts.reps, || {
        let q = IncrementalTwoWorld::new(event.clone(), Arc::clone(provider), Vector::uniform(m))
            .expect("quantifier");
        assert_eq!(q.observed(), 0);
    });
    metrics.push(Metric {
        name: "quantifier_cold_start",
        value: cold_ms,
        unit: "ms",
        note: "IncrementalTwoWorld construction (prior lifting included)",
    });

    // Long enough to dwarf timer granularity: cycle the columns so one
    // rep streams hundreds of steps through a single quantifier.
    let total = (opts.steps * 64).max(256);
    let observe_ms = best_ms(opts.reps, || {
        let mut q =
            IncrementalTwoWorld::new(event.clone(), Arc::clone(provider), Vector::uniform(m))
                .expect("quantifier");
        for i in 0..total {
            q.observe(&columns[i % columns.len()]).expect("observe");
        }
    });
    metrics.push(Metric {
        name: "incremental_observe",
        value: total as f64 / ((observe_ms - cold_ms).max(1e-6) / 1e3),
        unit: "steps/s",
        note: "per-step two-world update + privacy-loss bound, construction subtracted",
    });

    // --- Grid-size axis: dense vs CSR transition backends -----------------
    //
    // The banded §V.A world (σ = 0.5 km on 1 km cells ⇒ ≤ 81 entries per
    // row) at m ∈ {225, 2500, 10⁴}. The dense comparator is the CSR
    // chain's densified twin — identical numerics, O(m²) per observation —
    // and is capped by `--dense-max-cells`. Emission columns are synthetic
    // (a PLM discretization at m = 10⁴ would cost more than the thing being
    // measured). Rates are `steps/s` so the regression gate treats higher
    // as better; the sparse/dense ratio at m = 10⁴ is the artifact's
    // scaling claim.
    let mut scale_rng = StdRng::seed_from_u64(23);
    for (side, dense_name, sparse_name) in [
        (15usize, "observe_dense_m225", "observe_sparse_m225"),
        (50, "observe_dense_m2500", "observe_sparse_m2500"),
        (100, "observe_dense_m10000", "observe_sparse_m10000"),
    ] {
        let grid_s = GridMap::new(side, side, 1.0).expect("grid");
        let ms = grid_s.num_cells();
        let sparse_chain = gaussian_kernel_chain_sparse(&grid_s, 0.5).expect("sparse chain");
        let event_s: StEvent = Presence::new(
            Region::from_one_based_range(ms, 1, ms / 4).expect("range"),
            2,
            5,
        )
        .expect("presence")
        .into();
        let cols: Vec<Vector> = (0..8)
            .map(|_| {
                Vector::from(
                    (0..ms)
                        .map(|_| rand::Rng::gen::<f64>(&mut scale_rng) * 0.9 + 0.1)
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let pi = Vector::uniform(ms);

        if ms <= opts.dense_max_cells {
            let dense_chain = MarkovModel::new(sparse_chain.transition_matrix().to_dense_matrix())
                .expect("dense twin");
            let provider = Homogeneous::new(dense_chain);
            let mut q = IncrementalTwoWorld::new(event_s.clone(), &provider, pi.clone())
                .expect("quantifier");
            // Fixed flop budget per rep: ~4·10⁸ multiply-adds, so the
            // m = 10⁴ point stays at a couple of observations per run.
            let steps = (400_000_000 / (2 * ms * ms)).clamp(2, 256);
            let dense_ms = best_ms(opts.reps.min(3), || {
                q.reset();
                for i in 0..steps {
                    q.observe(&cols[i % cols.len()]).expect("observe");
                }
            });
            metrics.push(Metric {
                name: dense_name,
                value: steps as f64 / (dense_ms.max(1e-6) / 1e3),
                unit: "steps/s",
                note: "incremental observe, dense O(m^2) backend, banded sigma=0.5 world",
            });
        } else {
            println!("quantify: dense comparator at m={ms} skipped (--dense-max-cells)");
        }

        let provider = Homogeneous::new(sparse_chain);
        let mut q = IncrementalTwoWorld::new(event_s, &provider, pi).expect("quantifier");
        let steps = 256;
        let sparse_ms = best_ms(opts.reps, || {
            q.reset();
            for i in 0..steps {
                q.observe(&cols[i % cols.len()]).expect("observe");
            }
        });
        metrics.push(Metric {
            name: sparse_name,
            value: steps as f64 / (sparse_ms.max(1e-6) / 1e3),
            unit: "steps/s",
            note: "incremental observe, CSR O(nnz) backend, banded sigma=0.5 world",
        });
    }

    metrics
}

fn suite_calibrate(
    opts: &Opts,
    grid: &GridMap,
    provider: &Arc<Homogeneous>,
    event: &StEvent,
) -> Vec<Metric> {
    let m = grid.num_cells();
    let horizon = opts.steps.clamp(2, 6);
    let planner_cfg = PlannerConfig::default();
    let model = PlanarLaplaceError;
    let plm = || -> Box<dyn Lppm> { Box::new(PlanarLaplace::new(grid.clone(), 2.0).expect("plm")) };
    let mut metrics = Vec::new();

    let uniform_ms = best_ms(opts.reps, || {
        plan_uniform_split(
            plm(),
            event,
            Arc::clone(provider),
            horizon,
            1.0,
            &planner_cfg,
        )
        .expect("uniform plan");
    });
    metrics.push(Metric {
        name: "plan_uniform",
        value: uniform_ms,
        unit: "ms",
        note: "uniform-split planner over the bench horizon",
    });

    let greedy_ms = best_ms(opts.reps, || {
        plan_greedy(
            plm(),
            event,
            Arc::clone(provider),
            horizon,
            1.0,
            &planner_cfg,
        )
        .expect("greedy plan");
    });
    metrics.push(Metric {
        name: "plan_greedy",
        value: greedy_ms,
        unit: "ms",
        note: "greedy planner over the bench horizon",
    });

    let knapsack_ms = best_ms(opts.reps, || {
        plan_knapsack(
            plm(),
            event,
            Arc::clone(provider),
            horizon,
            1.0,
            &planner_cfg,
            &model,
        )
        .expect("knapsack plan");
    });
    metrics.push(Metric {
        name: "plan_knapsack",
        value: knapsack_ms,
        unit: "ms",
        note: "utility-aware knapsack planner over the bench horizon",
    });

    let releases = (opts.steps * 32).max(128);
    let release_ms = best_ms(opts.reps, || {
        let mut guard = CalibratedMechanism::new(
            plm(),
            std::slice::from_ref(event),
            Arc::clone(provider),
            Vector::uniform(m),
            GuardConfig {
                target_epsilon: 1.0,
                ..GuardConfig::default()
            },
        )
        .expect("guard");
        let mut rng = StdRng::seed_from_u64(17);
        for t in 0..releases {
            guard
                .release(CellId((t * 5) % m), &mut rng)
                .expect("release");
        }
    });
    metrics.push(Metric {
        name: "guarded_release",
        value: releases as f64 / (release_ms.max(1e-6) / 1e3),
        unit: "releases/s",
        note: "single-session calibrated release behind the backoff ladder",
    });

    metrics
}

/// End-to-end daemon benchmark: a real `priste_serve::Server` on an
/// ephemeral loopback port, hammered by the closed-loop load generator in
/// mixed ingest/release mode. Unlike the other suites this is a single
/// sustained run rather than best-of-reps — the load generator already
/// aggregates over `users × steps × 25` requests (10⁵ at the defaults),
/// and tail quantiles only mean something over a long closed loop.
fn suite_serve(
    opts: &Opts,
    grid: &GridMap,
    provider: &Arc<Homogeneous>,
    event: &StEvent,
) -> Vec<Metric> {
    let requests = ((opts.users * opts.steps * 25) as u64).max(1_000);
    let mut svc = service(provider, event, opts.users);
    let mechanism = PlanarLaplace::new(grid.clone(), 2.0).expect("plm");
    svc.enable_enforcement(
        Box::new(mechanism.clone()),
        GuardConfig {
            target_epsilon: 1.0,
            ..GuardConfig::default()
        },
    )
    .expect("enforcement");
    let registry = Registry::new();
    svc.observe(&registry);
    let server = Server::start(
        svc,
        Some(Box::new(mechanism)),
        registry,
        ServerConfig {
            poll_interval: std::time::Duration::from_millis(5),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind ephemeral loopback port");

    let report = priste_serve::loadgen::run(&LoadgenOptions {
        addr: server.local_addr().to_string(),
        requests,
        connections: 4,
        users: opts.users as u64,
        mode: LoadMode::Mixed,
        seed: 42,
        rate: None,
    })
    .expect("load generator");
    server.drain_handle().drain();
    let summary = server.wait().expect("drain");
    assert_eq!(
        report.errors, 0,
        "the bench scenario must not produce protocol errors"
    );
    assert_eq!(
        summary.errors, 0,
        "the server must not count errors under benchmark load"
    );

    vec![
        Metric {
            name: "serve_p50_ms",
            value: report.quantile_ms(0.50),
            unit: "ms",
            note: "client-observed median request latency, mixed ingest/release",
        },
        Metric {
            name: "serve_p90_ms",
            value: report.quantile_ms(0.90),
            unit: "ms",
            note: "client-observed p90 request latency",
        },
        Metric {
            name: "serve_p99_ms",
            value: report.quantile_ms(0.99),
            unit: "ms",
            note: "client-observed p99 request latency",
        },
        Metric {
            name: "serve_throughput",
            value: report.throughput(),
            unit: "req/s",
            note: "sustained closed-loop throughput, 4 connections",
        },
    ]
}

/// One in-process worker for the cluster suite: the same enforcing
/// commuter service as `suite_serve`, with an optional synthetic
/// serialized-commit stall.
fn start_cluster_worker(
    opts: &Opts,
    grid: &GridMap,
    provider: &Arc<Homogeneous>,
    event: &StEvent,
    stall: std::time::Duration,
) -> Server<Arc<Homogeneous>> {
    let mut svc = service(provider, event, opts.users);
    let mechanism = PlanarLaplace::new(grid.clone(), 2.0).expect("plm");
    svc.enable_enforcement(
        Box::new(mechanism.clone()),
        GuardConfig {
            target_epsilon: 1.0,
            ..GuardConfig::default()
        },
    )
    .expect("enforcement");
    Server::start(
        svc,
        Some(Box::new(mechanism)),
        Registry::new(),
        ServerConfig {
            poll_interval: std::time::Duration::from_millis(5),
            request_stall: stall,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind ephemeral worker port")
}

/// Fronts `workers` in-process serve daemons with a router and drives the
/// load generator through it; returns the loadgen report after asserting a
/// clean drain on every process.
fn routed_run(
    workers: Vec<Server<Arc<Homogeneous>>>,
    loadgen: &LoadgenOptions,
) -> priste_serve::LoadgenReport {
    let map = ShardMap::from_workers(workers.iter().map(|w| w.local_addr().to_string()))
        .expect("shard map");
    let router = Router::start(
        map,
        Registry::new(),
        RouterConfig {
            poll_interval: std::time::Duration::from_millis(5),
            ..RouterConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind ephemeral router port");
    let report = priste_serve::loadgen::run(&LoadgenOptions {
        addr: router.local_addr().to_string(),
        ..loadgen.clone()
    })
    .expect("load generator through the router");
    router.drain_handle().drain();
    let summary = router.wait().expect("router drain");
    assert_eq!(report.errors, 0, "routed bench traffic must be clean");
    assert_eq!(summary.errors, 0, "the router must not count errors");
    for worker in workers {
        worker.drain_handle().drain();
        let s = worker.wait().expect("worker drain");
        assert_eq!(s.errors, 0, "workers must not count errors");
    }
    report
}

/// The router tier end-to-end. Two questions, answered separately because
/// they need opposite worker regimes:
///
/// * **Router overhead** — stall-free workers, so the routed-minus-direct
///   median isolates the router's added hop (parse, hash, pooled upstream
///   exchange). This is real wall-clock on loopback.
/// * **Throughput scaling** — workers with a synthetic serialized-commit
///   stall (`ServerConfig::request_stall`), modelling capacity bounded by
///   a per-worker serialized commit rather than CPU. On the single-core
///   bench machine N stall-free worker processes cannot beat one (they
///   share the core), so the stall is what makes "does the router
///   aggregate N workers' capacity?" measurable at all: each ingest holds
///   its worker's state lock ~400µs, capping one worker near 2.5k req/s,
///   and scaling beyond that is attributable to sharding alone.
fn suite_cluster(
    opts: &Opts,
    grid: &GridMap,
    provider: &Arc<Homogeneous>,
    event: &StEvent,
) -> Vec<Metric> {
    let mut metrics = Vec::new();

    // --- Router-added latency, stall-free ---------------------------------
    let overhead_requests = ((opts.users * opts.steps * 10) as u64).max(1_000);
    let loadgen = LoadgenOptions {
        addr: String::new(),
        requests: overhead_requests,
        connections: 4,
        users: opts.users as u64,
        mode: LoadMode::Mixed,
        seed: 42,
        rate: None,
    };

    let direct_worker = start_cluster_worker(opts, grid, provider, event, Duration::ZERO);
    let direct = priste_serve::loadgen::run(&LoadgenOptions {
        addr: direct_worker.local_addr().to_string(),
        ..loadgen.clone()
    })
    .expect("load generator against the bare worker");
    direct_worker.drain_handle().drain();
    let direct_summary = direct_worker.wait().expect("worker drain");
    assert_eq!(direct.errors, 0, "direct bench traffic must be clean");
    assert_eq!(direct_summary.errors, 0, "the worker must not count errors");

    let routed = routed_run(
        vec![start_cluster_worker(
            opts,
            grid,
            provider,
            event,
            Duration::ZERO,
        )],
        &loadgen,
    );

    let direct_p50 = direct.quantile_ms(0.50);
    let routed_p50 = routed.quantile_ms(0.50);
    metrics.push(Metric {
        name: "cluster_direct_p50_ms",
        value: direct_p50,
        unit: "ms",
        note: "median latency straight to one stall-free worker, mixed mode",
    });
    metrics.push(Metric {
        name: "cluster_routed_p50_ms",
        value: routed_p50,
        unit: "ms",
        note: "median latency through the router to the same worker build",
    });
    metrics.push(Metric {
        name: "cluster_router_overhead_p50_ms",
        value: (routed_p50 - direct_p50).max(0.0),
        unit: "ms",
        note: "router-added median latency (routed minus direct, clamped at zero)",
    });

    // --- Throughput scaling at 1/2/4 workers, stall-bound -----------------
    let stall = std::time::Duration::from_micros(400);
    let scale_requests = ((opts.users * opts.steps * 4) as u64).max(2_000);
    for workers in [1usize, 2, 4] {
        let report = routed_run(
            (0..workers)
                .map(|_| start_cluster_worker(opts, grid, provider, event, stall))
                .collect(),
            &LoadgenOptions {
                addr: String::new(),
                requests: scale_requests,
                connections: 8,
                users: opts.users as u64,
                mode: LoadMode::Ingest,
                seed: 42,
                rate: None,
            },
        );
        let (name, note): (&'static str, &'static str) = match workers {
            1 => (
                "cluster_throughput_1w",
                "ingest through the router, 1 worker with a 400us serialized-commit stall",
            ),
            2 => (
                "cluster_throughput_2w",
                "ingest through the router, 2 stalled workers - sharding should near-double 1w",
            ),
            _ => (
                "cluster_throughput_4w",
                "ingest through the router, 4 stalled workers - scaling until the core saturates",
            ),
        };
        metrics.push(Metric {
            name,
            value: report.throughput(),
            unit: "req/s",
            note,
        });
    }

    metrics
}

fn main() {
    let opts = parse_opts();
    let (grid, provider, event) = world();
    let out_dir = opts
        .out
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or(Path::new("."))
        .to_path_buf();

    let suites: Vec<(&str, Vec<Metric>, PathBuf)> =
        ["online", "quantify", "calibrate", "serve", "cluster"]
            .into_iter()
            .filter(|s| opts.suite == "all" || opts.suite == *s)
            .map(|name| {
                let metrics = match name {
                    "online" => suite_online(&opts, &grid, &provider, &event),
                    "quantify" => suite_quantify(&opts, &grid, &provider, &event),
                    "calibrate" => suite_calibrate(&opts, &grid, &provider, &event),
                    "cluster" => suite_cluster(&opts, &grid, &provider, &event),
                    _ => suite_serve(&opts, &grid, &provider, &event),
                };
                let path = if name == "online" {
                    opts.out.clone()
                } else {
                    out_dir.join(format!("BENCH_{name}.json"))
                };
                (name, metrics, path)
            })
            .collect();

    let mut regressions = 0usize;
    let mut rows: Vec<CompareRow> = Vec::new();
    for (name, metrics, path) in &suites {
        write_json(path, name, &opts, metrics).expect("write BENCH json");
        println!("[{name}]");
        for m in metrics {
            println!("{:>24}: {:>12.2} {}", m.name, m.value, m.unit);
        }
        println!("wrote {}", path.display());
        if let Some(dir) = &opts.compare {
            regressions += compare_suite(
                name,
                metrics,
                &dir.join(format!("BENCH_{name}.json")),
                opts.noise,
                &mut rows,
            );
        }
    }

    if opts.markdown {
        print_markdown_table(&rows, opts.noise);
    }

    if regressions > 0 {
        eprintln!(
            "FAIL: {regressions} metric(s) regressed beyond the ±{:.0}% noise band",
            opts.noise * 100.0
        );
        std::process::exit(1);
    }
}

/// One metric's before/after comparison, kept for the `--markdown` table.
struct CompareRow {
    suite: String,
    name: &'static str,
    fresh: f64,
    baseline: Option<f64>,
    unit: &'static str,
    drift: f64,
    regressed: bool,
}

/// Renders the collected comparison as a GitHub-flavored delta table —
/// the per-PR performance record ROADMAP asks for, ready to paste into a
/// PR description.
fn print_markdown_table(rows: &[CompareRow], noise: f64) {
    println!();
    println!(
        "### Benchmark deltas (±{:.0}% noise band, fresh vs committed)",
        noise * 100.0
    );
    println!();
    println!("| Suite | Metric | Before | After | Delta | Verdict |");
    println!("|---|---|---:|---:|---:|---|");
    for r in rows {
        let (before, delta, verdict) = match r.baseline {
            Some(b) => (
                format!("{b:.2} {}", r.unit),
                format!("{:+.1}%", r.drift * 100.0),
                if r.regressed {
                    "**regressed**"
                } else {
                    "within noise"
                }
                .to_owned(),
            ),
            None => ("—".to_owned(), "—".to_owned(), "new metric".to_owned()),
        };
        println!(
            "| {} | `{}` | {} | {:.2} {} | {} | {} |",
            r.suite, r.name, before, r.fresh, r.unit, delta, verdict
        );
    }
    println!();
}

/// Diffs one fresh suite against its committed artifact. Returns the number
/// of metrics outside the noise band; a missing or unparsable committed
/// file skips the suite (so new suites can land before their baseline).
fn compare_suite(
    suite: &str,
    fresh: &[Metric],
    committed: &Path,
    noise: f64,
    rows: &mut Vec<CompareRow>,
) -> usize {
    let Ok(text) = std::fs::read_to_string(committed) else {
        println!(
            "compare[{suite}]: no committed artifact at {} — skipped",
            committed.display()
        );
        return 0;
    };
    let doc = match parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!(
                "compare[{suite}]: {} is not valid JSON ({e}) — counting as a regression",
                committed.display()
            );
            return 1;
        }
    };
    let committed_metrics: Vec<&Json> = doc
        .get("metrics")
        .and_then(Json::as_array)
        .map(|a| a.iter().collect())
        .unwrap_or_default();
    let lookup = |name: &str| -> Option<f64> {
        committed_metrics.iter().find_map(|m| {
            (m.get("name").and_then(Json::as_str) == Some(name))
                .then(|| m.get("value").and_then(Json::as_f64))
                .flatten()
        })
    };

    let mut regressions = 0;
    for m in fresh {
        let Some(baseline) = lookup(m.name) else {
            println!(
                "compare[{suite}] {:>24}: no committed baseline — skipped",
                m.name
            );
            rows.push(CompareRow {
                suite: suite.to_owned(),
                name: m.name,
                fresh: m.value,
                baseline: None,
                unit: m.unit,
                drift: 0.0,
                regressed: false,
            });
            continue;
        };
        let (regressed, drift) = if higher_is_better(m.unit) {
            (m.value < baseline * (1.0 - noise), m.value / baseline - 1.0)
        } else {
            (m.value > baseline * (1.0 + noise), m.value / baseline - 1.0)
        };
        let verdict = if regressed {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "compare[{suite}] {:>24}: {:>12.2} vs {:>12.2} {} ({:+.1}%) {verdict}",
            m.name,
            m.value,
            baseline,
            m.unit,
            drift * 100.0
        );
        rows.push(CompareRow {
            suite: suite.to_owned(),
            name: m.name,
            fresh: m.value,
            baseline: Some(baseline),
            unit: m.unit,
            drift,
            regressed,
        });
    }
    regressions
}

/// Hand-rolled JSON writer — the workspace has no serde; the schema is
/// flat enough that string assembly with escaped-free ASCII fields is safe.
fn write_json(path: &Path, suite: &str, opts: &Opts, metrics: &[Metric]) -> std::io::Result<()> {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"schema\": \"priste-bench-{suite}/1\",\n"));
    json.push_str("  \"scenario\": {\n");
    json.push_str("    \"grid\": \"6x6\",\n");
    json.push_str(&format!("    \"users\": {},\n", opts.users));
    json.push_str(&format!("    \"steps\": {},\n", opts.steps));
    json.push_str(&format!("    \"shards\": {SHARDS},\n"));
    json.push_str(&format!("    \"reps\": {},\n", opts.reps));
    json.push_str("    \"event\": \"PRESENCE over the first quarter of cells, steps 2-5\",\n");
    json.push_str("    \"fsync\": false\n");
    json.push_str("  },\n");
    json.push_str("  \"metrics\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"value\": {:.3}, \"unit\": \"{}\", \"note\": \"{}\"}}{}\n",
            m.name,
            m.value,
            m.unit,
            m.note,
            if i + 1 < metrics.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, json)
}
