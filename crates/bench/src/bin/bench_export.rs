//! Machine-readable online-service benchmark exporter.
//!
//! Measures the session-service hot paths (audit ingest, enforced release),
//! the durability tax (journaled ingest vs in-memory), and the restart
//! costs (cold start, WAL-replay recovery, snapshot recovery), then writes
//! the medians as JSON — by default to `BENCH_online.json` at the current
//! directory — so CI and the repo root keep a queryable performance record
//! without parsing Criterion's console output.
//!
//! Usage: `bench_export [--out PATH] [--users N] [--steps N] [--reps N]`
//!
//! The defaults (500 users, 8 steps, 5 reps) finish in a few seconds; CI
//! runs `--users 50 --steps 4 --reps 2` as a smoke test of the exporter
//! itself, not of the numbers.

use priste_calibrate::GuardConfig;
use priste_event::{Presence, StEvent};
use priste_geo::{CellId, GridMap, Region};
use priste_linalg::Vector;
use priste_lppm::{Lppm, PlanarLaplace};
use priste_markov::{gaussian_kernel_chain, Homogeneous, TransitionProvider};
use priste_online::{DurableOptions, OnlineConfig, SessionManager, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const SHARDS: usize = 8;

struct Opts {
    out: PathBuf,
    users: usize,
    steps: usize,
    reps: usize,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        out: PathBuf::from("BENCH_online.json"),
        users: 500,
        steps: 8,
        reps: 5,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--out" => opts.out = PathBuf::from(value("--out")),
            "--users" => opts.users = value("--users").parse().expect("--users N"),
            "--steps" => opts.steps = value("--steps").parse().expect("--steps N"),
            "--reps" => opts.reps = value("--reps").parse().expect("--reps N"),
            other => panic!("unknown flag {other}; see the module docs for usage"),
        }
    }
    opts
}

fn world() -> (GridMap, Arc<Homogeneous>, StEvent) {
    let grid = GridMap::new(6, 6, 1.0).expect("grid");
    let m = grid.num_cells();
    let chain = gaussian_kernel_chain(&grid, 1.0).expect("chain");
    let event: StEvent = Presence::new(
        Region::from_one_based_range(m, 1, m / 4).expect("range"),
        2,
        5,
    )
    .expect("presence")
    .into();
    (grid, Arc::new(Homogeneous::new(chain)), event)
}

fn config() -> OnlineConfig {
    OnlineConfig {
        epsilon: 1.0,
        num_shards: SHARDS,
        linger: 2,
        budget: 1e9,
    }
}

fn service(
    provider: &Arc<Homogeneous>,
    event: &StEvent,
    users: usize,
) -> SessionManager<Arc<Homogeneous>> {
    let m = provider.num_states();
    let mut svc = SessionManager::new(Arc::clone(provider), config()).expect("service");
    let tpl = svc.register_template(event.clone()).expect("template");
    for u in 0..users as u64 {
        svc.add_user(UserId(u), Vector::uniform(m)).expect("user");
        svc.attach_event(UserId(u), tpl).expect("attach");
    }
    svc
}

fn batch(grid: &GridMap, users: usize, seed: u64) -> Vec<(UserId, Vector)> {
    let m = grid.num_cells();
    let plm = PlanarLaplace::new(grid.clone(), 0.8).expect("plm");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..users as u64)
        .map(|u| {
            let cell = CellId((u as usize * 7 + seed as usize) % m);
            (UserId(u), plm.emission_column(plm.perturb(cell, &mut rng)))
        })
        .collect()
}

fn tempdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("priste-bench-export-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Median wall-clock milliseconds of `reps` runs of `f`.
fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

struct Metric {
    name: &'static str,
    value: f64,
    unit: &'static str,
    note: &'static str,
}

fn main() {
    let opts = parse_opts();
    let (grid, provider, event) = world();
    let feed: Vec<_> = (0..opts.steps)
        .map(|t| batch(&grid, opts.users, t as u64))
        .collect();
    let observations = (opts.users * opts.steps) as f64;
    let mut metrics = Vec::new();

    // Cold start: build, register, and populate a fresh in-memory service.
    let cold_ms = median_ms(opts.reps, || {
        let svc = service(&provider, &event, opts.users);
        assert_eq!(svc.num_users(), opts.users);
    });
    metrics.push(Metric {
        name: "cold_start",
        value: cold_ms,
        unit: "ms",
        note: "build + register + add/attach all users, in-memory",
    });

    // Audit ingest throughput, in-memory.
    let ingest_ms = median_ms(opts.reps, || {
        let mut svc = service(&provider, &event, opts.users);
        for step in &feed {
            svc.ingest_batch(step).expect("ingest");
        }
    });
    metrics.push(Metric {
        name: "audit_ingest",
        value: observations / ((ingest_ms - cold_ms).max(1e-6) / 1e3),
        unit: "obs/s",
        note: "sequential ingest_batch, cold-start cost subtracted",
    });

    // The durability tax: the same stream journaled to a per-shard WAL
    // (fsync off — codec + buffered-write cost only).
    let durable_ms = median_ms(opts.reps, || {
        let dir = tempdir("tax");
        let mut svc = service(&provider, &event, opts.users);
        svc.make_durable(
            &dir,
            DurableOptions {
                fsync: false,
                snapshot_every: 0,
            },
        )
        .expect("make_durable");
        for step in &feed {
            svc.ingest_batch(step).expect("ingest");
        }
        drop(svc);
        std::fs::remove_dir_all(&dir).ok();
    });
    metrics.push(Metric {
        name: "durable_ingest",
        value: observations / ((durable_ms - cold_ms).max(1e-6) / 1e3),
        unit: "obs/s",
        note: "journaled ingest (fsync off), cold-start cost subtracted",
    });
    metrics.push(Metric {
        name: "journaling_overhead",
        value: (durable_ms - cold_ms).max(1e-6) / (ingest_ms - cold_ms).max(1e-6),
        unit: "x",
        note: "durable vs in-memory wall-clock ratio for the same stream",
    });

    // Enforced release throughput behind the calibration guard.
    let locations: Vec<(UserId, CellId)> = (0..opts.users as u64)
        .map(|u| (UserId(u), CellId((u as usize * 5) % grid.num_cells())))
        .collect();
    let release_ms = median_ms(opts.reps, || {
        let mut svc = service(&provider, &event, opts.users);
        svc.enable_enforcement(
            Box::new(PlanarLaplace::new(grid.clone(), 2.0).expect("plm")),
            GuardConfig {
                target_epsilon: 1.0,
                ..GuardConfig::default()
            },
        )
        .expect("enforcement");
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..opts.steps {
            for &(u, loc) in &locations {
                svc.release(u, loc, &mut rng).expect("release");
            }
        }
    });
    metrics.push(Metric {
        name: "enforced_release",
        value: observations / ((release_ms - cold_ms).max(1e-6) / 1e3),
        unit: "releases/s",
        note: "guarded release incl. mechanism sampling, cold-start subtracted",
    });

    // Recovery from a WAL-only directory (crash mid-stream, no snapshot
    // beyond the opening checkpoint) vs from a compacted snapshot.
    for (name, checkpoint, note) in [
        (
            "recover_wal_replay",
            false,
            "recover(): opening snapshot + full deterministic WAL replay",
        ),
        (
            "recover_snapshot",
            true,
            "recover(): single CRC-checked snapshot, empty WAL tail",
        ),
    ] {
        let dir = tempdir(name);
        let mut svc = service(&provider, &event, opts.users);
        svc.make_durable(
            &dir,
            DurableOptions {
                fsync: false,
                snapshot_every: 0,
            },
        )
        .expect("make_durable");
        for step in &feed {
            svc.ingest_batch(step).expect("ingest");
        }
        if checkpoint {
            svc.checkpoint().expect("checkpoint");
        }
        let digest = svc.state_digest();
        drop(svc); // crash

        let ms = median_ms(opts.reps, || {
            let recovered =
                SessionManager::recover(Arc::clone(&provider), config(), vec![event.clone()], &dir)
                    .expect("recover");
            assert_eq!(recovered.state_digest(), digest, "recovery must be exact");
        });
        metrics.push(Metric {
            name,
            value: ms,
            unit: "ms",
            note,
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    write_json(&opts, &metrics).expect("write BENCH json");
    for m in &metrics {
        println!("{:>22}: {:>12.2} {}", m.name, m.value, m.unit);
    }
    println!("wrote {}", opts.out.display());
}

/// Hand-rolled JSON writer — the workspace has no serde; the schema is
/// flat enough that string assembly with escaped-free ASCII fields is safe.
fn write_json(opts: &Opts, metrics: &[Metric]) -> std::io::Result<()> {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"priste-bench-online/1\",\n");
    json.push_str("  \"scenario\": {\n");
    json.push_str("    \"grid\": \"6x6\",\n");
    json.push_str(&format!("    \"users\": {},\n", opts.users));
    json.push_str(&format!("    \"steps\": {},\n", opts.steps));
    json.push_str(&format!("    \"shards\": {SHARDS},\n"));
    json.push_str(&format!("    \"reps\": {},\n", opts.reps));
    json.push_str("    \"event\": \"PRESENCE over the first quarter of cells, steps 2-5\",\n");
    json.push_str("    \"fsync\": false\n");
    json.push_str("  },\n");
    json.push_str("  \"metrics\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"value\": {:.3}, \"unit\": \"{}\", \"note\": \"{}\"}}{}\n",
            m.name,
            m.value,
            m.unit,
            m.note,
            if i + 1 < metrics.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    std::fs::write(&opts.out, json)
}
