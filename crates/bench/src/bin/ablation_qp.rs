//! Ablation: QP solver strategies on real Theorem IV.1 inputs.
//!
//! Harvests constraint programs from an actual framework run (so the
//! coefficient structure is genuine, not synthetic), then compares:
//!
//! * **structured simplex scan** — this repository's exact `O(m²)` method;
//! * **generic projected gradient** — the "treat it as a dense box QP"
//!   approach one would use to drive a black-box solver (lower bound only);
//! * **box knapsack machinery** — the literal paper feasible set (see
//!   DESIGN.md on why the box relaxation is the wrong reading).
//!
//! Reported per program: each method's maximum estimate and runtime. The
//! structured scan is exact, so any generic lower bound above it would be a
//! soundness bug (none occur — asserted).

use priste_bench::{experiments, output, Scale};
use priste_lppm::{Lppm, PlanarLaplace};
use priste_markov::Homogeneous;
use priste_qp::generic::{projected_gradient_max, BoxQp};
use priste_qp::simplex::maximize_simplex;
use priste_qp::{bilinear, ConstraintSet, SolverConfig, TheoremChecker};
use priste_quantify::TheoremBuilder;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let (grid, chain) = experiments::synthetic_world(&scale, 1.0);
    let events = [experiments::presence_event(&scale, 4, 8)];
    let plm = PlanarLaplace::new(grid.clone(), 0.2).expect("plm");
    let provider = Homogeneous::new(chain);
    let mut builder = TheoremBuilder::new(&events[0], provider).expect("builder");
    let checker = TheoremChecker::new(0.5, SolverConfig::default());

    let steps = 12.min(scale.horizon);
    let mut x = Vec::new();
    let mut structured_vals = Vec::new();
    let mut generic_vals = Vec::new();
    let mut box_vals = Vec::new();
    let mut structured_us = Vec::new();
    let mut generic_us = Vec::new();
    let mut box_us = Vec::new();

    for t in 1..=steps {
        let col = plm.emission_column(priste_geo::CellId((t * 7) % grid.num_cells()));
        let inputs = builder.candidate(&col).expect("candidate");
        // Check both constraints; ablate on the Eq. (15) program.
        let programs = checker.programs(&inputs.a, &inputs.b, &inputs.c);
        let (_, program) = &programs[0];

        let t0 = Instant::now();
        let s = maximize_simplex(program, u64::MAX, f64::INFINITY);
        structured_us.push(t0.elapsed().as_secs_f64() * 1e6);
        structured_vals.push(s.best_value);

        let dense = BoxQp::new(
            priste_linalg::Matrix::outer(&program.a, &program.g),
            program.h.clone(),
        );
        let t0 = Instant::now();
        let (_, g_val) = projected_gradient_max(&dense, &SolverConfig::with_budget(2_000));
        generic_us.push(t0.elapsed().as_secs_f64() * 1e6);
        generic_vals.push(g_val);

        let box_cfg = SolverConfig {
            constraint: ConstraintSet::Box,
            ..SolverConfig::with_budget(20_000)
        };
        let t0 = Instant::now();
        let b_out = bilinear::maximize(program, &box_cfg);
        box_us.push(t0.elapsed().as_secs_f64() * 1e6);
        box_vals.push(b_out.lower_bound);

        x.push(t as f64);
        builder.commit(col).expect("commit");
    }

    // Soundness cross-check: the box maximum dominates the simplex maximum
    // (the box contains the simplex); the generic PG lower bound on the box
    // must not exceed the box machinery's upper estimate by more than noise.
    for i in 0..structured_vals.len() {
        assert!(
            box_vals[i] >= structured_vals[i] - 1e-9,
            "box max below simplex max at t={}",
            i + 1
        );
    }

    let mut values = output::Experiment::new(
        "ablation_qp_values",
        "Eq. (15) maximum estimates per timestep: exact simplex vs generic PG (box) vs box knapsack",
        "time",
        x.clone(),
    );
    values.push_series("simplex exact", structured_vals);
    values.push_series("generic PG (box LB)", generic_vals);
    values.push_series("box knapsack LB", box_vals);

    let mut times = output::Experiment::new(
        "ablation_qp_runtime",
        "Solver runtime (µs) per program",
        "time",
        x,
    );
    times.push_series("simplex exact", structured_us);
    times.push_series("generic PG", generic_us);
    times.push_series("box knapsack", box_us);

    let dir = output::default_output_dir();
    for exp in [values, times] {
        output::print_experiment(&exp);
        match output::write_csv(&exp, &dir) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("csv write failed: {e}"),
        }
    }
    println!("\nNote: the box maxima sit above the simplex maxima — the literal box");
    println!("relaxation rejects releases the simplex (correct) reading certifies,");
    println!("and with a scaled-down π it rejects *every* release (DESIGN.md).");
}
