//! Ablation: HMM rescaling vs raw floating point in the quantification
//! chain (DESIGN.md "Numerical scaling").
//!
//! The joint probabilities of Lemmas III.2/III.3 are products of `T`
//! sub-stochastic factors; raw `f64` evaluation underflows once
//! `ln Pr(o_1..o_t)` drops below ~−745. This binary runs a long horizon and
//! reports, per timestep: the joint's log value (finite throughout thanks
//! to the scaled representation), the raw `f64` the same value collapses to
//! (0.0 once underflowed), and the minimal certifiable ε — which stays
//! computable arbitrarily far past the underflow point because the
//! Theorem IV.1 decision only consumes the scale-invariant `(b, c)` pair.
//! Without rescaling, b and c would both be exactly 0.0 there and every
//! decision would degenerate.

use priste_bench::{output, Scale};
use priste_event::dsl::parse_event;
use priste_geo::{CellId, GridMap};
use priste_linalg::Vector;
use priste_lppm::{Lppm, PlanarLaplace};
use priste_markov::{gaussian_kernel_chain, Homogeneous};
use priste_qp::SolverConfig;
use priste_quantify::{sweep, TheoremBuilder};

fn main() {
    let scale = Scale::from_args();
    // Small map, long horizon: underflow arrives fast.
    let grid = GridMap::new(5, 5, 1.0).expect("grid");
    let chain = gaussian_kernel_chain(&grid, 1.0).expect("chain");
    let event = parse_event("PRESENCE(S={1:5}, T={4:8})", 25).expect("event");
    let plm = PlanarLaplace::new(grid.clone(), 0.5).expect("plm");
    let provider = Homogeneous::new(chain);
    let mut builder = TheoremBuilder::new(&event, provider).expect("builder");
    let pi = Vector::uniform(25);
    let solver = SolverConfig::default();

    let horizon = 400.max(scale.horizon);
    let mut x = Vec::new();
    let mut log_joint = Vec::new();
    let mut raw_joint = Vec::new();
    let mut min_eps = Vec::new();

    for t in 1..=horizon {
        let col = plm.emission_column(CellId((t * 3) % 25));
        let inputs = builder.candidate(&col).expect("candidate");
        let lj = inputs.log_joint_total(&pi);
        let cap = sweep::min_certifiable_epsilon(&inputs, 1e-4, 64.0, 1e-3, &solver);
        x.push(t as f64);
        log_joint.push(lj);
        raw_joint.push(lj.exp()); // what raw f64 arithmetic would hold
        min_eps.push(cap.min_epsilon.unwrap_or(f64::NAN));
        builder.commit(col).expect("commit");
    }

    let mut exp = output::Experiment::new(
        "ablation_scaling",
        "Rescaled vs raw joint probability over a 400-step horizon (5×5 world, 0.5-PLM)",
        "time",
        x,
    );
    exp.push_series("log joint (scaled, finite)", log_joint.clone());
    exp.push_series("raw f64 joint (underflows)", raw_joint.clone());
    exp.push_series("min certifiable eps", min_eps.clone());

    output::print_experiment(&exp);
    let dir = output::default_output_dir();
    match output::write_csv(&exp, &dir) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }

    let first_underflow = raw_joint.iter().position(|&v| v == 0.0);
    match first_underflow {
        Some(i) => {
            let finite_after = min_eps[i..].iter().filter(|v| v.is_finite()).count();
            println!(
                "\nraw f64 underflows at t = {} (log joint {:.1});",
                i + 1,
                log_joint[i]
            );
            println!(
                "the scaled pipeline still computes a finite minimal ε at {finite_after} of the remaining {} steps.",
                raw_joint.len() - i
            );
            assert!(
                finite_after == raw_joint.len() - i,
                "scaling ablation expected ε-capacity to stay computable past underflow"
            );
        }
        None => println!("\nno underflow within the horizon — lengthen it with --paper"),
    }
}
