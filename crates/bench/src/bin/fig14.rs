//! Regenerates Fig. 14: quantification runtime, exponential baseline
//! (Algorithm 4) vs the linear two-possible-world method.

use priste_bench::{experiments, output, Scale};

/// Baseline points above this trajectory count are skipped (NaN) — the
/// paper's log-axis extends to ~10^4 s; this cap keeps the binary minutes.
const BASELINE_CAP: u128 = 200_000_000;

fn main() {
    let scale = Scale::from_args();
    let dir = output::default_output_dir();
    for exp in experiments::fig14(&scale, BASELINE_CAP) {
        output::print_experiment(&exp);
        match output::write_csv(&exp, &dir) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("csv write failed: {e}"),
        }
    }
}
