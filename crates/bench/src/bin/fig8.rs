//! Regenerates the paper's fig8 series. See DESIGN.md for the experiment
//! index; run with `--paper` for full §V.A scale.

use priste_bench::{experiments, output, Scale};

fn main() {
    let scale = Scale::from_args();
    let dir = output::default_output_dir();
    for exp in experiments::fig8(&scale) {
        output::print_experiment(&exp);
        match output::write_csv(&exp, &dir) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("csv write failed: {e}"),
        }
    }
}
