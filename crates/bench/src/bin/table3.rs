//! Regenerates Table III: runtime vs the QP threshold (conservative
//! release trade-off).

use priste_bench::{experiments, output, Scale};

fn main() {
    let scale = Scale::from_args();
    let dir = output::default_output_dir();
    let exp = experiments::table3(&scale);
    output::print_experiment(&exp);
    match output::write_csv(&exp, &dir) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
