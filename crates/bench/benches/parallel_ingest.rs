//! Sequential vs sharded-parallel batched ingest/release at fleet scale —
//! the acceptance evidence for the `Send + Sync` service redesign.
//!
//! Two comparisons, each at 1k and 10k users on a 6×6 world:
//!
//! * **audit ingest** — [`SessionManager::ingest_batch`] (single-threaded,
//!   shard-by-shard) vs [`SessionManager::ingest_batch_parallel`]
//!   (`std::thread::scope` fan-out over the shard groups, one worker per
//!   core). The two produce byte-identical reports (pinned by the
//!   `pipeline_equivalence` proptest suite); only wall-clock differs.
//! * **enforcing release** — per-user sequential [`SessionManager::release`]
//!   vs one [`SessionManager::release_batch`] with per-shard RNG streams
//!   and a prewarmed, read-only mechanism ladder.
//!
//! Expected shape on multi-core hardware: ≥1.5× throughput at 10k users
//! for the parallel paths (the per-shard work — posterior matmuls, shared
//! lifted steps, guard peeks — is embarrassingly parallel across shards;
//! the sequential path leaves every core but one idle).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priste_calibrate::GuardConfig;
use priste_event::{Presence, StEvent};
use priste_geo::{CellId, GridMap, Region};
use priste_linalg::Vector;
use priste_lppm::{Lppm, PlanarLaplace};
use priste_markov::{gaussian_kernel_chain, Homogeneous, TransitionProvider};
use priste_online::{OnlineConfig, SessionManager, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const SHARDS: usize = 32;

fn world() -> (GridMap, Arc<Homogeneous>, StEvent) {
    let grid = GridMap::new(6, 6, 1.0).expect("grid");
    let m = grid.num_cells();
    let chain = gaussian_kernel_chain(&grid, 1.0).expect("chain");
    let event: StEvent = Presence::new(
        Region::from_one_based_range(m, 1, m / 4).expect("range"),
        2,
        5,
    )
    .expect("presence")
    .into();
    (grid, Arc::new(Homogeneous::new(chain)), event)
}

/// A populated audit-mode service: `users` sessions, one window each.
fn audit_service(
    provider: &Arc<Homogeneous>,
    event: &StEvent,
    users: usize,
) -> SessionManager<Arc<Homogeneous>> {
    let m = provider.num_states();
    let mut svc = SessionManager::new(
        Arc::clone(provider),
        OnlineConfig {
            epsilon: 1.0,
            num_shards: SHARDS,
            linger: 2,
            budget: 1e9,
        },
    )
    .expect("service");
    let tpl = svc.register_template(event.clone()).expect("template");
    for u in 0..users as u64 {
        svc.add_user(UserId(u), Vector::uniform(m)).expect("user");
        svc.attach_event(UserId(u), tpl).expect("attach");
    }
    svc
}

/// The same service switched into enforcing mode behind a 2.0-PLM guard.
fn enforcing_service(
    grid: &GridMap,
    provider: &Arc<Homogeneous>,
    event: &StEvent,
    users: usize,
) -> SessionManager<Arc<Homogeneous>> {
    let mut svc = audit_service(provider, event, users);
    svc.enable_enforcement(
        Box::new(PlanarLaplace::new(grid.clone(), 2.0).expect("plm")),
        GuardConfig {
            target_epsilon: 1.0,
            ..GuardConfig::default()
        },
    )
    .expect("enforcement");
    svc
}

/// One same-timestep audit batch: every user one emission column.
fn audit_batch(grid: &GridMap, users: usize) -> Vec<(UserId, Vector)> {
    let plm = PlanarLaplace::new(grid.clone(), 0.8).expect("plm");
    let mut rng = StdRng::seed_from_u64(11);
    (0..users as u64)
        .map(|u| {
            let obs = plm.perturb(CellId((u % 36) as usize), &mut rng);
            (UserId(u), plm.emission_column(obs))
        })
        .collect()
}

fn bench_parallel_ingest(c: &mut Criterion) {
    let (grid, provider, event) = world();
    let mut group = c.benchmark_group("parallel_ingest");
    group.sample_size(10);

    for users in [1_000usize, 10_000] {
        let batch = audit_batch(&grid, users);
        group.bench_with_input(
            BenchmarkId::new("sequential", users),
            &users,
            |b, &users| {
                let mut svc = audit_service(&provider, &event, users);
                b.iter(|| svc.ingest_batch(&batch).expect("ingest").len())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sharded_parallel", users),
            &users,
            |b, &users| {
                let mut svc = audit_service(&provider, &event, users);
                b.iter(|| {
                    svc.ingest_batch_parallel(&batch, 0)
                        .expect("parallel ingest")
                        .len()
                })
            },
        );
    }
    group.finish();
}

fn bench_parallel_release(c: &mut Criterion) {
    let (grid, provider, event) = world();
    let mut group = c.benchmark_group("parallel_release");
    group.sample_size(10);

    for users in [1_000usize, 10_000] {
        let batch: Vec<(UserId, CellId)> = (0..users as u64)
            .map(|u| (UserId(u), CellId((u % 36) as usize)))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("sequential", users),
            &users,
            |b, &users| {
                let mut svc = enforcing_service(&grid, &provider, &event, users);
                let mut rng = StdRng::seed_from_u64(3);
                b.iter(|| {
                    let mut certified = 0usize;
                    for &(u, loc) in &batch {
                        if svc
                            .release(u, loc, &mut rng)
                            .expect("release")
                            .decision
                            .certified()
                        {
                            certified += 1;
                        }
                    }
                    certified
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sharded_parallel", users),
            &users,
            |b, &users| {
                let mut svc = enforcing_service(&grid, &provider, &event, users);
                b.iter(|| {
                    svc.release_batch(&batch, 3, 0)
                        .expect("release batch")
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_ingest, bench_parallel_release);
criterion_main!(benches);
