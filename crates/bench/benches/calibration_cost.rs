//! Cost of calibration: what the `priste-calibrate` subsystem charges for
//! its guarantee.
//!
//! Three questions, three groups:
//!
//! * `calibration_planner` — offline planner cost vs horizon, all three
//!   planners head to head (the greedy search is `O(T · rungs · m)` oracle
//!   calls along the canonical history; the uniform-split baseline pays
//!   the evaluation without the search; the knapsack allocator pays both
//!   probes plus the LP — the LP itself is noise next to the oracle, so
//!   expect roughly greedy + uniform + a repair walk).
//! * `capacity_sweep` — the satellite optimizations on the planner's bulk
//!   workload (all `m` emission-column capacities at one timestep, which
//!   cluster tightly): warm-chained bisection spends measurably fewer
//!   oracle calls than cold restarts. The `std::thread::scope` fan-out is
//!   benchmarked for completeness — it pays off proportionally to core
//!   count, so on a single-core runner it only shows its overhead.
//! * `guard_overhead` — per-release cost of the online guard versus the
//!   raw uncalibrated mechanism + audit: one peek per attempt plus the
//!   commit, all `O(m²)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priste_calibrate::{
    plan_greedy, plan_knapsack, plan_uniform_split, CalibratedMechanism, GuardConfig,
    PlanarLaplaceError, PlannerConfig,
};
use priste_core::test_support::{homogeneous_world, plm, presence};
use priste_event::StEvent;
use priste_geo::GridMap;
use priste_linalg::Vector;
use priste_lppm::{Lppm, PlanarLaplace};
use priste_markov::Homogeneous;
use priste_qp::SolverConfig;
use priste_quantify::sweep::{min_certifiable_epsilon, min_certifiable_epsilons, EpsilonCapacity};
use priste_quantify::{IncrementalTwoWorld, TheoremBuilder, TheoremInputs};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One world: a 4×4 grid (m = 16) and a presence event over steps 2–4.
fn setup() -> (GridMap, Homogeneous, StEvent) {
    let (grid, provider) = homogeneous_world(4, 1.0);
    let event = presence(grid.num_cells(), grid.num_cells() / 4, 2, 4);
    (grid, provider, event)
}

fn bench_planner_vs_horizon(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration_planner");
    group.sample_size(10);
    let (grid, provider, event) = setup();
    let cfg = PlannerConfig::default();

    for horizon in [2usize, 4, 6] {
        group.bench_with_input(BenchmarkId::new("greedy", horizon), &horizon, |b, &h| {
            b.iter(|| {
                plan_greedy(plm(&grid, 1.5), &event, provider.clone(), h, 0.8, &cfg)
                    .expect("plan")
                    .mean_budget()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("uniform_split", horizon),
            &horizon,
            |b, &h| {
                b.iter(|| {
                    plan_uniform_split(plm(&grid, 1.5), &event, provider.clone(), h, 0.8, &cfg)
                        .expect("plan")
                        .mean_budget()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("knapsack", horizon), &horizon, |b, &h| {
            b.iter(|| {
                plan_knapsack(
                    plm(&grid, 1.5),
                    &event,
                    provider.clone(),
                    h,
                    0.8,
                    &cfg,
                    &PlanarLaplaceError,
                )
                .expect("plan")
                .total_utility(&PlanarLaplaceError)
            })
        });
    }
    group.finish();
}

/// The planner's bulk workload: Theorem inputs for *every* emission column
/// of a sharp mechanism (α = 3) at one timestep. The per-column capacities
/// sit in the bracket interior and cluster within a few percent of each
/// other — exactly the regime the warm-start chaining accelerates.
fn column_inputs() -> Vec<TheoremInputs> {
    let (grid, provider, event) = setup();
    let m = grid.num_cells();
    let plm = PlanarLaplace::new(grid, 3.0).expect("plm");
    let builder = TheoremBuilder::new(&event, provider).expect("builder");
    (0..m)
        .map(|o| {
            builder
                .candidate(&plm.emission_column(priste_geo::CellId(o)))
                .expect("candidate")
        })
        .collect()
}

fn bench_capacity_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("capacity_sweep");
    group.sample_size(10);
    let inputs = column_inputs();
    let solver = SolverConfig::default();

    // Cold: every timestep bisects the full bracket from scratch.
    group.bench_function("cold", |b| {
        b.iter(|| {
            inputs
                .iter()
                .map(|inp| min_certifiable_epsilon(inp, 1e-4, 8.0, 1e-4, &solver))
                .map(|c| c.iterations)
                .sum::<usize>()
        })
    });
    // Warm-chained: each answer seeds the next bracket.
    group.bench_function("warm", |b| {
        b.iter(|| {
            min_certifiable_epsilons(&inputs, 1e-4, 8.0, 1e-4, &solver, 1, None)
                .iter()
                .map(|c: &EpsilonCapacity| c.iterations)
                .sum::<usize>()
        })
    });
    // Threaded: scoped fan-out across four workers.
    group.bench_function("warm_threads4", |b| {
        b.iter(|| {
            min_certifiable_epsilons(&inputs, 1e-4, 8.0, 1e-4, &solver, 4, None)
                .iter()
                .map(|c: &EpsilonCapacity| c.iterations)
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_guard_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("guard_overhead");
    group.sample_size(10);
    let (grid, provider, event) = setup();
    let m = grid.num_cells();
    let pi = Vector::uniform(m);
    let horizon = 12usize;
    let mut rng = StdRng::seed_from_u64(5);
    let trajectory = provider
        .model()
        .sample_trajectory_from(&pi, horizon, &mut rng)
        .expect("trajectory");

    // Baseline: raw perturb + audit-only incremental quantification.
    group.bench_function("uncalibrated_audit", |b| {
        let plm = PlanarLaplace::new(grid.clone(), 1.5).expect("plm");
        b.iter(|| {
            let mut world = IncrementalTwoWorld::new(event.clone(), provider.clone(), pi.clone())
                .expect("world");
            let mut rng = StdRng::seed_from_u64(9);
            let mut worst = 0.0f64;
            for &loc in &trajectory {
                let obs = plm.perturb(loc, &mut rng);
                worst = worst.max(
                    world
                        .observe(&plm.emission_column(obs))
                        .expect("observe")
                        .privacy_loss,
                );
            }
            worst
        })
    });
    // Guarded: peek-certify-backoff-commit per release.
    group.bench_function("calibrated_release", |b| {
        b.iter(|| {
            let mut mech = CalibratedMechanism::new(
                Box::new(PlanarLaplace::new(grid.clone(), 1.5).expect("plm")),
                std::slice::from_ref(&event),
                provider.clone(),
                pi.clone(),
                GuardConfig {
                    target_epsilon: 0.8,
                    ..GuardConfig::default()
                },
            )
            .expect("guard");
            let mut rng = StdRng::seed_from_u64(9);
            let mut worst = 0.0f64;
            for &loc in &trajectory {
                worst = worst.max(mech.release(loc, &mut rng).expect("release").loss);
            }
            worst
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_planner_vs_horizon,
    bench_capacity_sweep,
    bench_guard_overhead
);
criterion_main!(benches);
