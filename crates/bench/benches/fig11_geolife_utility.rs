//! Criterion bench for the Figs. 11/12 core: GeoLife-substitute world
//! training and one framework run on the trained chain.

use criterion::{criterion_group, criterion_main, Criterion};
use priste_bench::{experiments, Scale};
use priste_core::runner::run_one;
use priste_core::{PlmSource, PristeConfig};
use priste_data::geolife_sim::{self, CommuterConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig11(c: &mut Criterion) {
    let scale = Scale::smoke();
    let mut group = c.benchmark_group("fig11_geolife_utility");
    group.sample_size(10);

    // World training (simulate days + MLE fit).
    let cfg = CommuterConfig {
        rows: scale.geolife_side,
        cols: scale.geolife_side,
        cell_size_km: scale.geolife_cell_km,
        days: 10,
        steps_per_day: 24,
        ..Default::default()
    };
    group.bench_function("commuter_world_training", |b| {
        b.iter(|| geolife_sim::build(&cfg).expect("simulator"))
    });

    // One run over the trained world.
    let world = experiments::geolife_world(&scale);
    let gl_scale = Scale {
        grid_side: scale.geolife_side,
        ..scale.clone()
    };
    let events = vec![experiments::presence_event(&gl_scale, 4, 8)];
    let day =
        world.trajectories[0][..scale.geolife_horizon.min(world.trajectories[0].len())].to_vec();
    group.bench_function("algorithm2_run_on_geolife", |b| {
        b.iter(|| {
            let source = PlmSource::new(world.grid.clone(), 1.0).expect("plm");
            let mut rng = StdRng::seed_from_u64(3);
            run_one(
                &events,
                &world.chain,
                &world.grid,
                &PristeConfig::with_epsilon(1.0),
                source,
                &day,
                &mut rng,
            )
            .expect("run")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
