//! Ablation bench: the structured rank-1 simplex scan vs the generic
//! projected-gradient/spectral box solver vs the box knapsack machinery,
//! on Theorem-shaped programs. Quantifies the payoff of exploiting the
//! outer-product structure the paper feeds to CPLEX as a dense QP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priste_linalg::{Matrix, Vector};
use priste_qp::generic::{projected_gradient_max, BoxQp};
use priste_qp::simplex::maximize_simplex;
use priste_qp::{bilinear, BilinearProgram, ConstraintSet, SolverConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Theorem-shaped program: a = prior coefficients, g = (e^ε−1)b − e^ε c.
fn theorem_program(rng: &mut StdRng, m: usize) -> BilinearProgram {
    let eps: f64 = 0.5;
    let a = Vector::from((0..m).map(|_| rng.gen::<f64>() * 0.5).collect::<Vec<_>>());
    let c = Vector::from((0..m).map(|_| rng.gen::<f64>()).collect::<Vec<_>>());
    let b = Vector::from(
        c.as_slice()
            .iter()
            .zip(a.as_slice())
            .map(|(&ci, &ai)| ci * ai * rng.gen::<f64>())
            .collect::<Vec<_>>(),
    );
    let g = Vector::from(
        b.as_slice()
            .iter()
            .zip(c.as_slice())
            .map(|(&bi, &ci)| (eps.exp() - 1.0) * bi - eps.exp() * ci)
            .collect::<Vec<_>>(),
    );
    BilinearProgram::new(a, g, b)
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_qp_solvers");
    group.sample_size(20);
    for m in [36usize, 100, 400] {
        let mut rng = StdRng::seed_from_u64(m as u64);
        let program = theorem_program(&mut rng, m);
        group.bench_with_input(
            BenchmarkId::new("structured_simplex_exact", m),
            &m,
            |b, _| b.iter(|| maximize_simplex(&program, u64::MAX, f64::INFINITY).best_value),
        );
        let dense = BoxQp::new(Matrix::outer(&program.a, &program.g), program.h.clone());
        group.bench_with_input(
            BenchmarkId::new("generic_projected_gradient", m),
            &m,
            |b, _| b.iter(|| projected_gradient_max(&dense, &SolverConfig::with_budget(2_000)).1),
        );
        let box_cfg = SolverConfig {
            constraint: ConstraintSet::Box,
            ..SolverConfig::with_budget(5_000)
        };
        group.bench_with_input(BenchmarkId::new("box_knapsack_sweep", m), &m, |b, _| {
            b.iter(|| bilinear::maximize(&program, &box_cfg).lower_bound)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
