//! Criterion bench for the Fig. 10 core: Algorithm 3's per-step work —
//! δ-location-set construction, restricted-PLM build, and a full run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priste_bench::{experiments, Scale};
use priste_core::runner::run_one;
use priste_core::{DeltaLocSource, PristeConfig};
use priste_linalg::Vector;
use priste_lppm::DeltaLocationSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig10(c: &mut Criterion) {
    let scale = Scale::smoke();
    let (grid, chain) = experiments::synthetic_world(&scale, 1.0);
    let events = vec![experiments::presence_event(&scale, 4, 8)];
    let m = grid.num_cells();
    let mut rng = StdRng::seed_from_u64(1);
    let trajectory = chain
        .sample_trajectory(priste_geo::CellId(0), 12, &mut rng)
        .expect("sampling");

    let mut group = c.benchmark_group("fig10_delta_location_set");
    group.sample_size(10);

    // The per-step mechanism construction alone.
    let dls = DeltaLocationSet::new(grid.clone(), 0.2).expect("delta");
    let prior = Vector::uniform(m);
    group.bench_function("restricted_mechanism_build", |b| {
        b.iter(|| dls.mechanism_for(&prior, 0.2).expect("mechanism"))
    });

    // Full Algorithm 3 runs per δ.
    for delta in [0.1, 0.5] {
        group.bench_with_input(
            BenchmarkId::new("algorithm3_run", delta),
            &delta,
            |b, &delta| {
                b.iter(|| {
                    let source = DeltaLocSource::new(
                        grid.clone(),
                        delta,
                        0.2,
                        chain.clone(),
                        Vector::uniform(m),
                    )
                    .expect("source");
                    let mut rng = StdRng::seed_from_u64(2);
                    run_one(
                        &events,
                        &chain,
                        &grid,
                        &PristeConfig::with_epsilon(0.5),
                        source,
                        &trajectory,
                        &mut rng,
                    )
                    .expect("run")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
