//! Cold-start and recovery cost of the durable session store.
//!
//! Three questions, each at 100 and 1000 users on a 6×6 world:
//!
//! * **WAL-replay recovery** — `SessionManager::recover` over a directory
//!   whose snapshot is empty and whose per-shard WALs carry the whole
//!   stream (`snapshot_every: 0`, the crash-mid-stream worst case).
//! * **snapshot recovery** — the same committed state after an explicit
//!   checkpoint: one CRC-checked snapshot read, no replay.
//! * **journaling overhead** — batched audit ingest with the per-shard WAL
//!   attached (fsync off; the codec + write cost) versus the plain
//!   in-memory service.
//!
//! Expected shape: snapshot recovery is near-constant in stream length and
//! strictly cheaper than replay; journaling costs a small constant factor
//! per observation (the emission column dominates the record).
//!
//! `recover` is read-only, so each measured iteration recovers from the
//! same directory — no per-iteration re-setup distorts the numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priste_event::{Presence, StEvent};
use priste_geo::{GridMap, Region};
use priste_linalg::Vector;
use priste_lppm::{Lppm, PlanarLaplace};
use priste_markov::{gaussian_kernel_chain, Homogeneous, TransitionProvider};
use priste_online::{DurableOptions, OnlineConfig, SessionManager, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const SHARDS: usize = 8;
const STEPS: usize = 8;

fn world() -> (GridMap, Arc<Homogeneous>, StEvent) {
    let grid = GridMap::new(6, 6, 1.0).expect("grid");
    let m = grid.num_cells();
    let chain = gaussian_kernel_chain(&grid, 1.0).expect("chain");
    let event: StEvent = Presence::new(
        Region::from_one_based_range(m, 1, m / 4).expect("range"),
        2,
        5,
    )
    .expect("presence")
    .into();
    (grid, Arc::new(Homogeneous::new(chain)), event)
}

fn config() -> OnlineConfig {
    OnlineConfig {
        epsilon: 1.0,
        num_shards: SHARDS,
        linger: 2,
        budget: 1e9,
    }
}

fn service(
    provider: &Arc<Homogeneous>,
    event: &StEvent,
    users: usize,
) -> SessionManager<Arc<Homogeneous>> {
    let m = provider.num_states();
    let mut svc = SessionManager::new(Arc::clone(provider), config()).expect("service");
    let tpl = svc.register_template(event.clone()).expect("template");
    for u in 0..users as u64 {
        svc.add_user(UserId(u), Vector::uniform(m)).expect("user");
        svc.attach_event(UserId(u), tpl).expect("attach");
    }
    svc
}

/// One timestep's batch of PLM emission columns for every user.
fn batch(grid: &GridMap, users: usize, seed: u64) -> Vec<(UserId, Vector)> {
    let m = grid.num_cells();
    let plm = PlanarLaplace::new(grid.clone(), 0.8).expect("plm");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..users as u64)
        .map(|u| {
            let true_cell = priste_geo::CellId((u as usize * 7 + seed as usize) % m);
            (
                UserId(u),
                plm.emission_column(plm.perturb(true_cell, &mut rng)),
            )
        })
        .collect()
}

fn tempdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("priste-bench-durable-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Streams `STEPS` batches through a durable service journaling into `dir`,
/// optionally compacting at the end, then drops it ("crashes").
fn populate(dir: &Path, users: usize, checkpoint: bool) -> (Arc<Homogeneous>, StEvent) {
    let (grid, provider, event) = world();
    let mut svc = service(&provider, &event, users);
    svc.make_durable(
        dir,
        DurableOptions {
            fsync: false,
            snapshot_every: 0,
        },
    )
    .expect("make_durable");
    for t in 0..STEPS {
        svc.ingest_batch(&batch(&grid, users, t as u64))
            .expect("ingest");
    }
    if checkpoint {
        svc.checkpoint().expect("checkpoint");
    }
    (provider, event)
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("durability_recovery");
    group.sample_size(10);

    for users in [100usize, 1000] {
        for (label, checkpoint) in [("wal_replay", false), ("snapshot", true)] {
            let dir = tempdir(&format!("{label}-{users}"));
            let (provider, event) = populate(&dir, users, checkpoint);
            group.bench_with_input(BenchmarkId::new(label, users), &users, |b, _| {
                b.iter(|| {
                    SessionManager::recover(
                        Arc::clone(&provider),
                        config(),
                        vec![event.clone()],
                        &dir,
                    )
                    .expect("recover")
                    .state_digest()
                })
            });
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    group.finish();
}

fn bench_journaling_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("durability_journaling_overhead");
    group.sample_size(10);

    for users in [100usize, 1000] {
        let (grid, provider, event) = world();
        let feed: Vec<_> = (0..STEPS).map(|t| batch(&grid, users, t as u64)).collect();

        group.bench_with_input(BenchmarkId::new("in_memory", users), &users, |b, _| {
            b.iter(|| {
                let mut svc = service(&provider, &event, users);
                for step in &feed {
                    svc.ingest_batch(step).expect("ingest");
                }
                svc.stats().observations
            })
        });

        group.bench_with_input(BenchmarkId::new("journaled", users), &users, |b, _| {
            b.iter(|| {
                let dir = tempdir(&format!("overhead-{users}"));
                let mut svc = service(&provider, &event, users);
                svc.make_durable(
                    &dir,
                    DurableOptions {
                        fsync: false,
                        snapshot_every: 0,
                    },
                )
                .expect("make_durable");
                for step in &feed {
                    svc.ingest_batch(step).expect("ingest");
                }
                let n = svc.stats().observations;
                drop(svc);
                std::fs::remove_dir_all(&dir).ok();
                n
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recovery, bench_journaling_overhead);
criterion_main!(benches);
