//! Criterion bench for Fig. 14: the quantification runtime comparison —
//! Algorithm 4's exponential enumeration vs the linear two-possible-world
//! method, on identical PATTERN joints.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priste_event::{Pattern, StEvent};
use priste_geo::{CellId, GridMap, Region};
use priste_linalg::Vector;
use priste_lppm::{Lppm, PlanarLaplace};
use priste_markov::{gaussian_kernel_chain, Homogeneous};
use priste_quantify::{naive, TheoremBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(length: usize, width: usize) -> (StEvent, Pattern, Homogeneous, Vec<Vector>, Vector) {
    let grid = GridMap::new(15, 15, 1.0).expect("grid");
    let m = grid.num_cells();
    let chain = gaussian_kernel_chain(&grid, 1.0).expect("chain");
    let plm = PlanarLaplace::new(grid, 1.0).expect("plm");
    let region = Region::from_one_based_range(m, 1, width).expect("range");
    let pattern = Pattern::new(vec![region; length], 2).expect("pattern");
    let event: StEvent = pattern.clone().into();
    let mut rng = StdRng::seed_from_u64(0);
    let obs = chain
        .sample_trajectory(CellId(0), event.end(), &mut rng)
        .expect("sampling");
    let cols: Vec<Vector> = obs.iter().map(|&o| plm.emission_column(o)).collect();
    let pi = Vector::uniform(m);
    (event, pattern, Homogeneous::new(chain), cols, pi)
}

fn bench_fig14(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_runtime_scaling");
    group.sample_size(10);

    // Event-length axis at width 4 (baseline cost = 4^length).
    for length in [5usize, 7, 9] {
        let (event, pattern, provider, cols, pi) = setup(length, 4);
        group.bench_with_input(
            BenchmarkId::new("priste_two_world", length),
            &length,
            |b, _| {
                b.iter(|| {
                    let mut builder = TheoremBuilder::new(&event, &provider).expect("builder");
                    let mut last = 0.0;
                    for col in &cols {
                        let inputs = builder.candidate(col).expect("candidate");
                        last = pi.dot(&inputs.b).expect("dot");
                        builder.commit(col.clone()).expect("commit");
                    }
                    last
                })
            },
        );
        let window = &cols[pattern.start() - 1..];
        group.bench_with_input(
            BenchmarkId::new("baseline_algorithm4", length),
            &length,
            |b, _| {
                b.iter(|| {
                    naive::pattern_joint_algorithm4(&pattern, &provider, &pi, window, u128::MAX)
                        .expect("enumeration")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig14);
criterion_main!(benches);
