//! Criterion bench for Fig. 14: the quantification runtime comparison —
//! Algorithm 4's exponential enumeration vs the linear two-possible-world
//! method, on identical PATTERN joints — plus the grid-size axis: dense vs
//! CSR transition backends from `m = 225` up to `m = 10⁴` cells.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priste_event::{Pattern, Presence, StEvent};
use priste_geo::{CellId, GridMap, Region};
use priste_linalg::Vector;
use priste_lppm::{Lppm, PlanarLaplace};
use priste_markov::{
    gaussian_kernel_chain, gaussian_kernel_chain_sparse, Homogeneous, MarkovModel,
};
use priste_quantify::{naive, IncrementalTwoWorld, TheoremBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn setup(
    side: usize,
    length: usize,
    width: usize,
) -> (StEvent, Pattern, Homogeneous, Vec<Vector>, Vector) {
    let grid = GridMap::new(side, side, 1.0).expect("grid");
    let m = grid.num_cells();
    let chain = gaussian_kernel_chain(&grid, 1.0).expect("chain");
    let plm = PlanarLaplace::new(grid, 1.0).expect("plm");
    let region = Region::from_one_based_range(m, 1, width).expect("range");
    let pattern = Pattern::new(vec![region; length], 2).expect("pattern");
    let event: StEvent = pattern.clone().into();
    let mut rng = StdRng::seed_from_u64(0);
    let obs = chain
        .sample_trajectory(CellId(0), event.end(), &mut rng)
        .expect("sampling");
    let cols: Vec<Vector> = obs.iter().map(|&o| plm.emission_column(o)).collect();
    let pi = Vector::uniform(m);
    (event, pattern, Homogeneous::new(chain), cols, pi)
}

fn bench_fig14(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_runtime_scaling");
    group.sample_size(10);

    // Event-length axis at width 4 on the paper's 15×15 map (baseline cost
    // = 4^length).
    for length in [5usize, 7, 9] {
        let (event, pattern, provider, cols, pi) = setup(15, length, 4);
        group.bench_with_input(
            BenchmarkId::new("priste_two_world", length),
            &length,
            |b, _| {
                b.iter(|| {
                    let mut builder = TheoremBuilder::new(&event, &provider).expect("builder");
                    let mut last = 0.0;
                    for col in &cols {
                        let inputs = builder.candidate(col).expect("candidate");
                        last = pi.dot(&inputs.b).expect("dot");
                        builder.commit(col.clone()).expect("commit");
                    }
                    last
                })
            },
        );
        let window = &cols[pattern.start() - 1..];
        group.bench_with_input(
            BenchmarkId::new("baseline_algorithm4", length),
            &length,
            |b, _| {
                b.iter(|| {
                    naive::pattern_joint_algorithm4(&pattern, &provider, &pi, window, u128::MAX)
                        .expect("enumeration")
                })
            },
        );
    }
    group.finish();
}

/// Grid-size axis: per-observation cost of the incremental two-world engine
/// on the §V.A banded Gaussian world (σ = 0.5 km, 1 km cells), dense vs CSR
/// transition backend. Dense is `O(m²)` per observation and stops at
/// `m = 2500`; the CSR backend is `O(nnz)` (≤ 81 entries per row here) and
/// extends to `m = 10⁴`.
fn bench_grid_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_grid_scaling");
    group.sample_size(10);

    for side in [15usize, 50, 100] {
        let grid = GridMap::new(side, side, 1.0).expect("grid");
        let m = grid.num_cells();
        let sparse = gaussian_kernel_chain_sparse(&grid, 0.5).expect("sparse chain");
        let event: StEvent = Presence::new(
            Region::from_one_based_range(m, 1, m / 4).expect("range"),
            2,
            5,
        )
        .expect("presence")
        .into();
        let mut rng = StdRng::seed_from_u64(5);
        let cols: Vec<Vector> = (0..8)
            .map(|_| {
                Vector::from(
                    (0..m)
                        .map(|_| rng.gen::<f64>() * 0.9 + 0.1)
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let pi = Vector::uniform(m);

        if m <= 2500 {
            let dense =
                MarkovModel::new(sparse.transition_matrix().to_dense_matrix()).expect("dense twin");
            let provider = Homogeneous::new(dense);
            let mut q = IncrementalTwoWorld::new(event.clone(), &provider, pi.clone())
                .expect("incremental");
            group.bench_with_input(BenchmarkId::new("incremental_dense", m), &m, |b, _| {
                b.iter(|| {
                    q.reset();
                    let mut last = 0.0;
                    for col in &cols {
                        last = q.observe(col).expect("observe").posterior;
                    }
                    last
                })
            });
        }

        let provider = Homogeneous::new(sparse);
        let mut q =
            IncrementalTwoWorld::new(event.clone(), &provider, pi.clone()).expect("incremental");
        group.bench_with_input(BenchmarkId::new("incremental_sparse", m), &m, |b, _| {
            b.iter(|| {
                q.reset();
                let mut last = 0.0;
                for col in &cols {
                    last = q.observe(col).expect("observe").posterior;
                }
                last
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig14, bench_grid_scaling);
criterion_main!(benches);
