//! Criterion bench for Table III's knob: the Theorem IV.1 check cost at
//! different work budgets (the deterministic analogue of the CPLEX
//! threshold), on real inputs harvested from a framework run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priste_bench::{experiments, Scale};
use priste_lppm::{Lppm, PlanarLaplace};
use priste_markov::Homogeneous;
use priste_qp::{SolverConfig, TheoremChecker};
use priste_quantify::{TheoremBuilder, TheoremInputs};

/// Harvests Theorem inputs from a realistic release prefix.
fn harvest_inputs() -> Vec<TheoremInputs> {
    let scale = Scale::smoke();
    let (grid, chain) = experiments::synthetic_world(&scale, 1.0);
    let events = [experiments::presence_event(&scale, 4, 8)];
    let plm = PlanarLaplace::new(grid, 0.2).expect("plm");
    let provider = Homogeneous::new(chain);
    let mut builder = TheoremBuilder::new(&events[0], provider).expect("builder");
    let mut out = Vec::new();
    for t in 0..10 {
        let col = plm.emission_column(priste_geo::CellId(t % plm.num_cells()));
        out.push(builder.candidate(&col).expect("candidate"));
        builder.commit(col).expect("commit");
    }
    out
}

fn bench_table3(c: &mut Criterion) {
    let inputs = harvest_inputs();
    let mut group = c.benchmark_group("table3_conservative_release");
    group.sample_size(20);
    for budget in [50u64, 500, 5_000, u64::MAX / 2] {
        let checker = TheoremChecker::new(0.5, SolverConfig::with_budget(budget));
        group.bench_with_input(
            BenchmarkId::new("theorem_check_budget", budget),
            &budget,
            |b, _| {
                b.iter(|| {
                    let mut satisfied = 0usize;
                    for i in &inputs {
                        if checker.check(&i.a, &i.b, &i.c).satisfied() {
                            satisfied += 1;
                        }
                    }
                    satisfied
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
