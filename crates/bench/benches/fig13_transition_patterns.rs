//! Criterion bench for the Fig. 13 core: Gaussian-kernel chain synthesis
//! across σ and framework runs on weak vs strong mobility patterns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priste_bench::{experiments, Scale};
use priste_core::runner::run_one;
use priste_core::{PlmSource, PristeConfig};
use priste_markov::gaussian_kernel_chain;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig13(c: &mut Criterion) {
    let scale = Scale::smoke();
    let (grid, _) = experiments::synthetic_world(&scale, 1.0);
    let events = vec![experiments::presence_event(&scale, 4, 8)];

    let mut group = c.benchmark_group("fig13_transition_patterns");
    group.sample_size(10);

    group.bench_function("gaussian_kernel_synthesis", |b| {
        b.iter(|| gaussian_kernel_chain(&grid, 1.0).expect("chain"))
    });

    for sigma in [0.01, 10.0] {
        let chain = gaussian_kernel_chain(&grid, sigma).expect("chain");
        let mut rng = StdRng::seed_from_u64(1);
        let trajectory = chain
            .sample_trajectory(priste_geo::CellId(0), 12, &mut rng)
            .expect("sampling");
        group.bench_with_input(
            BenchmarkId::new("algorithm2_run_sigma", sigma),
            &sigma,
            |b, _| {
                b.iter(|| {
                    let source = PlmSource::new(grid.clone(), 1.0).expect("plm");
                    let mut rng = StdRng::seed_from_u64(2);
                    run_one(
                        &events,
                        &chain,
                        &grid,
                        &PristeConfig::with_epsilon(0.5),
                        source,
                        &trajectory,
                        &mut rng,
                    )
                    .expect("run")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
