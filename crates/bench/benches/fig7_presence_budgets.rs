//! Criterion bench for the Fig. 7 core: one Algorithm 2 run (PRESENCE
//! event, budget-halving calibration) at smoke scale, per ε.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priste_bench::{experiments, Scale};
use priste_core::runner::run_one;
use priste_core::{PlmSource, PristeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig7(c: &mut Criterion) {
    let scale = Scale::smoke();
    let (grid, chain) = experiments::synthetic_world(&scale, 1.0);
    let events = vec![experiments::presence_event(&scale, 4, 8)];
    let mut rng = StdRng::seed_from_u64(1);
    let trajectory = chain
        .sample_trajectory(priste_geo::CellId(0), scale.horizon, &mut rng)
        .expect("sampling");

    let mut group = c.benchmark_group("fig7_presence_budgets");
    group.sample_size(10);
    for eps in [0.1, 1.0] {
        group.bench_with_input(BenchmarkId::new("algorithm2_run", eps), &eps, |b, &eps| {
            b.iter(|| {
                let source = PlmSource::new(grid.clone(), 0.2).expect("plm");
                let mut rng = StdRng::seed_from_u64(2);
                run_one(
                    &events,
                    &chain,
                    &grid,
                    &PristeConfig::with_epsilon(eps),
                    source,
                    &trajectory,
                    &mut rng,
                )
                .expect("run")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
