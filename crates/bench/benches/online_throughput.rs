//! Throughput bench for the streaming subsystem: incremental per-timestep
//! checking ([`IncrementalTwoWorld`], `O(m²)` per observation → `O(T·m²)`
//! per horizon) versus full-horizon replay (the offline
//! [`FixedPiQuantifier`]/`TheoremBuilder` path, `O(t·m²)` per candidate →
//! `O(T²·m²)` per horizon), plus users×horizon scaling of the sharded
//! [`SessionManager`].
//!
//! Expected shape: at `T = 10` the two are comparable (constant factors
//! dominate); from `T ≥ 50` the incremental path wins by roughly `T/2` and
//! the gap widens linearly — the acceptance evidence for `priste-online`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priste_event::{Presence, StEvent};
use priste_geo::{GridMap, Region};
use priste_linalg::Vector;
use priste_lppm::{Lppm, PlanarLaplace};
use priste_markov::{gaussian_kernel_chain, Homogeneous};
use priste_online::{OnlineConfig, SessionManager, UserId};
use priste_quantify::{fixed_pi::FixedPiQuantifier, IncrementalTwoWorld};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// One world: an 8×8 grid (m = 64), a presence event over timestamps 3–6,
/// and a seeded stream of `horizon` PLM emission columns.
fn setup(horizon: usize) -> (StEvent, Homogeneous, Vec<Vector>, Vector) {
    let grid = GridMap::new(8, 8, 1.0).expect("grid");
    let m = grid.num_cells();
    let chain = gaussian_kernel_chain(&grid, 1.0).expect("chain");
    let plm = PlanarLaplace::new(grid, 0.8).expect("plm");
    let event: StEvent = Presence::new(
        Region::from_one_based_range(m, 1, m / 4).expect("range"),
        3,
        6,
    )
    .expect("presence")
    .into();
    let mut rng = StdRng::seed_from_u64(7);
    let provider = Homogeneous::new(chain);
    let obs = provider
        .model()
        .sample_trajectory_from(&Vector::uniform(m), horizon, &mut rng)
        .expect("sampling");
    let cols: Vec<Vector> = obs.iter().map(|&o| plm.emission_column(o)).collect();
    let pi = Vector::uniform(m);
    (event, provider, cols, pi)
}

fn bench_incremental_vs_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_incremental_vs_replay");
    group.sample_size(10);

    for horizon in [10usize, 50, 100] {
        let (event, provider, cols, pi) = setup(horizon);

        // Streaming path: carry the lifted forward vector, O(T·m²) total.
        group.bench_with_input(
            BenchmarkId::new("incremental_stream", horizon),
            &horizon,
            |b, _| {
                b.iter(|| {
                    let mut inc = IncrementalTwoWorld::new(event.clone(), &provider, pi.clone())
                        .expect("incremental");
                    let mut last = 0.0;
                    for col in &cols {
                        last = inc.observe(col).expect("observe").posterior;
                    }
                    last
                })
            },
        );

        // Offline path: every step replays the committed chain, O(T²·m²).
        group.bench_with_input(
            BenchmarkId::new("full_horizon_replay", horizon),
            &horizon,
            |b, _| {
                b.iter(|| {
                    let mut quant =
                        FixedPiQuantifier::new(&event, &provider, pi.clone()).expect("quantifier");
                    let mut last = 0.0;
                    for col in &cols {
                        last = quant.observe(col).expect("observe").privacy_loss;
                    }
                    last
                })
            },
        );
    }
    group.finish();
}

fn bench_users_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_users_scaling");
    group.sample_size(10);

    let horizon = 20usize;
    let (event, provider, cols, pi) = setup(horizon);
    let provider = Arc::new(provider);
    for users in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("ingest_batch", users), &users, |b, _| {
            b.iter(|| {
                let mut svc = SessionManager::new(
                    Arc::clone(&provider),
                    OnlineConfig {
                        epsilon: 1.0,
                        num_shards: 8,
                        linger: 2,
                        budget: 1e9,
                    },
                )
                .expect("service");
                let tpl = svc.register_template(event.clone()).expect("template");
                for u in 0..users as u64 {
                    svc.add_user(UserId(u), pi.clone()).expect("user");
                    svc.attach_event(UserId(u), tpl).expect("attach");
                }
                for col in &cols {
                    // Same-timestep batch: every user releases an
                    // observation drawn from the shared column stream.
                    let batch: Vec<(UserId, Vector)> = (0..users as u64)
                        .map(|u| (UserId(u), col.clone()))
                        .collect();
                    svc.ingest_batch(&batch).expect("ingest");
                }
                svc.stats().observations
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental_vs_replay, bench_users_scaling);
criterion_main!(benches);
