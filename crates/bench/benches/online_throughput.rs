//! Throughput bench for the streaming subsystem: incremental per-timestep
//! checking ([`IncrementalTwoWorld`], `O(m²)` per observation → `O(T·m²)`
//! per horizon) versus full-horizon replay (the offline
//! [`FixedPiQuantifier`]/`TheoremBuilder` path, `O(t·m²)` per candidate →
//! `O(T²·m²)` per horizon), plus users×horizon scaling of the sharded
//! [`SessionManager`].
//!
//! Expected shape: at `T = 10` the two are comparable (constant factors
//! dominate); from `T ≥ 50` the incremental path wins by roughly `T/2` and
//! the gap widens linearly — the acceptance evidence for `priste-online`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use priste_event::{Presence, StEvent};
use priste_geo::{CellId, GridMap, Region};
use priste_linalg::{SparseMatrix, Vector};
use priste_lppm::{Lppm, PlanarLaplace};
use priste_markov::{gaussian_kernel_chain, Homogeneous, TransitionMatrix};
use priste_online::{OnlineConfig, SessionManager, UserId};
use priste_quantify::lifted::LiftedStep;
use priste_quantify::{fixed_pi::FixedPiQuantifier, IncrementalTwoWorld};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Allocation-counting shim around the system allocator. The workspace
/// libraries forbid `unsafe`; this bench-only target uses it solely to
/// *prove* the steady-state allocation contract of the lifted kernels —
/// [`LiftedStep::apply_rows`] must not allocate per-application region
/// masks or half-split copies once the region's mask cache is warm.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One world: an 8×8 grid (m = 64), a presence event over timestamps 3–6,
/// and a seeded stream of `horizon` PLM emission columns.
fn setup(horizon: usize) -> (StEvent, Homogeneous, Vec<Vector>, Vector) {
    let grid = GridMap::new(8, 8, 1.0).expect("grid");
    let m = grid.num_cells();
    let chain = gaussian_kernel_chain(&grid, 1.0).expect("chain");
    let plm = PlanarLaplace::new(grid, 0.8).expect("plm");
    let event: StEvent = Presence::new(
        Region::from_one_based_range(m, 1, m / 4).expect("range"),
        3,
        6,
    )
    .expect("presence")
    .into();
    let mut rng = StdRng::seed_from_u64(7);
    let provider = Homogeneous::new(chain);
    let obs = provider
        .model()
        .sample_trajectory_from(&Vector::uniform(m), horizon, &mut rng)
        .expect("sampling");
    let cols: Vec<Vector> = obs.iter().map(|&o| plm.emission_column(o)).collect();
    let pi = Vector::uniform(m);
    (event, provider, cols, pi)
}

fn bench_incremental_vs_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_incremental_vs_replay");
    group.sample_size(10);

    for horizon in [10usize, 50, 100] {
        let (event, provider, cols, pi) = setup(horizon);

        // Streaming path: carry the lifted forward vector, O(T·m²) total.
        group.bench_with_input(
            BenchmarkId::new("incremental_stream", horizon),
            &horizon,
            |b, _| {
                b.iter(|| {
                    let mut inc = IncrementalTwoWorld::new(event.clone(), &provider, pi.clone())
                        .expect("incremental");
                    let mut last = 0.0;
                    for col in &cols {
                        last = inc.observe(col).expect("observe").posterior;
                    }
                    last
                })
            },
        );

        // Offline path: every step replays the committed chain, O(T²·m²).
        group.bench_with_input(
            BenchmarkId::new("full_horizon_replay", horizon),
            &horizon,
            |b, _| {
                b.iter(|| {
                    let mut quant =
                        FixedPiQuantifier::new(&event, &provider, pi.clone()).expect("quantifier");
                    let mut last = 0.0;
                    for col in &cols {
                        last = quant.observe(col).expect("observe").privacy_loss;
                    }
                    last
                })
            },
        );
    }
    group.finish();
}

fn bench_users_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_users_scaling");
    group.sample_size(10);

    let horizon = 20usize;
    let (event, provider, cols, pi) = setup(horizon);
    let provider = Arc::new(provider);
    for users in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("ingest_batch", users), &users, |b, _| {
            b.iter(|| {
                let mut svc = SessionManager::new(
                    Arc::clone(&provider),
                    OnlineConfig {
                        epsilon: 1.0,
                        num_shards: 8,
                        linger: 2,
                        budget: 1e9,
                    },
                )
                .expect("service");
                let tpl = svc.register_template(event.clone()).expect("template");
                for u in 0..users as u64 {
                    svc.add_user(UserId(u), pi.clone()).expect("user");
                    svc.attach_event(UserId(u), tpl).expect("attach");
                }
                for col in &cols {
                    // Same-timestep batch: every user releases an
                    // observation drawn from the shared column stream.
                    let batch: Vec<(UserId, Vector)> = (0..users as u64)
                        .map(|u| (UserId(u), col.clone()))
                        .collect();
                    svc.ingest_batch(&batch).expect("ingest");
                }
                svc.stats().observations
            })
        });
    }
    group.finish();
}

/// The shared-step batched path the session manager runs every timestep:
/// one [`LiftedStep`] applied to every active window. Asserts the
/// steady-state allocation budget before timing — per batch of `k` lifted
/// vectors the kernels may allocate the `k` output vectors, two scratch
/// halves and the collection itself, but no per-vector indicator masks or
/// half-split round-trips (the pre-fix behaviour, ≥ `4k`).
fn bench_lifted_apply(c: &mut Criterion) {
    let grid = GridMap::new(20, 20, 1.0).expect("grid");
    let m = grid.num_cells();
    let dense_chain = gaussian_kernel_chain(&grid, 1.0).expect("chain");
    let dense = TransitionMatrix::Dense(dense_chain.transition().clone());
    let sparse =
        TransitionMatrix::Sparse(SparseMatrix::from_dense(dense_chain.transition(), 1e-12));
    let region = Region::from_cells(m, (0..m / 4).map(CellId)).expect("region");
    let mut rng = StdRng::seed_from_u64(9);
    let xs: Vec<Vector> = (0..64)
        .map(|_| {
            let mut v = Vector::from(
                (0..2 * m)
                    .map(|_| rand::Rng::gen::<f64>(&mut rng))
                    .collect::<Vec<_>>(),
            );
            v.normalize_mut().expect("positive mass");
            v
        })
        .collect();

    let step = LiftedStep::Capture {
        m: &dense,
        region: &region,
    };
    let _warm = step.apply_rows(&xs); // fills the region's mask cache
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = step.apply_rows(&xs);
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(out.len(), xs.len());
    assert!(
        allocs <= 2 * xs.len() + 8,
        "steady-state apply_rows allocated {allocs} times for {} vectors \
         (per-application mask or buffer churn crept back in)",
        xs.len()
    );

    let mut group = c.benchmark_group("online_lifted_apply");
    group.sample_size(10);
    for (name, matrix) in [("dense", &dense), ("sparse", &sparse)] {
        let step = LiftedStep::Capture {
            m: matrix,
            region: &region,
        };
        group.bench_with_input(BenchmarkId::new("apply_rows_64", name), &name, |b, _| {
            b.iter(|| step.apply_rows(&xs))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_incremental_vs_replay,
    bench_users_scaling,
    bench_lifted_apply
);
criterion_main!(benches);
