use std::fmt;

/// Errors surfaced by the PriSTE framework.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A mechanism-layer failure.
    Lppm(priste_lppm::LppmError),
    /// A quantification-layer failure.
    Quantify(priste_quantify::QuantifyError),
    /// An event-layer failure.
    Event(priste_event::EventError),
    /// A Markov-layer failure.
    Markov(priste_markov::MarkovError),
    /// A geometry failure (distances, cells).
    Geo(priste_geo::GeoError),
    /// The configured event set was empty.
    NoEvents,
    /// The true location fed to a release was out of the state domain.
    LocationOutOfRange {
        /// Offending 0-based cell index.
        cell: usize,
        /// Domain size.
        num_cells: usize,
    },
    /// Budget decay hit the configured floor and the uniform fallback was
    /// disabled.
    BudgetExhausted {
        /// Timestamp at which calibration failed.
        t: usize,
        /// The floor that was reached.
        floor: f64,
    },
    /// Configuration validation failure.
    InvalidConfig {
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Lppm(e) => write!(f, "mechanism error: {e}"),
            CoreError::Quantify(e) => write!(f, "quantification error: {e}"),
            CoreError::Event(e) => write!(f, "event error: {e}"),
            CoreError::Markov(e) => write!(f, "markov error: {e}"),
            CoreError::Geo(e) => write!(f, "geometry error: {e}"),
            CoreError::NoEvents => write!(f, "at least one spatiotemporal event is required"),
            CoreError::LocationOutOfRange { cell, num_cells } => {
                write!(f, "true location {cell} out of range for {num_cells} cells")
            }
            CoreError::BudgetExhausted { t, floor } => {
                write!(
                    f,
                    "budget decayed to the floor {floor} at t={t} without certifying"
                )
            }
            CoreError::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Lppm(e) => Some(e),
            CoreError::Quantify(e) => Some(e),
            CoreError::Event(e) => Some(e),
            CoreError::Markov(e) => Some(e),
            CoreError::Geo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<priste_lppm::LppmError> for CoreError {
    fn from(e: priste_lppm::LppmError) -> Self {
        CoreError::Lppm(e)
    }
}

impl From<priste_quantify::QuantifyError> for CoreError {
    fn from(e: priste_quantify::QuantifyError) -> Self {
        CoreError::Quantify(e)
    }
}

impl From<priste_event::EventError> for CoreError {
    fn from(e: priste_event::EventError) -> Self {
        CoreError::Event(e)
    }
}

impl From<priste_markov::MarkovError> for CoreError {
    fn from(e: priste_markov::MarkovError) -> Self {
        CoreError::Markov(e)
    }
}

impl From<priste_geo::GeoError> for CoreError {
    fn from(e: priste_geo::GeoError) -> Self {
        CoreError::Geo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = priste_lppm::LppmError::InvalidBudget { value: -1.0 }.into();
        assert!(e.to_string().contains("mechanism"));
        let e: CoreError = priste_event::EventError::EmptyRegion.into();
        assert!(e.to_string().contains("event"));
        assert!(CoreError::NoEvents.to_string().contains("event"));
    }
}
