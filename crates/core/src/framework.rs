use crate::source::MechanismSource;
use crate::{CoreError, PristeConfig, Result};
use priste_event::StEvent;
use priste_geo::{CellId, GridMap};
use priste_lppm::{Lppm, UniformMechanism};
use priste_markov::TransitionProvider;
use priste_qp::{TheoremChecker, TheoremVerdict};
use priste_quantify::TheoremBuilder;
use rand::RngCore;
use std::sync::Arc;

/// Outcome of one released timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct ReleaseRecord {
    /// Timestamp (1-based).
    pub t: usize,
    /// The released (perturbed) location.
    pub observed: CellId,
    /// The mechanism budget that finally certified (`0` = uniform
    /// fallback) — the paper's per-timestamp utility metric (Figs. 7–10).
    pub final_budget: f64,
    /// Candidate locations drawn before one certified (Algorithm 2 may
    /// re-run line 2 several times per timestamp).
    pub attempts: u32,
    /// Checks that ended `Unknown` (QP budget exhausted) — the paper's
    /// "# of Conservative Release" column in Table III.
    pub conservative_hits: u32,
    /// Euclidean distance to the true location in km (the second utility
    /// metric of §V.A).
    pub euclid_km: f64,
}

/// The PriSTE engine: one [`TheoremBuilder`] per protected event, a QP
/// checker, and the budget-decay release loop of Algorithms 2/3.
///
/// Owns its per-event builders (which own their events), so a `Priste`
/// value has no borrowed event slice and can be returned from builder APIs
/// such as `priste::Pipeline::audit`.
pub struct Priste<P, S> {
    builders: Vec<TheoremBuilder<P>>,
    checker: TheoremChecker,
    source: S,
    config: PristeConfig,
    grid: GridMap,
    t: usize,
}

impl<P, S> std::fmt::Debug for Priste<P, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Priste")
            .field("events", &self.builders.len())
            .field("epsilon", &self.config.epsilon)
            .field("released", &self.t)
            .finish_non_exhaustive()
    }
}

impl<P, S> Priste<P, S>
where
    P: TransitionProvider + Clone,
    S: MechanismSource,
{
    /// Assembles the framework for a set of user-specified events.
    ///
    /// # Errors
    /// [`CoreError::NoEvents`] for an empty event list; domain mismatches
    /// and configuration errors from the layers below.
    pub fn new(
        events: &[StEvent],
        provider: P,
        source: S,
        grid: GridMap,
        config: PristeConfig,
    ) -> Result<Self> {
        config.validate()?;
        if events.is_empty() {
            return Err(CoreError::NoEvents);
        }
        let mut builders = Vec::with_capacity(events.len());
        for ev in events {
            builders.push(TheoremBuilder::new(ev, provider.clone())?);
        }
        let checker = TheoremChecker::new(config.epsilon, config.solver_config());
        Ok(Priste {
            builders,
            checker,
            source,
            config,
            grid,
            t: 0,
        })
    }

    /// Timestamps released so far.
    pub fn released(&self) -> usize {
        self.t
    }

    /// The mechanism source (e.g. to read Algorithm 3's posterior).
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Releases one timestamp: draws candidates from the mechanism, halving
    /// its budget until every event's Theorem IV.1 check certifies, then
    /// commits the released emission column to all event builders.
    ///
    /// # Errors
    /// Layer errors; [`CoreError::LocationOutOfRange`] for a bad input.
    pub fn release(&mut self, true_loc: CellId, rng: &mut dyn RngCore) -> Result<ReleaseRecord> {
        let m = self.grid.num_cells();
        if true_loc.index() >= m {
            return Err(CoreError::LocationOutOfRange {
                cell: true_loc.index(),
                num_cells: m,
            });
        }
        let t = self.t + 1;
        let base = self.source.base_mechanism(t)?;
        let mut budget = self.source.base_budget();
        let mut mechanism = Arc::clone(&base);
        let mut attempts = 0u32;
        let mut conservative_hits = 0u32;

        loop {
            attempts += 1;
            // Algorithm 2 line 2: draw a candidate perturbed location.
            let candidate = mechanism.perturb(true_loc, rng);
            let column = mechanism.emission_column(candidate);

            // Lines 3–16: check ε-ST-event privacy for every event.
            let mut all_ok = true;
            for builder in &self.builders {
                let inputs = builder.candidate(&column)?;
                match self.checker.check(&inputs.a, &inputs.b, &inputs.c) {
                    TheoremVerdict::Satisfied => {}
                    TheoremVerdict::Unknown { .. } => {
                        conservative_hits += 1;
                        all_ok = false;
                        break;
                    }
                    TheoremVerdict::Violated { .. } => {
                        all_ok = false;
                        break;
                    }
                }
            }

            if all_ok {
                // Lines 17 & 21–25: release and commit the real column.
                for builder in &mut self.builders {
                    builder.commit(column.clone())?;
                }
                self.source.on_release(t, candidate, &column)?;
                self.t = t;
                return Ok(ReleaseRecord {
                    t,
                    observed: candidate,
                    final_budget: budget,
                    attempts,
                    conservative_hits,
                    euclid_km: self.grid.distance_km(true_loc, candidate)?,
                });
            }

            // Line 19: decay the budget and retry.
            let next_budget = budget * self.config.decay;
            if next_budget < self.config.budget_floor || attempts >= self.config.max_attempts {
                // The paper's α→0 limit: the uniform mechanism carries no
                // information about the true location, so both Theorem IV.1
                // inequalities hold for every π (§IV.C). Release through it
                // with budget reported as 0.
                let uniform = UniformMechanism::new(m);
                let candidate = uniform.perturb(true_loc, rng);
                let column = uniform.emission_column(candidate);
                for builder in &mut self.builders {
                    builder.commit(column.clone())?;
                }
                self.source.on_release(t, candidate, &column)?;
                self.t = t;
                return Ok(ReleaseRecord {
                    t,
                    observed: candidate,
                    final_budget: 0.0,
                    attempts,
                    conservative_hits,
                    euclid_km: self.grid.distance_km(true_loc, candidate)?,
                });
            }
            budget = next_budget;
            mechanism = Arc::new(mechanism.with_budget(budget)?);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::PlmSource;
    use priste_event::Presence;
    use priste_geo::Region;
    use priste_linalg::Vector;
    use priste_markov::{gaussian_kernel_chain, Homogeneous};
    use priste_quantify::fixed_pi::FixedPiQuantifier;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_world() -> (GridMap, Homogeneous) {
        let grid = GridMap::new(3, 3, 1.0).unwrap();
        let chain = gaussian_kernel_chain(&grid, 1.0).unwrap();
        (grid, Homogeneous::new(chain))
    }

    fn presence_event(grid: &GridMap) -> StEvent {
        Presence::new(
            Region::from_one_based_range(grid.num_cells(), 1, 3).unwrap(),
            2,
            3,
        )
        .unwrap()
        .into()
    }

    #[test]
    fn releases_certify_and_fill_records() {
        let (grid, chain) = small_world();
        let events = vec![presence_event(&grid)];
        let source = PlmSource::new(grid.clone(), 0.5).unwrap();
        let mut priste = Priste::new(
            &events,
            chain.clone(),
            source,
            grid.clone(),
            PristeConfig::with_epsilon(1.0),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let traj = chain
            .model()
            .sample_trajectory(CellId(4), 6, &mut rng)
            .unwrap();
        for (i, &loc) in traj.iter().enumerate() {
            let rec = priste.release(loc, &mut rng).unwrap();
            assert_eq!(rec.t, i + 1);
            assert!(rec.final_budget <= 0.5);
            assert!(rec.attempts >= 1);
            assert!(rec.euclid_km >= 0.0);
            assert!(rec.observed.index() < 9);
        }
        assert_eq!(priste.released(), 6);
    }

    #[test]
    fn released_sequence_actually_satisfies_epsilon_for_fixed_pi() {
        // End-to-end soundness: re-quantify the released emission columns
        // with the fixed-π tracker; the realized loss must respect ε at
        // every timestamp (fixed π is a special case of "any π").
        let (grid, chain) = small_world();
        let events = vec![presence_event(&grid)];
        let epsilon = 0.8;
        let source = PlmSource::new(grid.clone(), 0.5).unwrap();
        let mut priste = Priste::new(
            &events,
            chain.clone(),
            source,
            grid.clone(),
            PristeConfig::with_epsilon(epsilon),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let pi = Vector::uniform(9);
        let mut quantifier = FixedPiQuantifier::new(&events[0], chain.clone(), pi).unwrap();

        let traj = chain
            .model()
            .sample_trajectory(CellId(0), 8, &mut rng)
            .unwrap();
        let mut source_for_columns = PlmSource::new(grid.clone(), 0.5).unwrap();
        for &loc in &traj {
            let rec = priste.release(loc, &mut rng).unwrap();
            // Reconstruct the emission column the framework released under.
            let mech: Arc<Box<dyn priste_lppm::Lppm>> = if rec.final_budget == 0.0 {
                Arc::new(Box::new(UniformMechanism::new(9)))
            } else {
                source_for_columns.at_budget(rec.final_budget).unwrap()
            };
            let col = mech.emission_column(rec.observed);
            let step = quantifier.observe(&col).unwrap();
            assert!(
                step.privacy_loss <= epsilon + 1e-6,
                "t={}: realized loss {} exceeds ε={epsilon}",
                step.t,
                step.privacy_loss
            );
        }
    }

    #[test]
    fn stricter_epsilon_forces_smaller_budgets() {
        let (grid, chain) = small_world();
        let events = vec![presence_event(&grid)];
        let mut avg = Vec::new();
        for epsilon in [0.05, 2.0] {
            let source = PlmSource::new(grid.clone(), 1.0).unwrap();
            let mut priste = Priste::new(
                &events,
                chain.clone(),
                source,
                grid.clone(),
                PristeConfig::with_epsilon(epsilon),
            )
            .unwrap();
            let mut rng = StdRng::seed_from_u64(3);
            let traj = chain
                .model()
                .sample_trajectory(CellId(4), 5, &mut rng)
                .unwrap();
            let mut total = 0.0;
            for &loc in &traj {
                total += priste.release(loc, &mut rng).unwrap().final_budget;
            }
            avg.push(total / 5.0);
        }
        assert!(
            avg[0] <= avg[1] + 1e-12,
            "ε=0.05 budget {} should not exceed ε=2 budget {}",
            avg[0],
            avg[1]
        );
    }

    #[test]
    fn multiple_events_are_all_protected() {
        let (grid, chain) = small_world();
        let ev1 = presence_event(&grid);
        let ev2: StEvent = Presence::new(Region::from_one_based_range(9, 4, 6).unwrap(), 4, 5)
            .unwrap()
            .into();
        let events = vec![ev1, ev2];
        let source = PlmSource::new(grid.clone(), 0.5).unwrap();
        let mut priste = Priste::new(
            &events,
            chain.clone(),
            source,
            grid.clone(),
            PristeConfig::with_epsilon(0.5),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let traj = chain
            .model()
            .sample_trajectory(CellId(4), 6, &mut rng)
            .unwrap();
        for &loc in &traj {
            priste.release(loc, &mut rng).unwrap();
        }
        assert_eq!(priste.released(), 6);
    }

    #[test]
    fn empty_event_list_is_rejected() {
        let (grid, chain) = small_world();
        let source = PlmSource::new(grid.clone(), 0.5).unwrap();
        let r = Priste::new(&[], chain, source, grid, PristeConfig::default());
        assert!(matches!(r, Err(CoreError::NoEvents)));
    }

    #[test]
    fn out_of_range_location_is_rejected() {
        let (grid, chain) = small_world();
        let events = vec![presence_event(&grid)];
        let source = PlmSource::new(grid.clone(), 0.5).unwrap();
        let mut priste =
            Priste::new(&events, chain, source, grid, PristeConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            priste.release(CellId(9), &mut rng),
            Err(CoreError::LocationOutOfRange { .. })
        ));
    }

    #[test]
    fn uniform_fallback_engages_under_impossible_epsilon() {
        // ε so small that even heavy decay rarely certifies within the
        // attempt cap: the fallback must keep the stream flowing with
        // budget 0 rather than erroring.
        let (grid, chain) = small_world();
        let events = vec![presence_event(&grid)];
        let source = PlmSource::new(grid.clone(), 1.0).unwrap();
        let mut config = PristeConfig::with_epsilon(1e-4);
        config.max_attempts = 3;
        let mut priste = Priste::new(&events, chain.clone(), source, grid, config).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let traj = chain
            .model()
            .sample_trajectory(CellId(0), 4, &mut rng)
            .unwrap();
        let mut saw_fallback = false;
        for &loc in &traj {
            let rec = priste.release(loc, &mut rng).unwrap();
            if rec.final_budget == 0.0 {
                saw_fallback = true;
            }
        }
        assert!(
            saw_fallback,
            "expected at least one uniform fallback at ε=1e-4"
        );
    }
}
