//! Multi-run experiment driver and utility aggregation.
//!
//! The paper's utility plots aggregate 100 runs of Algorithm 2/3 over noisy
//! trajectories (§V.A: "We run our algorithm 100 times and aggregate the
//! results to calculate average privacy budget and Euclidean distance").
//! This module owns that loop: trajectory sampling, per-run release
//! sequences, and the two aggregate views the figures use — per-timestamp
//! means (Figs. 7–10) and whole-horizon means (Figs. 11–13).

use crate::source::MechanismSource;
use crate::{Priste, PristeConfig, ReleaseRecord, Result};
use priste_event::StEvent;
use priste_geo::{CellId, GridMap};
use priste_markov::{Homogeneous, MarkovModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One run's release sequence.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The true trajectory driving the run.
    pub trajectory: Vec<CellId>,
    /// Per-timestamp release records.
    pub records: Vec<ReleaseRecord>,
}

impl RunResult {
    /// Mean released budget over the horizon.
    pub fn mean_budget(&self) -> f64 {
        mean(self.records.iter().map(|r| r.final_budget))
    }

    /// Mean Euclidean distance (km) over the horizon.
    pub fn mean_euclid_km(&self) -> f64 {
        mean(self.records.iter().map(|r| r.euclid_km))
    }

    /// Total conservative-release hits over the horizon (Table III).
    pub fn conservative_hits(&self) -> u32 {
        self.records.iter().map(|r| r.conservative_hits).sum()
    }
}

/// Aggregate over many runs.
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Per-timestamp mean released budget (the y-axis of Figs. 7–10).
    pub budget_by_t: Vec<f64>,
    /// Per-timestamp standard deviation of the released budget.
    pub budget_std_by_t: Vec<f64>,
    /// Per-timestamp mean Euclidean distance (km).
    pub euclid_by_t: Vec<f64>,
    /// Mean over runs of the per-run mean budget (Figs. 11–13 left panels).
    pub mean_budget: f64,
    /// Mean over runs of the per-run mean distance (right panels).
    pub mean_euclid_km: f64,
    /// Mean conservative hits per run (Table III).
    pub mean_conservative_hits: f64,
}

/// Factory invoked once per run to build a fresh mechanism source (sources
/// are stateful — Algorithm 3's posterior must restart per run).
pub type SourceFactory<S> = dyn Fn() -> Result<S>;

/// Runs the framework over `runs` sampled trajectories of length `horizon`
/// and aggregates utility. Run `k` is seeded with `base_seed + k`, so whole
/// experiments are reproducible.
///
/// # Errors
/// Propagates construction and release errors from any run.
#[allow(clippy::too_many_arguments)]
pub fn run_many<S: MechanismSource>(
    events: &[StEvent],
    chain: &MarkovModel,
    grid: &GridMap,
    config: &PristeConfig,
    source_factory: &SourceFactory<S>,
    horizon: usize,
    runs: usize,
    base_seed: u64,
) -> Result<Aggregate> {
    let mut all: Vec<RunResult> = Vec::with_capacity(runs);
    for k in 0..runs {
        let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(k as u64));
        let start = sample_start(chain, &mut rng)?;
        let trajectory = chain.sample_trajectory(start, horizon, &mut rng)?;
        let result = run_one(
            events,
            chain,
            grid,
            config,
            source_factory()?,
            &trajectory,
            &mut rng,
        )?;
        all.push(result);
    }
    Ok(aggregate(&all, horizon))
}

/// Parallel variant of [`run_many`]: distributes runs over `threads` OS
/// threads (run `k` keeps seed `base_seed + k`, so results are identical to
/// the sequential version for any thread count — aggregation is
/// order-insensitive).
///
/// # Errors
/// Propagates the first failing run's error.
///
/// # Panics
/// Panics if a worker thread panics (programming error in a lower layer).
#[allow(clippy::too_many_arguments)]
pub fn run_many_parallel<S: MechanismSource>(
    events: &[StEvent],
    chain: &MarkovModel,
    grid: &GridMap,
    config: &PristeConfig,
    source_factory: &(dyn Fn() -> Result<S> + Sync),
    horizon: usize,
    runs: usize,
    base_seed: u64,
    threads: usize,
) -> Result<Aggregate> {
    let threads = threads.max(1).min(runs.max(1));
    let worker_results: Vec<Result<Vec<RunResult>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || -> Result<Vec<RunResult>> {
                    let mut out = Vec::new();
                    let mut k = w;
                    while k < runs {
                        let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(k as u64));
                        let start = sample_start(chain, &mut rng)?;
                        let trajectory = chain.sample_trajectory(start, horizon, &mut rng)?;
                        out.push(run_one(
                            events,
                            chain,
                            grid,
                            config,
                            source_factory()?,
                            &trajectory,
                            &mut rng,
                        )?);
                        k += threads;
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("runner worker panicked"))
            .collect()
    });
    let mut all = Vec::with_capacity(runs);
    for r in worker_results {
        all.extend(r?);
    }
    Ok(aggregate(&all, horizon))
}

/// Runs one trajectory through the framework.
///
/// # Errors
/// Propagates construction and release errors.
pub fn run_one<S: MechanismSource>(
    events: &[StEvent],
    chain: &MarkovModel,
    grid: &GridMap,
    config: &PristeConfig,
    source: S,
    trajectory: &[CellId],
    rng: &mut StdRng,
) -> Result<RunResult> {
    let provider = Homogeneous::new(chain.clone());
    let mut priste = Priste::new(events, provider, source, grid.clone(), config.clone())?;
    let mut records = Vec::with_capacity(trajectory.len());
    for &loc in trajectory {
        records.push(priste.release(loc, rng)?);
    }
    Ok(RunResult {
        trajectory: trajectory.to_vec(),
        records,
    })
}

/// Aggregates run results into the figure-ready series.
pub fn aggregate(results: &[RunResult], horizon: usize) -> Aggregate {
    let runs = results.len();
    let mut budget_by_t = vec![0.0; horizon];
    let mut budget_sq_by_t = vec![0.0; horizon];
    let mut euclid_by_t = vec![0.0; horizon];
    for r in results {
        for rec in &r.records {
            let i = rec.t - 1;
            budget_by_t[i] += rec.final_budget;
            budget_sq_by_t[i] += rec.final_budget * rec.final_budget;
            euclid_by_t[i] += rec.euclid_km;
        }
    }
    let n = runs.max(1) as f64;
    for i in 0..horizon {
        budget_by_t[i] /= n;
        euclid_by_t[i] /= n;
        budget_sq_by_t[i] = (budget_sq_by_t[i] / n - budget_by_t[i] * budget_by_t[i])
            .max(0.0)
            .sqrt();
    }
    Aggregate {
        runs,
        mean_budget: mean(results.iter().map(RunResult::mean_budget)),
        mean_euclid_km: mean(results.iter().map(RunResult::mean_euclid_km)),
        mean_conservative_hits: mean(results.iter().map(|r| r.conservative_hits() as f64)),
        budget_by_t,
        budget_std_by_t: budget_sq_by_t,
        euclid_by_t,
    }
}

/// Samples a starting state from the chain's uniform initial distribution
/// (the experiments' `π`, §IV.D).
fn sample_start(chain: &MarkovModel, rng: &mut StdRng) -> Result<CellId> {
    let pi = priste_linalg::Vector::uniform(chain.num_states());
    let traj = chain.sample_trajectory_from(&pi, 1, rng)?;
    Ok(traj[0])
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in values {
        sum += v;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::PlmSource;
    use priste_event::Presence;
    use priste_geo::Region;
    use priste_markov::gaussian_kernel_chain;

    fn world() -> (GridMap, MarkovModel, Vec<StEvent>) {
        let grid = GridMap::new(3, 3, 1.0).unwrap();
        let chain = gaussian_kernel_chain(&grid, 1.0).unwrap();
        let ev: StEvent = Presence::new(Region::from_one_based_range(9, 1, 3).unwrap(), 2, 3)
            .unwrap()
            .into();
        (grid, chain, vec![ev])
    }

    #[test]
    fn run_many_aggregates_reproducibly() {
        let (grid, chain, events) = world();
        let config = PristeConfig::with_epsilon(1.0);
        let factory = {
            let grid = grid.clone();
            move || PlmSource::new(grid.clone(), 0.5)
        };
        let a1 = run_many(&events, &chain, &grid, &config, &factory, 4, 3, 42).unwrap();
        let a2 = run_many(&events, &chain, &grid, &config, &factory, 4, 3, 42).unwrap();
        assert_eq!(a1.budget_by_t, a2.budget_by_t, "same seed must reproduce");
        assert_eq!(a1.runs, 3);
        assert_eq!(a1.budget_by_t.len(), 4);
        assert!(a1.mean_budget > 0.0);
        assert!(a1.mean_euclid_km >= 0.0);
    }

    #[test]
    fn different_seeds_vary() {
        let (grid, chain, events) = world();
        let config = PristeConfig::with_epsilon(1.0);
        let factory = {
            let grid = grid.clone();
            move || PlmSource::new(grid.clone(), 0.5)
        };
        let a1 = run_many(&events, &chain, &grid, &config, &factory, 4, 2, 1).unwrap();
        let a2 = run_many(&events, &chain, &grid, &config, &factory, 4, 2, 2).unwrap();
        assert_ne!(a1.euclid_by_t, a2.euclid_by_t);
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let (grid, chain, events) = world();
        let config = PristeConfig::with_epsilon(1.0);
        let factory = {
            let grid = grid.clone();
            move || PlmSource::new(grid.clone(), 0.5)
        };
        let seq = run_many(&events, &chain, &grid, &config, &factory, 4, 6, 11).unwrap();
        for threads in [1, 2, 4, 8] {
            let par =
                run_many_parallel(&events, &chain, &grid, &config, &factory, 4, 6, 11, threads)
                    .unwrap();
            assert_eq!(seq.budget_by_t, par.budget_by_t, "threads={threads}");
            assert_eq!(seq.euclid_by_t, par.euclid_by_t, "threads={threads}");
        }
    }

    #[test]
    fn aggregate_of_empty_is_zeroed() {
        let a = aggregate(&[], 3);
        assert_eq!(a.runs, 0);
        assert_eq!(a.budget_by_t, vec![0.0; 3]);
        assert_eq!(a.mean_budget, 0.0);
    }

    #[test]
    fn budget_std_is_zero_when_budgets_identical() {
        let (grid, chain, events) = world();
        // Huge ε: the base budget always certifies, so std per t is 0.
        let config = PristeConfig::with_epsilon(50.0);
        let factory = {
            let grid = grid.clone();
            move || PlmSource::new(grid.clone(), 0.2)
        };
        let a = run_many(&events, &chain, &grid, &config, &factory, 3, 3, 7).unwrap();
        for (t, std) in a.budget_std_by_t.iter().enumerate() {
            assert!(std.abs() < 1e-9, "t={t}: std {std}");
        }
        for b in &a.budget_by_t {
            assert!((b - 0.2).abs() < 1e-12);
        }
    }
}
