//! Shared test scaffolding for the workspace's suites (feature
//! `test-support`, off by default).
//!
//! Before this module existed, every suite that needed "a small Gaussian
//! world, a planar-Laplace mechanism, a presence event" carried its own
//! copy of the same three helpers — `calibrate`'s planner and guard tests,
//! its property suites, the root integration tests, and the calibration
//! bench had drifted into near-identical `world()`/`plm()`/`presence()`
//! functions. This module is the single copy. It is deliberately tiny and
//! deterministic: no RNG-driven strategies live here (property suites keep
//! their own generators), only the fixed scaffolding everyone repeats.
//!
//! Enable it from a `[dev-dependencies]` entry:
//!
//! ```toml
//! priste_core = { workspace = true, features = ["test-support"] }
//! ```

use priste_geo::{GridMap, Region};
use priste_lppm::{Lppm, PlanarLaplace};
use priste_markov::{gaussian_kernel_chain, Homogeneous, MarkovModel};

/// A `side × side` grid of 1 km cells with a Gaussian-kernel mobility
/// chain of bandwidth `sigma` — the workspace's canonical synthetic world.
///
/// # Panics
/// Panics on invalid dimensions (test scaffolding: fail loudly).
pub fn gaussian_world(side: usize, sigma: f64) -> (GridMap, MarkovModel) {
    let grid = GridMap::new(side, side, 1.0).expect("test grid");
    let chain = gaussian_kernel_chain(&grid, sigma).expect("test chain");
    (grid, chain)
}

/// [`gaussian_world`] with the chain already wrapped as a time-homogeneous
/// [`TransitionProvider`](priste_markov::TransitionProvider).
///
/// # Panics
/// See [`gaussian_world`].
pub fn homogeneous_world(side: usize, sigma: f64) -> (GridMap, Homogeneous) {
    let (grid, chain) = gaussian_world(side, sigma);
    (grid, Homogeneous::new(chain))
}

/// The paper's running 3-state example chain as a provider.
pub fn paper_chain() -> Homogeneous {
    Homogeneous::new(MarkovModel::paper_example())
}

/// A boxed `alpha`-planar-Laplace mechanism over `grid` — the prototype
/// every guard/planner test wraps.
///
/// # Panics
/// Panics on an invalid budget (test scaffolding: fail loudly).
pub fn plm(grid: &GridMap, alpha: f64) -> Box<dyn Lppm> {
    Box::new(PlanarLaplace::new(grid.clone(), alpha).expect("test mechanism"))
}

/// A `PRESENCE` event over the first `hi` cells (one-based range `1..=hi`)
/// of an `m`-cell world, protected during timestamps `start..=end`.
///
/// # Panics
/// Panics on an empty region or inverted window (test scaffolding).
pub fn presence(m: usize, hi: usize, start: usize, end: usize) -> priste_event::StEvent {
    priste_event::Presence::new(
        Region::from_one_based_range(m, 1, hi.max(1)).expect("test region"),
        start,
        end,
    )
    .expect("test event")
    .into()
}
