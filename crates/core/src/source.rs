//! Mechanism sources: how the framework obtains the LPPM in force at each
//! timestamp.
//!
//! Algorithm 2's mechanism (α-PLM) is time-invariant; Algorithm 3's is
//! rebuilt every step from the adversary's posterior (δ-location set). The
//! [`MechanismSource`] trait captures exactly that difference so one
//! framework loop serves both case studies.

use crate::Result;
use priste_geo::{CellId, GridMap};
use priste_linalg::Vector;
use priste_lppm::{DeltaLocationSet, Lppm, PlanarLaplace, PosteriorTracker};
use priste_markov::MarkovModel;
use std::collections::HashMap;
use std::sync::Arc;

/// Supplier of the base mechanism at each timestamp, with a hook for
/// observing what was actually released (Algorithm 3's posterior update).
pub trait MechanismSource {
    /// The base (full-budget) mechanism for timestamp `t`. Budget decay is
    /// applied by the framework through [`Lppm::with_budget`].
    ///
    /// # Errors
    /// Mechanism construction failures.
    fn base_mechanism(&mut self, t: usize) -> Result<Arc<Box<dyn Lppm>>>;

    /// Notification of the released observation and the emission column it
    /// was released under.
    ///
    /// # Errors
    /// Posterior-update failures (impossible observations).
    fn on_release(&mut self, t: usize, observed: CellId, emission_column: &Vector) -> Result<()>;

    /// The base privacy budget (for reporting).
    fn base_budget(&self) -> f64;
}

/// Boxed sources delegate, so heterogeneous pipelines (`PlmSource` vs
/// [`DeltaLocSource`]) can share one `Priste<_, Box<dyn MechanismSource>>`
/// type.
impl<T: MechanismSource + ?Sized> MechanismSource for Box<T> {
    fn base_mechanism(&mut self, t: usize) -> Result<Arc<Box<dyn Lppm>>> {
        (**self).base_mechanism(t)
    }

    fn on_release(&mut self, t: usize, observed: CellId, emission_column: &Vector) -> Result<()> {
        (**self).on_release(t, observed, emission_column)
    }

    fn base_budget(&self) -> f64 {
        (**self).base_budget()
    }
}

/// Algorithm 2's source: a fixed α-Planar-Laplace mechanism with a cache of
/// decayed variants (the α, α/2, α/4, … ladder repeats across timestamps
/// and runs, and each rebuild costs an `O(m²)` discretization).
pub struct PlmSource {
    base: Arc<Box<dyn Lppm>>,
    alpha: f64,
    cache: HashMap<u64, Arc<Box<dyn Lppm>>>,
}

impl PlmSource {
    /// Builds the α-PLM source over a grid.
    ///
    /// # Errors
    /// PLM construction failures (bad α).
    pub fn new(grid: GridMap, alpha: f64) -> Result<Self> {
        let plm = PlanarLaplace::new(grid, alpha)?;
        Ok(Self::from_mechanism(Box::new(plm)))
    }

    /// Wraps an arbitrary prototype mechanism as an Algorithm 2-style
    /// source; the prototype's construction-time budget is the base of the
    /// decay ladder.
    pub fn from_mechanism(lppm: Box<dyn Lppm>) -> Self {
        let alpha = lppm.budget();
        PlmSource {
            base: Arc::new(lppm),
            alpha,
            cache: HashMap::new(),
        }
    }

    /// Returns the (cached) variant of the base mechanism at `budget`.
    ///
    /// # Errors
    /// Mechanism rebuild failures.
    pub fn at_budget(&mut self, budget: f64) -> Result<Arc<Box<dyn Lppm>>> {
        if budget == self.alpha {
            return Ok(Arc::clone(&self.base));
        }
        if let Some(hit) = self.cache.get(&budget.to_bits()) {
            return Ok(Arc::clone(hit));
        }
        let built = Arc::new(self.base.with_budget(budget)?);
        self.cache.insert(budget.to_bits(), Arc::clone(&built));
        Ok(built)
    }
}

impl MechanismSource for PlmSource {
    fn base_mechanism(&mut self, _t: usize) -> Result<Arc<Box<dyn Lppm>>> {
        Ok(Arc::clone(&self.base))
    }

    fn on_release(
        &mut self,
        _t: usize,
        _observed: CellId,
        _emission_column: &Vector,
    ) -> Result<()> {
        Ok(())
    }

    fn base_budget(&self) -> f64 {
        self.alpha
    }
}

/// Algorithm 3's source: δ-location-set mechanisms rebuilt per step from
/// the adversarial posterior (`p_t⁻ = p_{t−1}⁺·M`, Eq. (21) update after
/// release).
pub struct DeltaLocSource {
    dls: DeltaLocationSet,
    chain: MarkovModel,
    tracker: PosteriorTracker,
    alpha: f64,
    /// The prior `p_t⁻` used to build the step's mechanism, retained for the
    /// posterior update after the release.
    pending_prior: Option<Vector>,
}

impl DeltaLocSource {
    /// Builds the δ-location-set source. `initial` is the adversary's `π`
    /// (the paper's experiments use the uniform distribution, §IV.D).
    ///
    /// # Errors
    /// δ validation and posterior-tracker construction failures;
    /// [`CoreError::InvalidConfig`](crate::CoreError::InvalidConfig) for a
    /// sparse-backed chain (the Markov construction step of Algorithm 3
    /// reads the dense transition matrix).
    pub fn new(
        grid: GridMap,
        delta: f64,
        alpha: f64,
        chain: MarkovModel,
        initial: Vector,
    ) -> Result<Self> {
        if chain.is_sparse() {
            return Err(crate::CoreError::InvalidConfig {
                message: "delta-location sources need a dense-backed mobility chain".into(),
            });
        }
        let dls = DeltaLocationSet::new(grid, delta)?;
        let tracker = PosteriorTracker::new(initial)?;
        Ok(DeltaLocSource {
            dls,
            chain,
            tracker,
            alpha,
            pending_prior: None,
        })
    }

    /// Current adversarial posterior `p_t⁺`.
    pub fn posterior(&self) -> &Vector {
        self.tracker.posterior()
    }
}

impl MechanismSource for DeltaLocSource {
    fn base_mechanism(&mut self, _t: usize) -> Result<Arc<Box<dyn Lppm>>> {
        // Line 2 of Algorithm 3: Markov construction step.
        let prior = self.tracker.advance(self.chain.transition())?;
        let mech = self.dls.mechanism_for(&prior, self.alpha)?;
        self.pending_prior = Some(prior);
        Ok(Arc::new(Box::new(mech) as Box<dyn Lppm>))
    }

    fn on_release(&mut self, _t: usize, _observed: CellId, emission_column: &Vector) -> Result<()> {
        let prior = self
            .pending_prior
            .take()
            .expect("on_release follows base_mechanism within one timestep");
        self.tracker.update(&prior, emission_column)?;
        Ok(())
    }

    fn base_budget(&self) -> f64 {
        self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridMap {
        GridMap::new(2, 2, 1.0).unwrap()
    }

    #[test]
    fn plm_source_caches_decayed_budgets() {
        let mut src = PlmSource::new(grid(), 0.8).unwrap();
        assert_eq!(src.base_budget(), 0.8);
        let a = src.at_budget(0.4).unwrap();
        let b = src.at_budget(0.4).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "cache must return the same mechanism");
        assert_eq!(a.budget(), 0.4);
        // The base budget bypasses the cache.
        let base = src.at_budget(0.8).unwrap();
        assert_eq!(base.budget(), 0.8);
    }

    #[test]
    fn delta_source_shrinks_domain_and_updates_posterior() {
        let chain = MarkovModel::new(
            priste_linalg::Matrix::from_rows(&[
                vec![0.7, 0.1, 0.1, 0.1],
                vec![0.1, 0.7, 0.1, 0.1],
                vec![0.1, 0.1, 0.7, 0.1],
                vec![0.1, 0.1, 0.1, 0.7],
            ])
            .unwrap(),
        )
        .unwrap();
        let mut src = DeltaLocSource::new(
            grid(),
            0.3,
            1.0,
            chain,
            Vector::from(vec![0.85, 0.05, 0.05, 0.05]),
        )
        .unwrap();
        let mech = src.base_mechanism(1).unwrap();
        // The concentrated posterior should restrict the output domain.
        let e = mech.emission_matrix();
        let nonzero_cols: usize = (0..4)
            .filter(|&c| (0..4).any(|r| e.get(r, c) > 0.0))
            .count();
        assert!(nonzero_cols < 4, "domain was not restricted");
        // Posterior update flows through on_release.
        let col = mech.emission_column(CellId(0));
        let before = src.posterior().clone();
        src.on_release(1, CellId(0), &col).unwrap();
        assert_ne!(before.as_slice(), src.posterior().as_slice());
        src.posterior().validate_distribution().unwrap();
    }
}
