//! The PriSTE framework (paper §IV.B–D): converting a location-privacy
//! mechanism into one that additionally guarantees ε-spatiotemporal event
//! privacy.
//!
//! The framework couples three pieces at every timestamp (Fig. 6 /
//! Algorithm 1):
//!
//! 1. an **LPPM** generates a candidate perturbed location;
//! 2. the **Quantification** component ([`priste_quantify::TheoremBuilder`])
//!    turns the candidate's emission column into the Theorem IV.1
//!    coefficient vectors;
//! 3. the **QP checker** ([`priste_qp::TheoremChecker`]) certifies (or
//!    refutes) ε-spatiotemporal event privacy for *every* adversarial
//!    initial probability; on failure the LPPM's budget is halved and a new
//!    candidate drawn (Algorithm 2 line 19 — the exponential decay whose
//!    termination the α→0 limit guarantees).
//!
//! Concrete instantiations:
//!
//! * [`PlmSource`] — Algorithm 2: PriSTE with Geo-indistinguishability
//!   (α-Planar-Laplace), with a per-budget mechanism cache.
//! * [`DeltaLocSource`] — Algorithm 3: PriSTE with δ-location-set privacy,
//!   whose mechanism is rebuilt each step from the adversarial posterior
//!   (Eq. (21) update).
//! * [`Priste`] — the engine: multi-event protection (all user events
//!   checked simultaneously, §V.B "Protecting multiple events"),
//!   conservative release accounting (§IV.C, Table III), and per-release
//!   utility records.
//! * [`runner`] — multi-run experiment driver producing the per-timestamp
//!   and aggregate utility series the paper plots (mean PLM budget,
//!   Euclidean distance in km).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod error;
mod framework;
pub mod runner;
mod source;
#[cfg(feature = "test-support")]
pub mod test_support;

pub use config::PristeConfig;
pub use error::CoreError;
pub use framework::{Priste, ReleaseRecord};
pub use source::{DeltaLocSource, MechanismSource, PlmSource};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
