use crate::{CoreError, Result};
use priste_qp::{ConstraintSet, SolverConfig};

/// Configuration of the PriSTE framework.
#[derive(Debug, Clone)]
pub struct PristeConfig {
    /// The ε of ε-spatiotemporal event privacy (Definition II.4).
    pub epsilon: f64,
    /// QP work budget per constraint check — the deterministic analogue of
    /// the paper's CPLEX wall-clock threshold (Table III sweeps this).
    pub qp_work_budget: u64,
    /// Feasible set for adversarial initial probabilities. The faithful
    /// reading of Theorem IV.1 is [`ConstraintSet::Simplex`] (see
    /// DESIGN.md); [`ConstraintSet::Box`] exists for the ablation study.
    pub constraint: ConstraintSet,
    /// Budget decay factor applied on each failed check (Algorithm 2
    /// line 19 uses ½; §IV.C discusses the efficiency/utility trade-off of
    /// other values).
    pub decay: f64,
    /// Budget floor: once the decayed budget falls below this, the
    /// framework releases through the *uniform* mechanism (the paper's
    /// α = 0 limit, which always satisfies Eqs. (15)/(16)).
    pub budget_floor: f64,
    /// Maximum calibration attempts per timestamp before forcing the
    /// uniform fallback — a safety net against pathological inputs.
    pub max_attempts: u32,
    /// Optional wall-clock deadline per QP check (Table III's threshold).
    pub qp_deadline: Option<std::time::Duration>,
}

impl Default for PristeConfig {
    fn default() -> Self {
        PristeConfig {
            epsilon: 1.0,
            qp_work_budget: 200_000,
            constraint: ConstraintSet::Simplex,
            decay: 0.5,
            budget_floor: 1e-4,
            max_attempts: 40,
            qp_deadline: None,
        }
    }
}

impl PristeConfig {
    /// A default configuration at the given ε.
    pub fn with_epsilon(epsilon: f64) -> Self {
        PristeConfig {
            epsilon,
            ..Default::default()
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    /// [`CoreError::InvalidConfig`] describing the first offending field.
    pub fn validate(&self) -> Result<()> {
        if !(self.epsilon.is_finite() && self.epsilon > 0.0) {
            return Err(CoreError::InvalidConfig {
                message: format!("epsilon must be positive, got {}", self.epsilon),
            });
        }
        if !(self.decay.is_finite() && self.decay > 0.0 && self.decay < 1.0) {
            return Err(CoreError::InvalidConfig {
                message: format!("decay must lie in (0,1), got {}", self.decay),
            });
        }
        if !(self.budget_floor.is_finite() && self.budget_floor >= 0.0) {
            return Err(CoreError::InvalidConfig {
                message: format!(
                    "budget floor must be non-negative, got {}",
                    self.budget_floor
                ),
            });
        }
        if self.max_attempts == 0 {
            return Err(CoreError::InvalidConfig {
                message: "max_attempts must be at least 1".into(),
            });
        }
        Ok(())
    }

    /// The solver configuration for one constraint check.
    pub fn solver_config(&self) -> SolverConfig {
        SolverConfig {
            work_budget: self.qp_work_budget,
            constraint: self.constraint,
            deadline: self.qp_deadline,
            ..SolverConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        PristeConfig::default().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_fields() {
        let c = PristeConfig {
            epsilon: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = PristeConfig {
            decay: 1.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = PristeConfig {
            budget_floor: f64::NAN,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = PristeConfig {
            max_attempts: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn solver_config_inherits_fields() {
        let c = PristeConfig {
            qp_work_budget: 123,
            ..Default::default()
        };
        assert_eq!(c.solver_config().work_budget, 123);
    }
}
