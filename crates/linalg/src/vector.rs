use crate::{LinalgError, Result, STOCHASTIC_TOL};

/// Owned dense row vector of `f64`.
///
/// `Vector` is the workhorse for probability distributions (`π`, forward
/// variables `α_t`, backward variables `β_t`) and for the Theorem IV.1
/// coefficient vectors `a`, `b`, `c`. Semantically all PriSTE vectors are
/// *row* vectors; matrix products distinguish `x·M` ([`crate::Matrix::vecmat`])
/// from `M·x` ([`crate::Matrix::matvec`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Creates a vector of `n` ones.
    pub fn ones(n: usize) -> Self {
        Vector { data: vec![1.0; n] }
    }

    /// Creates a vector filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Vector {
            data: vec![value; n],
        }
    }

    /// Creates the `i`-th standard basis vector of length `n`.
    ///
    /// # Panics
    /// Panics if `i >= n`.
    pub fn basis(n: usize, i: usize) -> Self {
        assert!(i < n, "basis index {i} out of range for length {n}");
        let mut v = Self::zeros(n);
        v.data[i] = 1.0;
        v
    }

    /// Creates the uniform probability distribution over `n` states.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "uniform distribution over zero states");
        Vector {
            data: vec![1.0 / n as f64; n],
        }
    }

    /// Length of the vector.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Dot product with another vector.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if lengths differ.
    pub fn dot(&self, other: &Vector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "dot",
                expected: self.len(),
                actual: other.len(),
            });
        }
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum())
    }

    /// Element-wise (Hadamard) product `self ∘ other`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if lengths differ.
    pub fn hadamard(&self, other: &Vector) -> Result<Vector> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "hadamard",
                expected: self.len(),
                actual: other.len(),
            });
        }
        Ok(Vector {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a * b)
                .collect(),
        })
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if lengths differ.
    pub fn add(&self, other: &Vector) -> Result<Vector> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "add",
                expected: self.len(),
                actual: other.len(),
            });
        }
        Ok(Vector {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        })
    }

    /// Element-wise difference `self − other`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if lengths differ.
    pub fn sub(&self, other: &Vector) -> Result<Vector> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "sub",
                expected: self.len(),
                actual: other.len(),
            });
        }
        Ok(Vector {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        })
    }

    /// Returns `self` scaled by `factor`.
    pub fn scale(&self, factor: f64) -> Vector {
        Vector {
            data: self.data.iter().map(|a| a * factor).collect(),
        }
    }

    /// Scales the vector in place.
    pub fn scale_mut(&mut self, factor: f64) {
        for a in &mut self.data {
            *a *= factor;
        }
    }

    /// Maximum entry; `None` for empty vectors (NaN entries are ignored).
    pub fn max(&self) -> Option<f64> {
        self.data.iter().copied().fold(None, |acc, x| match acc {
            None => Some(x),
            Some(m) => Some(if x > m { x } else { m }),
        })
    }

    /// Minimum entry; `None` for empty vectors (NaN entries are ignored).
    pub fn min(&self) -> Option<f64> {
        self.data.iter().copied().fold(None, |acc, x| match acc {
            None => Some(x),
            Some(m) => Some(if x < m { x } else { m }),
        })
    }

    /// Largest absolute entry (`0.0` for empty vectors).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
    }

    /// Index of the largest entry; `None` for empty vectors.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate().skip(1) {
            if x > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Euclidean (L2) norm.
    pub fn norm2(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// L1 norm (sum of absolute values).
    pub fn norm1(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// Normalizes the vector in place so entries sum to 1.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotDistribution`] if the current sum is zero,
    /// negative, or non-finite (no meaningful normalization exists).
    pub fn normalize_mut(&mut self) -> Result<()> {
        let s = self.sum();
        if !(s.is_finite() && s > 0.0) {
            return Err(LinalgError::NotDistribution { sum: s });
        }
        self.scale_mut(1.0 / s);
        Ok(())
    }

    /// Returns a normalized copy (entries summing to 1).
    ///
    /// # Errors
    /// See [`Vector::normalize_mut`].
    pub fn normalized(&self) -> Result<Vector> {
        let mut v = self.clone();
        v.normalize_mut()?;
        Ok(v)
    }

    /// Validates that the vector is a probability distribution: entries
    /// non-negative and summing to 1 within [`STOCHASTIC_TOL`] (scaled by
    /// length to absorb accumulation error in long vectors).
    ///
    /// # Errors
    /// [`LinalgError::NegativeEntry`] or [`LinalgError::NotDistribution`].
    pub fn validate_distribution(&self) -> Result<()> {
        for (i, &x) in self.data.iter().enumerate() {
            if x < -STOCHASTIC_TOL {
                return Err(LinalgError::NegativeEntry { index: i, value: x });
            }
        }
        let s = self.sum();
        let tol = STOCHASTIC_TOL * (self.len().max(1) as f64);
        if (s - 1.0).abs() > tol {
            return Err(LinalgError::NotDistribution { sum: s });
        }
        Ok(())
    }

    /// Concatenates two vectors: `[self, other]`.
    ///
    /// Used to lift an `m`-state distribution into the paper's two-world
    /// `2m` space (e.g. `[π, 0]`).
    pub fn concat(&self, other: &Vector) -> Vector {
        let mut data = Vec::with_capacity(self.len() + other.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Vector { data }
    }

    /// Splits the vector into two halves `(front, back)`.
    ///
    /// The inverse of [`Vector::concat`] for even-length vectors; the two
    /// halves are the false-world and true-world components of a lifted
    /// distribution.
    ///
    /// # Panics
    /// Panics if the length is odd.
    pub fn split_halves(&self) -> (Vector, Vector) {
        assert!(
            self.len().is_multiple_of(2),
            "split_halves on odd-length vector"
        );
        let h = self.len() / 2;
        (
            Vector {
                data: self.data[..h].to_vec(),
            },
            Vector {
                data: self.data[h..].to_vec(),
            },
        )
    }

    /// Maximum absolute component-wise difference to `other`.
    ///
    /// # Panics
    /// Panics if lengths differ (this is a test/diagnostic helper).
    pub fn max_abs_diff(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "max_abs_diff length mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl From<&[f64]> for Vector {
    fn from(data: &[f64]) -> Self {
        Vector {
            data: data.to_vec(),
        }
    }
}

impl std::ops::Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl std::ops::IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_have_expected_shapes() {
        assert_eq!(Vector::zeros(4).as_slice(), &[0.0; 4]);
        assert_eq!(Vector::ones(3).sum(), 3.0);
        assert_eq!(Vector::basis(5, 2).as_slice(), &[0.0, 0.0, 1.0, 0.0, 0.0]);
        let u = Vector::uniform(4);
        assert!(u.validate_distribution().is_ok());
    }

    #[test]
    #[should_panic(expected = "basis index")]
    fn basis_out_of_range_panics() {
        let _ = Vector::basis(3, 3);
    }

    #[test]
    fn dot_and_hadamard() {
        let a = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = Vector::from(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert!(matches!(
            a.dot(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            a.hadamard(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            a.add(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            a.sub(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn add_sub_scale() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![0.5, 0.5]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[1.5, 2.5]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[0.5, 1.5]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn normalize_rejects_zero_and_negative_sums() {
        let mut z = Vector::zeros(3);
        assert!(z.normalize_mut().is_err());
        let mut n = Vector::from(vec![-1.0, 0.5]);
        assert!(n.normalize_mut().is_err());
        let mut ok = Vector::from(vec![2.0, 2.0]);
        ok.normalize_mut().unwrap();
        assert_eq!(ok.as_slice(), &[0.5, 0.5]);
    }

    #[test]
    fn validate_distribution_catches_negatives_and_bad_sums() {
        let neg = Vector::from(vec![-0.1, 1.1]);
        assert!(matches!(
            neg.validate_distribution(),
            Err(LinalgError::NegativeEntry { .. })
        ));
        let bad = Vector::from(vec![0.4, 0.4]);
        assert!(matches!(
            bad.validate_distribution(),
            Err(LinalgError::NotDistribution { .. })
        ));
        let good = Vector::from(vec![0.25; 4]);
        assert!(good.validate_distribution().is_ok());
    }

    #[test]
    fn concat_and_split_are_inverses() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![3.0, 4.0]);
        let joined = a.concat(&b);
        assert_eq!(joined.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let (fa, fb) = joined.split_halves();
        assert_eq!(fa, a);
        assert_eq!(fb, b);
    }

    #[test]
    fn extrema_and_norms() {
        let v = Vector::from(vec![3.0, -4.0, 1.0]);
        assert_eq!(v.max(), Some(3.0));
        assert_eq!(v.min(), Some(-4.0));
        assert_eq!(v.max_abs(), 4.0);
        assert_eq!(v.argmax(), Some(0));
        assert_eq!(v.norm1(), 8.0);
        assert!((v.norm2() - 26.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(Vector::zeros(0).max(), None);
        assert_eq!(Vector::zeros(0).argmax(), None);
    }

    #[test]
    fn indexing_and_iteration() {
        let mut v = Vector::zeros(3);
        v[1] = 7.0;
        assert_eq!(v[1], 7.0);
        let w: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(w.as_slice(), &[0.0, 1.0, 2.0]);
    }
}
