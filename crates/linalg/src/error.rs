use std::fmt;

/// Errors produced by shape checks and numerical validations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Dimension expected by the left/receiving operand.
        expected: usize,
        /// Dimension actually provided.
        actual: usize,
    },
    /// A matrix expected to be row-stochastic failed validation.
    NotStochastic {
        /// Row whose sum deviated (or contained a negative entry).
        row: usize,
        /// The offending row sum.
        sum: f64,
    },
    /// A vector expected to be a probability distribution failed validation.
    NotDistribution {
        /// Sum of the vector entries.
        sum: f64,
    },
    /// An entry was negative where only non-negative values are meaningful.
    NegativeEntry {
        /// Flat index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Routine that failed.
        op: &'static str,
        /// Iterations consumed.
        iterations: usize,
    },
    /// The input matrix was expected to be symmetric.
    NotSymmetric {
        /// Maximum absolute asymmetry `|a_ij − a_ji|` observed.
        max_asymmetry: f64,
    },
    /// An operation required a non-empty operand.
    Empty {
        /// Operation that received the empty operand.
        op: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                op,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "{op}: dimension mismatch (expected {expected}, got {actual})"
                )
            }
            LinalgError::NotStochastic { row, sum } => {
                write!(f, "matrix is not row-stochastic: row {row} sums to {sum}")
            }
            LinalgError::NotDistribution { sum } => {
                write!(f, "vector is not a probability distribution: sums to {sum}")
            }
            LinalgError::NegativeEntry { index, value } => {
                write!(f, "negative entry {value} at flat index {index}")
            }
            LinalgError::NoConvergence { op, iterations } => {
                write!(f, "{op}: no convergence after {iterations} iterations")
            }
            LinalgError::NotSymmetric { max_asymmetry } => {
                write!(
                    f,
                    "matrix is not symmetric (max |a_ij - a_ji| = {max_asymmetry})"
                )
            }
            LinalgError::Empty { op } => write!(f, "{op}: empty operand"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::DimensionMismatch {
            op: "matvec",
            expected: 3,
            actual: 4,
        };
        let s = e.to_string();
        assert!(s.contains("matvec") && s.contains('3') && s.contains('4'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&LinalgError::Empty { op: "sum" });
    }
}
