//! Jacobi eigendecomposition for real symmetric matrices.
//!
//! The QP substrate needs eigenvalues of the (symmetrized) Theorem IV.1
//! quadratic-form matrices for two purposes: a *concavity certificate*
//! (all eigenvalues ≤ 0 ⇒ projected gradient finds the global box maximum)
//! and a *spectral upper bound* on the maximum of the quadratic form over
//! the unit box. The cyclic Jacobi method is simple, unconditionally stable,
//! and plenty fast for the `m ≤ 400` matrices PriSTE produces — and since
//! those matrices are rank ≤ 2 outer products, Jacobi converges in a handful
//! of sweeps.

use crate::{LinalgError, Matrix, Result, Vector};

/// Result of a symmetric eigendecomposition `A = V · diag(λ) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; `vectors.row(k)` pairs with `values[k]`.
    pub vectors: Matrix,
}

impl SymmetricEigen {
    /// Returns the eigenvector paired with `values[k]`.
    pub fn vector(&self, k: usize) -> Vector {
        Vector::from(self.vectors.row(k))
    }

    /// Largest eigenvalue (the decomposition is sorted descending).
    pub fn max_eigenvalue(&self) -> f64 {
        self.values.first().copied().unwrap_or(0.0)
    }

    /// Whether every eigenvalue is ≤ `tol` (negative semi-definiteness up to
    /// tolerance) — the concavity certificate used by the QP solver.
    pub fn is_negative_semidefinite(&self, tol: f64) -> bool {
        self.values.iter().all(|&l| l <= tol)
    }
}

/// Maximum Jacobi sweeps before declaring non-convergence. Each sweep is a
/// full pass over all off-diagonal pairs; well-conditioned symmetric matrices
/// converge in ≈ log(n) + 5 sweeps.
const MAX_SWEEPS: usize = 64;

/// Computes the eigendecomposition of a symmetric matrix via the cyclic
/// Jacobi method.
///
/// # Errors
/// * [`LinalgError::NotSymmetric`] if `a` deviates from symmetry by more than
///   `1e-8 × max|a|`.
/// * [`LinalgError::NoConvergence`] if the off-diagonal mass does not vanish
///   within the 64-sweep internal cap (practically unreachable for finite input).
/// * [`LinalgError::Empty`] for a 0×0 input.
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen> {
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::Empty {
            op: "symmetric_eigen",
        });
    }
    if !a.is_square() {
        return Err(LinalgError::DimensionMismatch {
            op: "symmetric_eigen",
            expected: a.rows(),
            actual: a.cols(),
        });
    }
    let scale = a.max_abs().max(1.0);
    let mut max_asym = 0.0_f64;
    for r in 0..n {
        for c in (r + 1)..n {
            max_asym = max_asym.max((a.get(r, c) - a.get(c, r)).abs());
        }
    }
    if max_asym > 1e-8 * scale {
        return Err(LinalgError::NotSymmetric {
            max_asymmetry: max_asym,
        });
    }

    // Work on a copy; accumulate rotations in `v` (row k = eigenvector k
    // after the final transpose-free bookkeeping below).
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let off_tol = 1e-14 * scale * (n as f64);

    for sweep in 0..MAX_SWEEPS {
        let mut off = 0.0;
        for r in 0..n {
            for c in (r + 1)..n {
                off += m.get(r, c).abs();
            }
        }
        if off <= off_tol {
            return Ok(finish(m, v, n));
        }
        let _ = sweep;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= off_tol / (n * n) as f64 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Classic stable rotation computation (Golub & Van Loan §8.4).
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let cos = 1.0 / (1.0 + t * t).sqrt();
                let sin = t * cos;

                // Apply the rotation to rows/columns p and q of `m`.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, cos * mkp - sin * mkq);
                    m.set(k, q, sin * mkp + cos * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, cos * mpk - sin * mqk);
                    m.set(q, k, sin * mpk + cos * mqk);
                }
                // Accumulate into the eigenvector matrix (columns rotate).
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, cos * vkp - sin * vkq);
                    v.set(k, q, sin * vkp + cos * vkq);
                }
            }
        }
    }
    Err(LinalgError::NoConvergence {
        op: "symmetric_eigen",
        iterations: MAX_SWEEPS,
    })
}

fn finish(m: Matrix, v: Matrix, n: usize) -> SymmetricEigen {
    // Diagonal of `m` holds eigenvalues; column k of `v` the eigenvector.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&i, &j| {
        diag[j]
            .partial_cmp(&diag[i])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (row, &k) in order.iter().enumerate() {
        for c in 0..n {
            vectors.set(row, c, v.get(c, k));
        }
    }
    SymmetricEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &SymmetricEigen) -> Matrix {
        let n = e.values.len();
        let mut out = Matrix::zeros(n, n);
        for k in 0..n {
            let vk = e.vector(k);
            let contrib = Matrix::outer(&vk, &vk).scale(e.values[k]);
            out = out.add(&contrib).unwrap();
        }
        out
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let a = Matrix::from_diag(&Vector::from(vec![3.0, -1.0, 2.0]));
        let e = symmetric_eigen(&a).unwrap();
        assert_eq!(e.values, vec![3.0, 2.0, -1.0]);
    }

    #[test]
    fn two_by_two_known_spectrum() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_matches_input() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, -2.0],
            vec![1.0, 2.0, 0.0],
            vec![-2.0, 0.0, 3.0],
        ])
        .unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!(reconstruct(&e).max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.5, 0.2],
            vec![0.5, 1.0, 0.3],
            vec![0.2, 0.3, 1.0],
        ])
        .unwrap();
        let e = symmetric_eigen(&a).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let d = e.vector(i).dot(&e.vector(j)).unwrap();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-10, "({i},{j}) dot = {d}");
            }
        }
    }

    #[test]
    fn rank_one_outer_product_spectrum() {
        // aᵀa has the single nonzero eigenvalue ‖a‖².
        let a = Vector::from(vec![1.0, 2.0, 2.0]);
        let m = Matrix::outer(&a, &a);
        let e = symmetric_eigen(&m).unwrap();
        assert!((e.values[0] - 9.0).abs() < 1e-10);
        assert!(e.values[1].abs() < 1e-10);
        assert!(e.values[2].abs() < 1e-10);
    }

    #[test]
    fn nsd_certificate() {
        let a = Matrix::from_diag(&Vector::from(vec![-1.0, -0.5]));
        let e = symmetric_eigen(&a).unwrap();
        assert!(e.is_negative_semidefinite(1e-12));
        let b = Matrix::from_diag(&Vector::from(vec![0.5, -0.5]));
        assert!(!symmetric_eigen(&b).unwrap().is_negative_semidefinite(1e-12));
    }

    #[test]
    fn rejects_asymmetric_input() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        assert!(matches!(
            symmetric_eigen(&a),
            Err(LinalgError::NotSymmetric { .. })
        ));
    }

    #[test]
    fn rejects_empty_input() {
        let a = Matrix::zeros(0, 0);
        assert!(matches!(
            symmetric_eigen(&a),
            Err(LinalgError::Empty { .. })
        ));
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[vec![5.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert_eq!(e.values, vec![5.0]);
    }
}
