//! Compressed sparse row (CSR) matrices for banded mobility kernels.
//!
//! Real mobility transitions are sparse: from any grid cell, mass only flows
//! to nearby cells, so a truncated Gaussian kernel over an `m`-cell grid has
//! `O(m · band)` non-zeros instead of `m²`. [`SparseMatrix`] stores exactly
//! the non-zero entries in CSR form so the forward (`x · M`) and backward
//! (`M · x`) products that dominate the quantification engine cost `O(nnz)`
//! per application. The dense [`Matrix`](crate::Matrix) stays the backend of
//! choice for small or genuinely dense chains; callers switch between the
//! two via a density cutover (see `priste_markov::TransitionMatrix`).

use crate::{LinalgError, Matrix, Result, Vector, STOCHASTIC_TOL};

/// A sparse matrix in compressed sparse row (CSR) layout.
///
/// Row `r`'s entries live at positions `row_ptr[r]..row_ptr[r+1]` of
/// `col_idx`/`values`, with column indices strictly increasing within each
/// row. Only structurally stored entries participate in products — a stored
/// explicit zero is allowed but wasteful.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds a CSR matrix from per-row `(column, value)` entry lists.
    ///
    /// Each row's entries must have strictly increasing, in-range column
    /// indices.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] when `entries.len() !=
    /// rows` or when a column index is out of range or out of order.
    pub fn from_row_entries(
        rows: usize,
        cols: usize,
        entries: &[Vec<(usize, f64)>],
    ) -> Result<Self> {
        if entries.len() != rows {
            return Err(LinalgError::DimensionMismatch {
                op: "sparse from_row_entries",
                expected: rows,
                actual: entries.len(),
            });
        }
        let nnz: usize = entries.iter().map(Vec::len).sum();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for row in entries {
            for (k, &(c, v)) in row.iter().enumerate() {
                let ordered = k == 0 || row[k - 1].0 < c;
                if c >= cols || !ordered {
                    return Err(LinalgError::DimensionMismatch {
                        op: "sparse from_row_entries column",
                        expected: cols,
                        actual: c,
                    });
                }
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Ok(SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Compresses a dense matrix, dropping entries with `|v| <= drop_tol`.
    ///
    /// With `drop_tol = 0.0` only exact zeros are dropped, so
    /// [`SparseMatrix::to_dense`] reproduces the input bit-for-bit and every
    /// product agrees with the dense one exactly (skipped terms contribute
    /// literal `0.0` additions).
    pub fn from_dense(m: &Matrix, drop_tol: f64) -> Self {
        let (rows, cols) = (m.rows(), m.cols());
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for (c, &v) in m.row(r).iter().enumerate() {
                if v.abs() > drop_tol {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Materializes the dense equivalent (test/oracle path; `O(m²)` memory).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cs, vs) = self.row_entries(r);
            for (&c, &v) in cs.iter().zip(vs) {
                out.set(r, c, v);
            }
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fill ratio `nnz / (rows · cols)`; 0 for an empty shape.
    pub fn density(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// Entry at `(r, c)`; structurally missing entries read as `0.0`.
    ///
    /// # Panics
    /// Panics if `r` or `c` is out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "sparse get out of bounds");
        let (cs, vs) = self.row_entries(r);
        match cs.binary_search(&c) {
            Ok(k) => vs[k],
            Err(_) => 0.0,
        }
    }

    /// Column indices and values of row `r`'s stored entries.
    ///
    /// # Panics
    /// Panics if `r` is out of bounds.
    pub fn row_entries(&self, r: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Row-vector × matrix product `x · M` (forward orientation).
    ///
    /// # Panics
    /// Panics if `x.len() != rows`.
    pub fn vecmat(&self, x: &Vector) -> Vector {
        self.try_vecmat(x)
            .expect("sparse vecmat dimension mismatch")
    }

    /// Fallible variant of [`SparseMatrix::vecmat`].
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != rows`.
    pub fn try_vecmat(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "sparse vecmat",
                expected: self.rows,
                actual: x.len(),
            });
        }
        let mut out = vec![0.0; self.cols];
        self.vecmat_into(x.as_slice(), &mut out);
        Ok(Vector::from(out))
    }

    /// Allocation-free `x · M`: accumulates into `out` (overwritten).
    ///
    /// # Panics
    /// Panics if `x.len() != rows` or `out.len() != cols`.
    pub fn vecmat_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "sparse vecmat_into input length");
        assert_eq!(out.len(), self.cols, "sparse vecmat_into output length");
        out.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue; // lifted vectors are often half-zero
            }
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            for (&c, &v) in self.col_idx[lo..hi].iter().zip(&self.values[lo..hi]) {
                out[c] += xr * v;
            }
        }
    }

    /// Matrix × column-vector product `M · x` (suffix/backward orientation).
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &Vector) -> Vector {
        self.try_matvec(x)
            .expect("sparse matvec dimension mismatch")
    }

    /// Fallible variant of [`SparseMatrix::matvec`].
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != cols`.
    pub fn try_matvec(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "sparse matvec",
                expected: self.cols,
                actual: x.len(),
            });
        }
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x.as_slice(), &mut out);
        Ok(Vector::from(out))
    }

    /// Allocation-free `M · x`: writes each row's dot product into `out`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols` or `out.len() != rows`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "sparse matvec_into input length");
        assert_eq!(out.len(), self.rows, "sparse matvec_into output length");
        for (r, o) in out.iter_mut().enumerate() {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            *o = self.col_idx[lo..hi]
                .iter()
                .zip(&self.values[lo..hi])
                .map(|(&c, &v)| v * x[c])
                .sum();
        }
    }

    /// Right-multiplication by a diagonal matrix: `M · diag(d)`, i.e. column
    /// `c` scaled by `d[c]`. Structure is preserved (scaled-to-zero entries
    /// stay stored).
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `d.len() != cols`.
    pub fn scale_cols(&self, d: &Vector) -> Result<SparseMatrix> {
        if d.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "sparse scale_cols",
                expected: self.cols,
                actual: d.len(),
            });
        }
        let mut out = self.clone();
        for (v, &c) in out.values.iter_mut().zip(&out.col_idx) {
            *v *= d[c];
        }
        Ok(out)
    }

    /// Normalizes every row to sum to 1 in place. Rows with no stored mass
    /// are left untouched (a CSR row cannot be densified to uniform without
    /// changing the structure; callers building chains must give every row
    /// at least its self-loop).
    pub fn normalize_rows_mut(&mut self) {
        for r in 0..self.rows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let s: f64 = self.values[lo..hi].iter().sum();
            if s > 0.0 {
                for v in &mut self.values[lo..hi] {
                    *v /= s;
                }
            }
        }
    }

    /// Validates row-stochasticity over the stored entries, mirroring
    /// [`Matrix::validate_stochastic`].
    ///
    /// # Errors
    /// [`LinalgError::NegativeEntry`] or [`LinalgError::NotStochastic`].
    pub fn validate_stochastic(&self) -> Result<()> {
        let tol = STOCHASTIC_TOL * (self.cols.max(1) as f64);
        for r in 0..self.rows {
            let (cs, vs) = self.row_entries(r);
            let mut sum = 0.0;
            for (&c, &v) in cs.iter().zip(vs) {
                if v < -STOCHASTIC_TOL {
                    return Err(LinalgError::NegativeEntry {
                        index: r * self.cols + c,
                        value: v,
                    });
                }
                sum += v;
            }
            if (sum - 1.0).abs() > tol {
                return Err(LinalgError::NotStochastic { row: r, sum });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense3() -> Matrix {
        Matrix::from_rows(&[
            vec![0.5, 0.5, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.25, 0.0, 0.75],
        ])
        .unwrap()
    }

    #[test]
    fn from_dense_roundtrips_and_counts_nnz() {
        let d = dense3();
        let s = SparseMatrix::from_dense(&d, 0.0);
        assert_eq!(s.nnz(), 5);
        assert!((s.density() - 5.0 / 9.0).abs() < 1e-15);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn drop_tolerance_prunes_small_entries() {
        let d = Matrix::from_rows(&[vec![1e-13, 1.0], vec![0.5, 0.5]]).unwrap();
        let s = SparseMatrix::from_dense(&d, 1e-12);
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.get(0, 0), 0.0);
        assert_eq!(s.get(0, 1), 1.0);
    }

    #[test]
    fn vecmat_and_matvec_match_dense() {
        let d = dense3();
        let s = SparseMatrix::from_dense(&d, 0.0);
        let x = Vector::from(vec![0.2, 0.3, 0.5]);
        assert_eq!(s.vecmat(&x).as_slice(), d.vecmat(&x).as_slice());
        assert_eq!(s.matvec(&x).as_slice(), d.matvec(&x).as_slice());
    }

    #[test]
    fn into_variants_match_allocating_ones() {
        let s = SparseMatrix::from_dense(&dense3(), 0.0);
        let x = Vector::from(vec![0.1, 0.0, 0.9]);
        let mut buf = vec![7.0; 3];
        s.vecmat_into(x.as_slice(), &mut buf);
        assert_eq!(buf, s.vecmat(&x).as_slice());
        s.matvec_into(x.as_slice(), &mut buf);
        assert_eq!(buf, s.matvec(&x).as_slice());
    }

    #[test]
    fn scale_cols_matches_dense() {
        let d = dense3();
        let s = SparseMatrix::from_dense(&d, 0.0);
        let diag = Vector::from(vec![2.0, 0.0, 1.0]);
        let scaled = s.scale_cols(&diag).unwrap();
        assert_eq!(scaled.to_dense(), d.scale_cols(&diag).unwrap());
        assert!(scaled.scale_cols(&Vector::ones(2)).is_err());
    }

    #[test]
    fn from_row_entries_validates_order_and_range() {
        let ok = SparseMatrix::from_row_entries(2, 3, &[vec![(0, 1.0), (2, 2.0)], vec![]]);
        assert!(ok.is_ok());
        assert!(SparseMatrix::from_row_entries(2, 3, &[vec![(3, 1.0)], vec![]]).is_err());
        assert!(SparseMatrix::from_row_entries(2, 3, &[vec![(1, 1.0), (1, 2.0)], vec![]]).is_err());
        assert!(SparseMatrix::from_row_entries(1, 3, &[vec![], vec![]]).is_err());
    }

    #[test]
    fn validate_stochastic_mirrors_dense_rules() {
        let mut s = SparseMatrix::from_dense(&dense3(), 0.0);
        s.validate_stochastic().unwrap();
        s = SparseMatrix::from_row_entries(1, 2, &[vec![(0, 0.4), (1, 0.4)]]).unwrap();
        assert!(matches!(
            s.validate_stochastic(),
            Err(LinalgError::NotStochastic { row: 0, .. })
        ));
        s = SparseMatrix::from_row_entries(1, 2, &[vec![(0, -0.5), (1, 1.5)]]).unwrap();
        assert!(matches!(
            s.validate_stochastic(),
            Err(LinalgError::NegativeEntry { .. })
        ));
    }

    #[test]
    fn normalize_rows_skips_empty_rows() {
        let mut s =
            SparseMatrix::from_row_entries(2, 2, &[vec![(0, 2.0), (1, 6.0)], vec![]]).unwrap();
        s.normalize_rows_mut();
        assert!((s.get(0, 0) - 0.25).abs() < 1e-15);
        assert!((s.get(0, 1) - 0.75).abs() < 1e-15);
        assert_eq!(s.row_entries(1).0.len(), 0);
    }

    #[test]
    fn empty_shape_has_zero_density() {
        let s = SparseMatrix::from_row_entries(0, 0, &[]).unwrap();
        assert_eq!(s.density(), 0.0);
        assert_eq!(s.nnz(), 0);
    }
}
