//! Dense `f64` linear algebra substrate for the PriSTE workspace.
//!
//! The PriSTE quantification engine (lifted two-possible-world Markov
//! products, forward–backward recurrences, Theorem IV.1 quadratic forms)
//! needs a small, predictable set of dense operations over probability
//! vectors and row-stochastic matrices. Owning the kernel — instead of
//! pulling a general-purpose linear algebra crate — lets the engine exploit
//! the block structure of lifted `2m×2m` matrices (four structured `m×m`
//! blocks) and keeps numerical behaviour fully under our control.
//!
//! Provided here:
//!
//! * [`Vector`] — owned dense row vector with the dot/Hadamard/normalize
//!   operations used by the probability pipelines.
//! * [`Matrix`] — owned row-major dense matrix with matrix–vector products in
//!   both orientations (`x·M` drives forward recurrences, `M·x` drives
//!   backward/suffix products), matrix products, block composition and
//!   stochasticity checks.
//! * [`SparseMatrix`] — compressed sparse row (CSR) storage for banded
//!   mobility kernels, with `O(nnz)` products in both orientations and a
//!   `from_dense(threshold)` compressor; see the density cutover in
//!   `priste_markov`.
//! * [`eigen`] — a Jacobi eigensolver for symmetric matrices, used by the QP
//!   substrate for concavity certificates and spectral upper bounds.
//! * [`scaling`] — HMM-style rescaled vectors that keep long products of
//!   sub-stochastic factors inside `f64` range while tracking the logarithm
//!   of the accumulated scale.
//!
//! All operations are deterministic; no randomness lives in this crate.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod eigen;
mod error;
mod matrix;
pub mod scaling;
mod sparse;
mod vector;

pub use error::LinalgError;
pub use matrix::Matrix;
pub use sparse::SparseMatrix;
pub use vector::Vector;

/// Convenience result alias for fallible linear algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Absolute tolerance used by stochasticity and symmetry checks.
///
/// Row sums of trained/synthetic transition matrices accumulate rounding from
/// normalization, and repeated lifted products compound it; `1e-9` is tight
/// enough to catch construction bugs while loose enough for honest rounding.
pub const STOCHASTIC_TOL: f64 = 1e-9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_roundtrip_smoke() {
        let m = Matrix::identity(3);
        let v = Vector::from(vec![1.0, 2.0, 3.0]);
        assert_eq!(m.vecmat(&v).as_slice(), &[1.0, 2.0, 3.0]);
    }
}
