use crate::{LinalgError, Result, Vector, STOCHASTIC_TOL};

/// Owned dense row-major matrix of `f64`.
///
/// Rows index the *source* state and columns the *destination* state for all
/// Markov transition matrices in the workspace, matching the paper's
/// convention `p_{t+1} = p_t · M`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows*cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "from_flat",
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from nested row slices.
    ///
    /// # Errors
    /// Returns [`LinalgError::Empty`] for an empty row list and
    /// [`LinalgError::DimensionMismatch`] for ragged rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::Empty { op: "from_rows" });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    op: "from_rows",
                    expected: cols,
                    actual: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a diagonal matrix with `diag` on the diagonal (the paper's
    /// `a^D` notation).
    pub fn from_diag(diag: &Vector) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = diag[i];
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Entry accessor.
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c]
    }

    /// Entry mutator.
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c] = value;
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a [`Vector`].
    ///
    /// # Panics
    /// Panics if `c` is out of range.
    pub fn col(&self, c: usize) -> Vector {
        assert!(c < self.cols, "column {c} out of range");
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Immutable view of the flat row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Row-vector × matrix product `x · M` (forward recurrence orientation).
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != rows`.
    pub fn vecmat(&self, x: &Vector) -> Vector {
        self.try_vecmat(x).expect("vecmat dimension mismatch")
    }

    /// Fallible variant of [`Matrix::vecmat`].
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != rows`.
    pub fn try_vecmat(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "vecmat",
                expected: self.rows,
                actual: x.len(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.as_slice().iter().enumerate() {
            if xr == 0.0 {
                continue; // lifted vectors are often half-zero
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &m) in out.iter_mut().zip(row) {
                *o += xr * m;
            }
        }
        Ok(Vector::from(out))
    }

    /// Allocation-free `x · M`: accumulates into `out` (overwritten).
    ///
    /// # Panics
    /// Panics if `x.len() != rows` or `out.len() != cols`.
    pub fn vecmat_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "vecmat_into input length");
        assert_eq!(out.len(), self.cols, "vecmat_into output length");
        out.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &m) in out.iter_mut().zip(row) {
                *o += xr * m;
            }
        }
    }

    /// Matrix × column-vector product `M · x` (suffix/backward orientation).
    ///
    /// # Panics
    /// Panics if `x.len() != cols` (see [`Matrix::try_matvec`] for the
    /// fallible form).
    pub fn matvec(&self, x: &Vector) -> Vector {
        self.try_matvec(x).expect("matvec dimension mismatch")
    }

    /// Fallible variant of [`Matrix::matvec`].
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != cols`.
    pub fn try_matvec(&self, x: &Vector) -> Result<Vector> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                expected: self.cols,
                actual: x.len(),
            });
        }
        let xs = x.as_slice();
        let out: Vec<f64> = (0..self.rows)
            .map(|r| {
                let row = &self.data[r * self.cols..(r + 1) * self.cols];
                row.iter().zip(xs).map(|(m, v)| m * v).sum()
            })
            .collect();
        Ok(Vector::from(out))
    }

    /// Allocation-free `M · x`: writes each row's dot product into `out`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols` or `out.len() != rows`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec_into input length");
        assert_eq!(out.len(), self.rows, "matvec_into output length");
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *o = row.iter().zip(x).map(|(m, v)| m * v).sum();
        }
    }

    /// Matrix product `self · other`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order: stream through `other` rows for cache friendliness.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "matrix add", |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "matrix sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "matrix hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        other: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                op,
                expected: self.rows * self.cols,
                actual: other.rows * other.cols,
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self` scaled by `factor`.
    pub fn scale(&self, factor: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * factor).collect(),
        }
    }

    /// Right-multiplies by a diagonal matrix: `self · diag(d)`, i.e. scales
    /// column `j` by `d[j]`. This is the paper's ubiquitous `M · p̃^D` step
    /// done in `O(rows·cols)` without materializing the diagonal.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `d.len() != cols`.
    pub fn scale_cols(&self, d: &Vector) -> Result<Matrix> {
        if d.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "scale_cols",
                expected: self.cols,
                actual: d.len(),
            });
        }
        let mut out = self.clone();
        for r in 0..self.rows {
            for (c, v) in out.row_mut(r).iter_mut().enumerate() {
                *v *= d[c];
            }
        }
        Ok(out)
    }

    /// Left-multiplies by a diagonal matrix: `diag(d) · self`, i.e. scales
    /// row `i` by `d[i]`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if `d.len() != rows`.
    pub fn scale_rows(&self, d: &Vector) -> Result<Matrix> {
        if d.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "scale_rows",
                expected: self.rows,
                actual: d.len(),
            });
        }
        let mut out = self.clone();
        for r in 0..self.rows {
            let f = d[r];
            for v in out.row_mut(r) {
                *v *= f;
            }
        }
        Ok(out)
    }

    /// Assembles a `2×2` block matrix
    /// `[[tl, tr], [bl, br]]` — the shape of every lifted two-world
    /// transition matrix (paper Eq. (3)).
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] unless all four blocks are
    /// square with identical dimensions.
    pub fn from_blocks(tl: &Matrix, tr: &Matrix, bl: &Matrix, br: &Matrix) -> Result<Matrix> {
        let n = tl.rows;
        for (name, b) in [("tl", tl), ("tr", tr), ("bl", bl), ("br", br)] {
            if b.rows != n || b.cols != n {
                let _ = name;
                return Err(LinalgError::DimensionMismatch {
                    op: "from_blocks",
                    expected: n,
                    actual: if b.rows != n { b.rows } else { b.cols },
                });
            }
        }
        let mut out = Matrix::zeros(2 * n, 2 * n);
        for r in 0..n {
            out.data[r * 2 * n..r * 2 * n + n].copy_from_slice(tl.row(r));
            out.data[r * 2 * n + n..(r + 1) * 2 * n].copy_from_slice(tr.row(r));
            let br_off = (n + r) * 2 * n;
            out.data[br_off..br_off + n].copy_from_slice(bl.row(r));
            out.data[br_off + n..br_off + 2 * n].copy_from_slice(br.row(r));
        }
        Ok(out)
    }

    /// Outer product `colᵀ · row` producing `col.len() × row.len()`.
    pub fn outer(col: &Vector, row: &Vector) -> Matrix {
        let mut out = Matrix::zeros(col.len(), row.len());
        for r in 0..col.len() {
            let cv = col[r];
            if cv == 0.0 {
                continue;
            }
            for c in 0..row.len() {
                out.data[r * row.len() + c] = cv * row[c];
            }
        }
        out
    }

    /// Symmetric part `(A + Aᵀ)/2` — the canonical quadratic-form matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn symmetrize(&self) -> Matrix {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        let n = self.rows;
        let mut out = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                out.data[r * n + c] = 0.5 * (self.data[r * n + c] + self.data[c * n + r]);
            }
        }
        out
    }

    /// Evaluates the quadratic form `x · A · xᵀ`.
    ///
    /// # Errors
    /// Returns [`LinalgError::DimensionMismatch`] if shapes disagree.
    pub fn quadratic_form(&self, x: &Vector) -> Result<f64> {
        let ax = self.try_matvec(x)?;
        x.dot(&ax)
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
    }

    /// Sum of every entry.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Validates that the matrix is row-stochastic: every entry non-negative
    /// and every row summing to 1 within [`STOCHASTIC_TOL`] × `cols`.
    ///
    /// # Errors
    /// [`LinalgError::NegativeEntry`] or [`LinalgError::NotStochastic`].
    pub fn validate_stochastic(&self) -> Result<()> {
        let tol = STOCHASTIC_TOL * (self.cols.max(1) as f64);
        for r in 0..self.rows {
            let mut sum = 0.0;
            for (c, &x) in self.row(r).iter().enumerate() {
                if x < -STOCHASTIC_TOL {
                    return Err(LinalgError::NegativeEntry {
                        index: r * self.cols + c,
                        value: x,
                    });
                }
                sum += x;
            }
            if (sum - 1.0).abs() > tol {
                return Err(LinalgError::NotStochastic { row: r, sum });
            }
        }
        Ok(())
    }

    /// Normalizes every row to sum to 1 in place. Rows summing to zero are
    /// replaced by the uniform distribution (the conventional fix when
    /// training Markov chains from sparse counts).
    pub fn normalize_rows_mut(&mut self) {
        let cols = self.cols;
        for r in 0..self.rows {
            let row = &mut self.data[r * cols..(r + 1) * cols];
            let s: f64 = row.iter().sum();
            if s > 0.0 {
                for v in row.iter_mut() {
                    *v /= s;
                }
            } else {
                let u = 1.0 / cols as f64;
                for v in row.iter_mut() {
                    *v = u;
                }
            }
        }
    }

    /// Maximum absolute entry-wise difference to `other`.
    ///
    /// # Panics
    /// Panics on shape mismatch (diagnostic helper).
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_m() -> Matrix {
        // Transition matrix from paper Example III.1, Eq. (2).
        Matrix::from_rows(&[
            vec![0.1, 0.2, 0.7],
            vec![0.4, 0.1, 0.5],
            vec![0.0, 0.1, 0.9],
        ])
        .unwrap()
    }

    #[test]
    fn identity_and_diag() {
        let i = Matrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        let d = Matrix::from_diag(&Vector::from(vec![2.0, 3.0]));
        assert_eq!(d.get(0, 0), 2.0);
        assert_eq!(d.get(1, 1), 3.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let e = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
        assert!(matches!(e, Err(LinalgError::DimensionMismatch { .. })));
        assert!(matches!(
            Matrix::from_rows(&[]),
            Err(LinalgError::Empty { .. })
        ));
    }

    #[test]
    fn from_flat_checks_length() {
        assert!(Matrix::from_flat(2, 2, vec![0.0; 3]).is_err());
        let m = Matrix::from_flat(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn vecmat_matches_markov_transition() {
        let m = example_m();
        let pi = Vector::from(vec![1.0, 0.0, 0.0]);
        let p2 = m.vecmat(&pi);
        assert_eq!(p2.as_slice(), &[0.1, 0.2, 0.7]);
        let u = Vector::uniform(3);
        let p = m.vecmat(&u);
        assert!((p.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matvec_is_transpose_of_vecmat() {
        let m = example_m();
        let x = Vector::from(vec![0.3, 0.3, 0.4]);
        let a = m.matvec(&x);
        let b = m.transpose().vecmat(&x);
        assert!(a.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = example_m();
        let i = Matrix::identity(3);
        assert!(m.matmul(&i).unwrap().max_abs_diff(&m) < 1e-15);
        assert!(i.matmul(&m).unwrap().max_abs_diff(&m) < 1e-15);
    }

    #[test]
    fn matmul_associates_with_vecmat() {
        let m = example_m();
        let m2 = m.matmul(&m).unwrap();
        let pi = Vector::from(vec![0.2, 0.5, 0.3]);
        let via_mat = m2.vecmat(&pi);
        let via_vec = m.vecmat(&m.vecmat(&pi));
        assert!(via_mat.max_abs_diff(&via_vec) < 1e-12);
    }

    #[test]
    fn scale_cols_matches_diag_product() {
        let m = example_m();
        let d = Vector::from(vec![0.5, 1.0, 2.0]);
        let fast = m.scale_cols(&d).unwrap();
        let slow = m.matmul(&Matrix::from_diag(&d)).unwrap();
        assert!(fast.max_abs_diff(&slow) < 1e-15);
    }

    #[test]
    fn scale_rows_matches_diag_product() {
        let m = example_m();
        let d = Vector::from(vec![0.5, 1.0, 2.0]);
        let fast = m.scale_rows(&d).unwrap();
        let slow = Matrix::from_diag(&d).matmul(&m).unwrap();
        assert!(fast.max_abs_diff(&slow) < 1e-15);
    }

    #[test]
    fn blocks_roundtrip() {
        let m = example_m();
        let z = Matrix::zeros(3, 3);
        let i = Matrix::identity(3);
        let b = Matrix::from_blocks(&m, &z, &z, &i).unwrap();
        assert_eq!(b.rows(), 6);
        assert_eq!(b.get(0, 1), 0.2); // tl
        assert_eq!(b.get(0, 4), 0.0); // tr
        assert_eq!(b.get(4, 4), 1.0); // br
        assert_eq!(b.get(4, 1), 0.0); // bl
    }

    #[test]
    fn block_product_preserves_stochasticity() {
        // A lifted matrix [[M - M s^D, M s^D], [0, M]] must stay stochastic.
        let m = example_m();
        let s = Vector::from(vec![1.0, 1.0, 0.0]);
        let msd = m.scale_cols(&s).unwrap();
        let tl = m.sub(&msd).unwrap();
        let lifted = Matrix::from_blocks(&tl, &msd, &Matrix::zeros(3, 3), &m).unwrap();
        lifted.validate_stochastic().unwrap();
    }

    #[test]
    fn outer_and_symmetrize() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![3.0, 4.0]);
        let o = Matrix::outer(&a, &b);
        assert_eq!(o.get(1, 0), 6.0);
        let s = o.symmetrize();
        assert_eq!(s.get(0, 1), s.get(1, 0));
        assert_eq!(s.get(0, 1), 0.5 * (4.0 + 6.0));
    }

    #[test]
    fn quadratic_form_matches_manual() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x = Vector::from(vec![1.0, 2.0]);
        // x A xᵀ = 2 + 2 + 2 + 12 = 18
        assert_eq!(a.quadratic_form(&x).unwrap(), 18.0);
    }

    #[test]
    fn stochastic_validation() {
        example_m().validate_stochastic().unwrap();
        let mut bad = example_m();
        bad.set(0, 0, 0.5);
        assert!(matches!(
            bad.validate_stochastic(),
            Err(LinalgError::NotStochastic { .. })
        ));
        let mut neg = example_m();
        neg.set(0, 0, -0.1);
        assert!(matches!(
            neg.validate_stochastic(),
            Err(LinalgError::NegativeEntry { .. })
        ));
    }

    #[test]
    fn normalize_rows_fixes_zero_rows_to_uniform() {
        let mut m = Matrix::from_rows(&[vec![2.0, 2.0], vec![0.0, 0.0]]).unwrap();
        m.normalize_rows_mut();
        m.validate_stochastic().unwrap();
        assert_eq!(m.row(1), &[0.5, 0.5]);
    }

    #[test]
    fn transpose_involutes() {
        let m = example_m();
        assert!(m.transpose().transpose().max_abs_diff(&m) < 1e-15);
    }

    #[test]
    fn col_extracts_column() {
        let m = example_m();
        assert_eq!(m.col(2).as_slice(), &[0.7, 0.5, 0.9]);
    }
}
