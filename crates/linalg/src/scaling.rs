//! HMM-style rescaled probability vectors.
//!
//! The joint probabilities in Lemmas III.2/III.3 are products of `T`
//! sub-stochastic factors (`M_{i−1} · p̃^D_{o_i}`); with `m = 400` states and
//! `T = 50+` timestamps the raw values underflow toward `1e-130` and below.
//! PriSTE only ever consumes these quantities through *ratios* and through
//! the Theorem IV.1 inequalities, which are jointly homogeneous of degree 1
//! in `(b, c)` — so multiplying all forward/backward products by a common
//! positive constant changes no decision. [`ScaledVector`] tracks a vector
//! `v` together with `log_scale` such that the represented value is
//! `v · exp(log_scale)`, renormalizing whenever the carried vector drifts out
//! of a comfortable floating-point window.

use crate::{Matrix, Vector};

/// Renormalize when the carried vector's largest entry leaves
/// `[RENORM_LO, RENORM_HI]`. The window is generous: renormalization costs a
/// pass over the vector, so we only pay it when drift is real.
const RENORM_HI: f64 = 1e100;
/// See [`RENORM_HI`].
const RENORM_LO: f64 = 1e-100;

/// A non-negative vector `v` with an exponent offset: represents
/// `v · exp(log_scale)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaledVector {
    /// Carried (mantissa) vector.
    pub vector: Vector,
    /// Natural-log scale factor applied to every entry.
    pub log_scale: f64,
}

impl ScaledVector {
    /// Wraps a raw vector with zero offset.
    pub fn new(vector: Vector) -> Self {
        ScaledVector {
            vector,
            log_scale: 0.0,
        }
    }

    /// Length of the carried vector.
    pub fn len(&self) -> usize {
        self.vector.len()
    }

    /// Whether the carried vector is empty.
    pub fn is_empty(&self) -> bool {
        self.vector.is_empty()
    }

    /// The represented sum `Σᵢ vᵢ · exp(log_scale)` as a raw `f64`.
    ///
    /// May underflow to 0 or overflow to ∞ for extreme scales; prefer
    /// [`ScaledVector::log_sum`] when only magnitudes matter.
    pub fn sum(&self) -> f64 {
        self.vector.sum() * self.log_scale.exp()
    }

    /// Natural log of the represented sum, `ln(Σᵢ vᵢ) + log_scale`.
    /// Returns `-∞` when the carried sum is zero.
    pub fn log_sum(&self) -> f64 {
        let s = self.vector.sum();
        if s <= 0.0 {
            f64::NEG_INFINITY
        } else {
            s.ln() + self.log_scale
        }
    }

    /// Advances by one forward factor: `self ← (self · M) ∘ e`, where `e` is
    /// an emission column. This is exactly one step of the paper's forward
    /// product `… (M_{i−1} · p̃^D_{o_i})`.
    ///
    /// # Panics
    /// Panics on dimension mismatch between `self`, `m` and `e`.
    pub fn forward_step(&mut self, m: &Matrix, e: &Vector) {
        let moved = m.vecmat(&self.vector);
        self.vector = moved.hadamard(e).expect("emission dimension mismatch");
        self.renormalize();
    }

    /// Advances by one *plain* transition without an emission factor:
    /// `self ← self · M`. Used for the prior products of Lemma III.1.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn transition_step(&mut self, m: &Matrix) {
        self.vector = m.vecmat(&self.vector);
        self.renormalize();
    }

    /// Advances by one backward factor: `self ← (self ∘ e) · Mᵀ`, i.e. one
    /// step of the paper's backward product `(p̃^D_{o_{i+1}} · Mᵀ_i)` applied
    /// to a row vector from the left.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn backward_step(&mut self, m: &Matrix, e: &Vector) {
        let weighted = self
            .vector
            .hadamard(e)
            .expect("emission dimension mismatch");
        // (w · Mᵀ) as a row vector equals M · wᵀ read as a row.
        self.vector = m.matvec(&weighted);
        self.renormalize();
    }

    /// Dot product of two scaled vectors as `(value, log_scale)` — i.e. the
    /// represented result is `value · exp(log_scale)`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn scaled_dot(&self, other: &ScaledVector) -> (f64, f64) {
        let raw = self
            .vector
            .dot(&other.vector)
            .expect("scaled_dot dimension mismatch");
        (raw, self.log_scale + other.log_scale)
    }

    /// Pulls the carried vector back into floating-point range, folding the
    /// extracted factor into `log_scale`.
    pub fn renormalize(&mut self) {
        let peak = self.vector.max_abs();
        if peak == 0.0 || !peak.is_finite() {
            return; // zero vector stays zero; non-finite is surfaced to callers
        }
        if !(RENORM_LO..=RENORM_HI).contains(&peak) {
            let shift = peak.ln();
            self.vector.scale_mut((-shift).exp());
            self.log_scale += shift;
        }
    }

    /// Returns a copy of both halves' represented values with the *shared*
    /// log scale — convenient for lifted two-world vectors.
    ///
    /// # Panics
    /// Panics if the carried vector has odd length.
    pub fn split_halves(&self) -> (ScaledVector, ScaledVector) {
        let (a, b) = self.vector.split_halves();
        (
            ScaledVector {
                vector: a,
                log_scale: self.log_scale,
            },
            ScaledVector {
                vector: b,
                log_scale: self.log_scale,
            },
        )
    }

    /// Rescales `self` and `other` to a common `log_scale` (the larger of the
    /// two) and returns the raw carried vectors under that shared scale,
    /// together with the scale itself.
    ///
    /// This is how Theorem IV.1's `(b, c)` pair is extracted: both vectors
    /// must be expressed relative to the *same* positive constant for the
    /// homogeneous inequalities to be evaluated on raw floats.
    pub fn align_with(&self, other: &ScaledVector) -> (Vector, Vector, f64) {
        let shared = self.log_scale.max(other.log_scale);
        let a = self.vector.scale((self.log_scale - shared).exp());
        let b = other.vector.scale((other.log_scale - shared).exp());
        (a, b, shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m3() -> Matrix {
        Matrix::from_rows(&[
            vec![0.1, 0.2, 0.7],
            vec![0.4, 0.1, 0.5],
            vec![0.0, 0.1, 0.9],
        ])
        .unwrap()
    }

    #[test]
    fn forward_step_matches_raw_computation() {
        let m = m3();
        let e = Vector::from(vec![0.5, 0.2, 0.3]);
        let mut s = ScaledVector::new(Vector::from(vec![0.3, 0.3, 0.4]));
        s.forward_step(&m, &e);
        let raw = m
            .vecmat(&Vector::from(vec![0.3, 0.3, 0.4]))
            .hadamard(&e)
            .unwrap();
        let unscaled = s.vector.scale(s.log_scale.exp());
        assert!(unscaled.max_abs_diff(&raw) < 1e-12);
    }

    #[test]
    fn long_product_does_not_underflow() {
        let m = m3();
        let e = Vector::from(vec![1e-3, 1e-3, 1e-3]); // brutal emission
        let mut s = ScaledVector::new(Vector::uniform(3));
        for _ in 0..200 {
            s.forward_step(&m, &e);
        }
        // Raw value would be ~1e-600 (underflow); log_sum must stay finite.
        let ls = s.log_sum();
        assert!(ls.is_finite());
        assert!(ls < -1000.0);
        assert!(s.vector.max_abs() > 0.0);
    }

    #[test]
    fn log_sum_of_zero_vector_is_neg_infinity() {
        let s = ScaledVector::new(Vector::zeros(3));
        assert_eq!(s.log_sum(), f64::NEG_INFINITY);
    }

    #[test]
    fn backward_step_matches_raw_computation() {
        let m = m3();
        let e = Vector::from(vec![0.2, 0.5, 0.3]);
        let beta = Vector::from(vec![1.0, 1.0, 1.0]);
        let mut s = ScaledVector::new(beta.clone());
        s.backward_step(&m, &e);
        let raw = m.matvec(&beta.hadamard(&e).unwrap());
        let unscaled = s.vector.scale(s.log_scale.exp());
        assert!(unscaled.max_abs_diff(&raw) < 1e-12);
    }

    #[test]
    fn align_with_restores_common_scale() {
        let a = ScaledVector {
            vector: Vector::from(vec![1.0, 2.0]),
            log_scale: -5.0,
        };
        let b = ScaledVector {
            vector: Vector::from(vec![3.0, 4.0]),
            log_scale: -3.0,
        };
        let (av, bv, shared) = a.align_with(&b);
        assert_eq!(shared, -3.0);
        // a represented = [e^-5, 2e^-5]; under scale e^-3 carried = [e^-2, 2e^-2]
        assert!((av[0] - (-2.0_f64).exp()).abs() < 1e-12);
        assert_eq!(bv.as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn transition_step_preserves_total_mass_in_log() {
        let m = m3();
        let mut s = ScaledVector::new(Vector::uniform(3));
        let before = s.log_sum();
        s.transition_step(&m);
        // Stochastic transition preserves total probability mass.
        assert!((s.log_sum() - before).abs() < 1e-12);
    }

    #[test]
    fn scaled_dot_combines_scales() {
        let a = ScaledVector {
            vector: Vector::from(vec![1.0, 1.0]),
            log_scale: -10.0,
        };
        let b = ScaledVector {
            vector: Vector::from(vec![2.0, 3.0]),
            log_scale: -20.0,
        };
        let (raw, ls) = a.scaled_dot(&b);
        assert_eq!(raw, 5.0);
        assert_eq!(ls, -30.0);
    }

    #[test]
    fn split_halves_shares_scale() {
        let s = ScaledVector {
            vector: Vector::from(vec![1.0, 2.0, 3.0, 4.0]),
            log_scale: 7.0,
        };
        let (x, y) = s.split_halves();
        assert_eq!(x.log_scale, 7.0);
        assert_eq!(y.vector.as_slice(), &[3.0, 4.0]);
    }
}
