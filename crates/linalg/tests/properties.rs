//! Property-based tests for the linear-algebra kernels.

use priste_linalg::eigen::symmetric_eigen;
use priste_linalg::scaling::ScaledVector;
use priste_linalg::{Matrix, Vector};
use proptest::prelude::*;

fn vector(n: usize) -> impl Strategy<Value = Vector> {
    proptest::collection::vec(-10.0f64..10.0, n).prop_map(Vector::from)
}

fn matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(proptest::collection::vec(-5.0f64..5.0, n), n)
        .prop_map(|rows| Matrix::from_rows(&rows).unwrap())
}

fn stochastic(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(proptest::collection::vec(0.01f64..1.0, n), n).prop_map(|rows| {
        let mut m = Matrix::from_rows(&rows).unwrap();
        m.normalize_rows_mut();
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// vecmat and matvec are transposes of each other.
    #[test]
    fn vecmat_matvec_transpose_duality(m in matrix(4), x in vector(4)) {
        let a = m.vecmat(&x);
        let b = m.transpose().matvec(&x);
        prop_assert!(a.max_abs_diff(&b) < 1e-10);
    }

    /// Matrix multiplication is associative with vector application.
    #[test]
    fn matmul_vecmat_associativity(a in matrix(3), b in matrix(3), x in vector(3)) {
        let via_product = a.matmul(&b).unwrap().vecmat(&x);
        let via_steps = b.vecmat(&a.vecmat(&x));
        prop_assert!(via_product.max_abs_diff(&via_steps) < 1e-8);
    }

    /// Dot products are bilinear.
    #[test]
    fn dot_bilinearity(x in vector(5), y in vector(5), z in vector(5), c in -3.0f64..3.0) {
        let lhs = x.add(&y.scale(c)).unwrap().dot(&z).unwrap();
        let rhs = x.dot(&z).unwrap() + c * y.dot(&z).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-8, "{lhs} vs {rhs}");
    }

    /// Stochastic products stay stochastic.
    #[test]
    fn stochastic_closure(a in stochastic(4), b in stochastic(4)) {
        a.matmul(&b).unwrap().validate_stochastic().unwrap();
    }

    /// Quadratic forms agree with their symmetrized matrices.
    #[test]
    fn quadratic_form_symmetrization(m in matrix(4), x in vector(4)) {
        let raw = m.quadratic_form(&x).unwrap();
        let sym = m.symmetrize().quadratic_form(&x).unwrap();
        prop_assert!((raw - sym).abs() < 1e-8);
    }

    /// Jacobi eigendecomposition reconstructs symmetric matrices and its
    /// eigenvalue sum matches the trace.
    #[test]
    fn eigen_reconstruction(m in matrix(4)) {
        let s = m.symmetrize();
        let e = symmetric_eigen(&s).unwrap();
        let trace: f64 = (0..4).map(|i| s.get(i, i)).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8);
        let mut rebuilt = Matrix::zeros(4, 4);
        for k in 0..4 {
            let v = e.vector(k);
            rebuilt = rebuilt.add(&Matrix::outer(&v, &v).scale(e.values[k])).unwrap();
        }
        prop_assert!(rebuilt.max_abs_diff(&s) < 1e-7);
    }

    /// Scaled forward steps represent exactly the raw product (while the
    /// raw value stays representable).
    #[test]
    fn scaled_vector_represents_raw_product(
        m in stochastic(3),
        e in proptest::collection::vec(0.05f64..1.0, 3),
        steps in 1usize..12,
    ) {
        let emission = Vector::from(e);
        let mut scaled = ScaledVector::new(Vector::uniform(3));
        let mut raw = Vector::uniform(3);
        for _ in 0..steps {
            scaled.forward_step(&m, &emission);
            raw = m.vecmat(&raw).hadamard(&emission).unwrap();
        }
        let represented = scaled.vector.scale(scaled.log_scale.exp());
        prop_assert!(represented.max_abs_diff(&raw) < 1e-10 * raw.max_abs().max(1e-30));
    }

    /// Concat/split round-trips and preserves sums.
    #[test]
    fn concat_split_round_trip(a in vector(4), b in vector(4)) {
        let joined = a.concat(&b);
        prop_assert!((joined.sum() - a.sum() - b.sum()).abs() < 1e-9);
        let (fa, fb) = joined.split_halves();
        prop_assert_eq!(fa, a);
        prop_assert_eq!(fb, b);
    }

    /// Row/column scaling against dense diagonal products.
    #[test]
    fn diagonal_scaling_equivalence(m in matrix(4), d in proptest::collection::vec(-2.0f64..2.0, 4)) {
        let dv = Vector::from(d);
        let fast_cols = m.scale_cols(&dv).unwrap();
        let slow_cols = m.matmul(&Matrix::from_diag(&dv)).unwrap();
        prop_assert!(fast_cols.max_abs_diff(&slow_cols) < 1e-10);
        let fast_rows = m.scale_rows(&dv).unwrap();
        let slow_rows = Matrix::from_diag(&dv).matmul(&m).unwrap();
        prop_assert!(fast_rows.max_abs_diff(&slow_rows) < 1e-10);
    }
}
