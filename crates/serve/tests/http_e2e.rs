//! End-to-end tests over real TCP: a `Server` on an ephemeral port,
//! driven by hand-rolled client connections and the crate's own load
//! generator.

use priste_calibrate::GuardConfig;
use priste_event::Presence;
use priste_geo::{GridMap, Region};
use priste_linalg::Vector;
use priste_lppm::{Lppm, PlanarLaplace};
use priste_markov::{gaussian_kernel_chain, Homogeneous};
use priste_obs::{json, Registry};
use priste_online::{DurableOptions, OnlineConfig, SessionManager, UserId};
use priste_serve::{LoadMode, LoadgenOptions, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn unique_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "priste-serve-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A 3×3 enforcing commuter service, optionally durable, plus the
/// registry its metrics land in.
fn build_server(
    durable: Option<&Path>,
    config: ServerConfig,
) -> (Server<Arc<Homogeneous>>, Registry) {
    let grid = GridMap::new(3, 3, 1.0).unwrap();
    let m = grid.num_cells();
    let chain = gaussian_kernel_chain(&grid, 1.0).unwrap();
    let provider = Arc::new(Homogeneous::new(chain));
    let mut service = SessionManager::new(
        provider,
        OnlineConfig {
            epsilon: 0.8,
            num_shards: 2,
            linger: 2,
            budget: 1e6,
        },
    )
    .unwrap();
    service
        .register_template(
            Presence::new(Region::from_one_based_range(m, 1, 3).unwrap(), 2, 4)
                .unwrap()
                .into(),
        )
        .unwrap();
    service.add_user(UserId(1), Vector::uniform(m)).unwrap();
    service.attach_event(UserId(1), 0).unwrap();
    if let Some(dir) = durable {
        service
            .make_durable(
                dir,
                DurableOptions {
                    fsync: false,
                    snapshot_every: 0,
                },
            )
            .unwrap();
    }
    let mechanism = PlanarLaplace::new(grid.clone(), 3.0).unwrap();
    service
        .enable_enforcement(
            Box::new(mechanism.clone()),
            GuardConfig {
                target_epsilon: 0.8,
                ..GuardConfig::default()
            },
        )
        .unwrap();
    let registry = Registry::new();
    service.observe(&registry);
    let server = Server::start(
        service,
        Some(Box::new(mechanism) as Box<dyn Lppm>),
        registry.clone(),
        config,
        "127.0.0.1:0",
    )
    .unwrap();
    (server, registry)
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        workers: 4,
        poll_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    }
}

/// Tiny blocking test client over one keep-alive connection.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        Client {
            stream,
            buf: Vec::new(),
        }
    }

    fn send_raw(&mut self, wire: &str) {
        self.stream.write_all(wire.as_bytes()).unwrap();
    }

    /// Reads one response: (status, head, body).
    fn read_response(&mut self) -> (u16, String, String) {
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk).expect("read response");
            assert!(n > 0, "server closed mid-response");
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(self.buf[..head_end].to_vec()).unwrap();
        self.buf.drain(..head_end + 4);
        let status: u16 = head
            .lines()
            .next()
            .unwrap()
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.trim()
                    .eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().unwrap())
            })
            .unwrap_or(0);
        while self.buf.len() < length {
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk).expect("read body");
            assert!(n > 0, "server closed mid-body");
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8(self.buf.drain(..length).collect()).unwrap();
        (status, head, body)
    }

    fn get(&mut self, path: &str) -> (u16, String, String) {
        self.send_raw(&format!("GET {path} HTTP/1.1\r\nhost: t\r\n\r\n"));
        self.read_response()
    }

    fn post(&mut self, path: &str, body: &str) -> (u16, String, String) {
        self.send_raw(&format!(
            "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ));
        self.read_response()
    }
}

#[test]
fn serves_the_protocol_and_the_observability_plane() {
    let (server, _registry) = build_server(None, quick_config());
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr);

    let (status, _, body) = client.get("/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");
    let (status, _, body) = client.get("/readyz");
    assert_eq!(status, 200);
    assert_eq!(body, "ready\n");

    let (status, _, body) = client.get("/v1/config");
    assert_eq!(status, 200);
    let doc = json::parse(&body).unwrap();
    assert_eq!(doc.get("num_cells").and_then(|j| j.as_u64()), Some(9));
    assert_eq!(doc.get("enforcing").and_then(|j| j.as_bool()), Some(true));

    // Ingest auto-registers user 7 and returns the audit report.
    let (status, head, body) = client.post("/v1/ingest", "{\"user\": 7, \"observed\": 4}");
    assert_eq!(status, 200, "body: {body}");
    assert!(
        head.to_ascii_lowercase().contains("x-request-id:"),
        "head: {head}"
    );
    let doc = json::parse(&body).unwrap();
    assert_eq!(doc.get("user").and_then(|j| j.as_u64()), Some(7));
    assert_eq!(doc.get("t").and_then(|j| j.as_u64()), Some(1));
    assert!(doc.get("windows").and_then(|j| j.as_array()).is_some());

    // A client-supplied request id is echoed back verbatim.
    client.send_raw(
        "POST /v1/ingest HTTP/1.1\r\nhost: t\r\nx-request-id: trace-me\r\n\
         content-length: 26\r\n\r\n{\"user\": 7, \"observed\": 2}",
    );
    let (status, head, _) = client.read_response();
    assert_eq!(status, 200);
    assert!(head.contains("x-request-id: trace-me"), "head: {head}");

    // Enforcing release for the pre-registered user.
    let (status, _, body) = client.post("/v1/release", "{\"user\": 1, \"true_location\": 0}");
    assert_eq!(status, 200, "body: {body}");
    let doc = json::parse(&body).unwrap();
    let outcome = doc.get("outcome").and_then(|j| j.as_str()).unwrap();
    assert!(outcome == "released" || outcome == "suppressed");
    assert!(doc.get("report").and_then(|j| j.get("user")).is_some());

    // Spend reflects both users' ledgers.
    let (status, _, body) = client.get("/v1/users/7/spend");
    assert_eq!(status, 200);
    let doc = json::parse(&body).unwrap();
    assert_eq!(doc.get("observed").and_then(|j| j.as_u64()), Some(2));
    let (status, _, _) = client.get("/v1/users/999/spend");
    assert_eq!(status, 404);

    // The metrics plane exposes server + service series together.
    let (status, _, text) = client.get("/metrics");
    assert_eq!(status, 200);
    for series in [
        "# TYPE serve_request_seconds histogram",
        "serve_request_seconds_bucket{route=\"/v1/ingest\",status=\"200\",le=",
        "serve_connections_total 1",
        "serve_requests_in_flight",
        "priste_build_info{version=\"0.1.0\"} 1",
        "process_uptime_seconds",
        "span_http_request_seconds_count",
        "online_sessions",
    ] {
        assert!(text.contains(series), "missing {series:?} in:\n{text}");
    }

    server.drain_handle().drain();
    let summary = server.wait().unwrap();
    assert_eq!(summary.connections, 1);
    assert_eq!(summary.requests, 9);
    assert_eq!(summary.errors, 1); // the 404 spend probe
    assert!(!summary.checkpointed);
}

#[test]
fn concurrent_clients_each_get_coherent_sessions() {
    let (server, _registry) = build_server(None, quick_config());
    let addr = server.local_addr().to_string();
    let per_client = 25u64;
    let clients: Vec<_> = (0..4u64)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr);
                for t in 1..=per_client {
                    let (status, _, body) = client.post(
                        "/v1/ingest",
                        &format!("{{\"user\": {}, \"observed\": {}}}", 100 + c, t % 9),
                    );
                    assert_eq!(status, 200, "client {c} step {t}: {body}");
                    let doc = json::parse(&body).unwrap();
                    // Per-user timestep advances monotonically: no
                    // cross-talk between concurrent sessions.
                    assert_eq!(doc.get("t").and_then(|j| j.as_u64()), Some(t));
                }
            })
        })
        .collect();
    for client in clients {
        client.join().unwrap();
    }
    server.drain_handle().drain();
    let summary = server.wait().unwrap();
    assert_eq!(summary.requests, 4 * per_client);
    assert_eq!(summary.errors, 0);
}

#[test]
fn malformed_traffic_gets_4xx_and_bumps_error_counters() {
    let (server, registry) = build_server(None, quick_config());
    let addr = server.local_addr().to_string();

    // Wire-level garbage: 400 and a closed connection.
    let mut garbage = Client::connect(&addr);
    garbage.send_raw("THIS IS NOT HTTP\r\n\r\n");
    let (status, _, _) = garbage.read_response();
    assert_eq!(status, 400);

    let mut client = Client::connect(&addr);
    let (status, _, _) = client.post("/v1/ingest", "{\"user\": 1}");
    assert_eq!(status, 400); // neither observed nor column
    let (status, _, _) = client.post("/v1/ingest", "not json");
    assert_eq!(status, 400);
    let (status, _, _) = client.post("/v1/ingest", "{\"user\": 1, \"observed\": 99}");
    assert_eq!(status, 400); // outside the 9-cell domain
    let (status, _, _) = client.get("/no/such/route");
    assert_eq!(status, 404);
    let (status, _, body) = client.get("/v1/ingest");
    assert_eq!(status, 405, "body: {body}");

    assert_eq!(
        registry
            .counter("serve_errors_total{route=\"malformed\"}")
            .get(),
        1
    );
    assert_eq!(
        registry
            .counter("serve_errors_total{route=\"/v1/ingest\"}")
            .get(),
        4
    );
    server.drain_handle().drain();
    let summary = server.wait().unwrap();
    assert_eq!(summary.errors, 6);
}

#[test]
fn graceful_drain_checkpoints_and_snapshots_metrics() {
    let dir = unique_dir("drain");
    let snapshot = unique_dir("snap").with_extension("json");
    let config = ServerConfig {
        metrics_snapshot: Some(snapshot.clone()),
        ..quick_config()
    };
    let (server, _registry) = build_server(Some(&dir), config);
    let addr = server.local_addr().to_string();

    let mut client = Client::connect(&addr);
    for t in 0..3 {
        let (status, _, _) = client.post(
            "/v1/release",
            &format!("{{\"user\": 1, \"true_location\": {t}}}"),
        );
        assert_eq!(status, 200);
    }
    // An idle keep-alive connection must not stall the drain.
    let idle = Client::connect(&addr);

    let handle = server.drain_handle();
    assert!(!handle.is_draining());
    handle.drain();
    let summary = server.wait().unwrap();
    assert_eq!(summary.requests, 3);
    assert!(
        summary.checkpointed,
        "durable service must checkpoint on drain"
    );
    drop(idle);

    // The drain wrote a parseable metrics snapshot with the serve series.
    let text = std::fs::read_to_string(&snapshot).unwrap();
    let doc = json::parse(&text).unwrap();
    assert_eq!(
        doc.get("schema").and_then(|j| j.as_str()),
        Some("priste-metrics/1")
    );
    let histograms = doc.get("histograms").and_then(|j| j.as_object()).unwrap();
    assert!(
        histograms
            .keys()
            .any(|k| k.starts_with("serve_request_seconds{")),
        "snapshot histograms: {:?}",
        histograms.keys().collect::<Vec<_>>()
    );
    // And the durable directory holds a fresh snapshot to recover from.
    assert!(dir.join("shard-0").exists() || std::fs::read_dir(&dir).unwrap().count() > 0);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&snapshot);
}

#[test]
fn loadgen_drives_the_server_and_reports_quantiles() {
    let (server, _registry) = build_server(None, quick_config());
    let addr = server.local_addr().to_string();
    let report = priste_serve::loadgen::run(&LoadgenOptions {
        addr,
        requests: 300,
        connections: 3,
        users: 10,
        mode: LoadMode::Mixed,
        seed: 9,
        rate: None,
    })
    .unwrap();
    assert_eq!(report.requests, 300);
    assert_eq!(report.errors, 0);
    assert!(report.elapsed_seconds > 0.0);
    assert!(report.throughput() > 0.0);
    let p50 = report.quantile_ms(0.5);
    let p99 = report.quantile_ms(0.99);
    assert!(p50 > 0.0, "p50 {p50}");
    assert!(p99 >= p50, "p50 {p50} p99 {p99}");
    server.drain_handle().drain();
    let summary = server.wait().unwrap();
    // The config probe plus every measured request.
    assert_eq!(summary.requests, 301);
    assert_eq!(summary.errors, 0);
}
