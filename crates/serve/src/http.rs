//! Minimal HTTP/1.1 wire handling: a buffered request reader and a
//! response writer, both hand-rolled over [`std::io`].
//!
//! The reader is deliberately small — method/path/version request line,
//! `name: value` headers, and a `content-length`-delimited body are the
//! whole grammar (no chunked transfer, no continuation lines). It is
//! written against any [`Read`] source so the parser is unit-testable
//! without sockets, and it distinguishes the conditions the server's
//! keep-alive loop cares about: a clean close between requests, an idle
//! timeout (poll the drain flag and keep waiting), and a malformed
//! request (answer 400 and hang up).

use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Upper bound on the request line + headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// How long a request may dangle half-transmitted before the connection
/// is declared malformed. Bounds drain time: an in-flight request is
/// flushed, a trickling one is not waited on forever.
pub const REQUEST_DEADLINE: Duration = Duration::from_secs(5);

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, e.g. `/v1/ingest`.
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The `content-length`-delimited body (empty without the header).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value under `name` (ASCII case-insensitive lookup —
    /// names are stored lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for the connection to close after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why [`RequestReader::read_request`] returned without a request.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection between requests — not an error.
    Closed,
    /// The read timed out with no request bytes pending: re-check the
    /// drain flag and call again.
    Idle,
    /// A protocol violation; the message is safe to echo in a 400 body.
    Malformed(String),
    /// Head or body exceeded the configured limits (413).
    TooLarge,
    /// A transport failure.
    Io(io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Closed => write!(f, "connection closed"),
            ReadError::Idle => write!(f, "idle timeout"),
            ReadError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            ReadError::TooLarge => write!(f, "request too large"),
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Buffered HTTP/1.1 request reader over any [`Read`] source; leftover
/// bytes (pipelined requests) carry over between calls.
#[derive(Debug)]
pub struct RequestReader<R> {
    source: R,
    buf: Vec<u8>,
    max_body: usize,
}

impl<R: Read> RequestReader<R> {
    /// A reader rejecting bodies larger than `max_body` bytes.
    pub fn new(source: R, max_body: usize) -> Self {
        RequestReader {
            source,
            buf: Vec::new(),
            max_body,
        }
    }

    fn fill(&mut self) -> io::Result<usize> {
        let mut chunk = [0u8; 4096];
        let n = self.source.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Position just past the blank line ending the head, plus the head
    /// length itself, tolerating bare-LF line endings.
    fn head_end(buf: &[u8]) -> Option<(usize, usize)> {
        for i in 0..buf.len().saturating_sub(1) {
            if buf[i] == b'\n' {
                if buf[i + 1] == b'\n' {
                    return Some((i, i + 2));
                }
                if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
                    return Some((i, i + 3));
                }
            }
        }
        None
    }

    /// Blocks until `ready(buf)` returns a value, refilling from the
    /// source. `deadline` starts counting once any request byte exists.
    fn pump<T>(
        &mut self,
        started: &mut Option<Instant>,
        mut ready: impl FnMut(&[u8]) -> Option<T>,
        over_limit: impl Fn(&[u8]) -> bool,
    ) -> Result<T, ReadError> {
        loop {
            if let Some(found) = ready(&self.buf) {
                return Ok(found);
            }
            if over_limit(&self.buf) {
                return Err(ReadError::TooLarge);
            }
            if let Some(t0) = *started {
                if t0.elapsed() > REQUEST_DEADLINE {
                    return Err(ReadError::Malformed(
                        "request not completed within the deadline".into(),
                    ));
                }
            }
            match self.fill() {
                Ok(0) => {
                    return Err(if self.buf.is_empty() && started.is_none() {
                        ReadError::Closed
                    } else {
                        ReadError::Malformed("connection closed mid-request".into())
                    });
                }
                Ok(_) => {
                    started.get_or_insert_with(Instant::now);
                }
                Err(e) if is_timeout(&e) => {
                    if started.is_none() && self.buf.is_empty() {
                        return Err(ReadError::Idle);
                    }
                    // Mid-request: keep waiting until the deadline.
                }
                Err(e) => return Err(ReadError::Io(e)),
            }
        }
    }

    /// Reads one request. [`ReadError::Idle`] means no bytes arrived
    /// within the source's read timeout — poll your shutdown condition
    /// and call again; buffered partial state is preserved.
    pub fn read_request(&mut self) -> Result<Request, ReadError> {
        let mut started = (!self.buf.is_empty()).then(Instant::now);
        let (head_len, consumed) = self.pump(&mut started, Self::head_end, |buf| {
            buf.len() > MAX_HEAD_BYTES
        })?;
        let head = self.buf[..head_len].to_vec();
        self.buf.drain(..consumed);
        let (method, path, headers) = parse_head(&head)?;

        let length = match headers.iter().find(|(n, _)| n == "content-length") {
            None => 0,
            Some((_, v)) => v
                .parse::<usize>()
                .map_err(|_| ReadError::Malformed(format!("bad content-length: {v:?}")))?,
        };
        if length > self.max_body {
            return Err(ReadError::TooLarge);
        }
        started.get_or_insert_with(Instant::now);
        self.pump(
            &mut started,
            |buf| (buf.len() >= length).then_some(()),
            |_| false,
        )?;
        let body = self.buf.drain(..length).collect();
        Ok(Request {
            method,
            path,
            headers,
            body,
        })
    }
}

#[allow(clippy::type_complexity)]
fn parse_head(head: &[u8]) -> Result<(String, String, Vec<(String, String)>), ReadError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| ReadError::Malformed("head is not valid UTF-8".into()))?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ReadError::Malformed(format!(
            "bad request line: {request_line:?}"
        )));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "bad request line: {request_line:?}"
        )));
    }
    let mut headers = Vec::new();
    for line in lines.filter(|l| !l.is_empty()) {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header line: {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    Ok((method.to_owned(), path.to_owned(), headers))
}

/// One response, written with an explicit `content-length` (the only
/// framing the loadgen-side reader understands too).
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `content-type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Echoed `x-request-id`, when the handler assigned one.
    pub request_id: Option<String>,
    /// Emitted as a `retry-after` header (seconds) — set on 503s where
    /// the client should back off rather than hammer a down worker.
    pub retry_after: Option<u64>,
    /// Whether to advertise (and then perform) `connection: close`.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            request_id: None,
            retry_after: None,
            close: false,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.as_bytes().to_vec(),
            request_id: None,
            retry_after: None,
            close: false,
        }
    }
}

/// Reason phrase for the status codes the server emits.
pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Serializes `resp` onto `w` (status line, headers, blank line, body).
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len()
    );
    if let Some(id) = &resp.request_id {
        head.push_str("x-request-id: ");
        head.push_str(id);
        head.push_str("\r\n");
    }
    if let Some(seconds) = resp.retry_after {
        let _ = write!(head, "retry-after: {seconds}\r\n");
    }
    head.push_str(if resp.close {
        "connection: close\r\n\r\n"
    } else {
        "connection: keep-alive\r\n\r\n"
    });
    w.write_all(head.as_bytes())?;
    w.write_all(&resp.body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read_one(wire: &str) -> Result<Request, ReadError> {
        RequestReader::new(Cursor::new(wire.as_bytes().to_vec()), 1024).read_request()
    }

    #[test]
    fn parses_a_post_with_body_and_headers() {
        let req = read_one(
            "POST /v1/ingest HTTP/1.1\r\nHost: x\r\nX-Request-Id: abc\r\n\
             Content-Length: 11\r\n\r\n{\"user\": 3}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/ingest");
        assert_eq!(req.header("x-request-id"), Some("abc"));
        assert_eq!(req.body, b"{\"user\": 3}");
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_bare_lf_and_keepalive_pipelining() {
        let wire = "GET /healthz HTTP/1.1\n\nGET /readyz HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = RequestReader::new(Cursor::new(wire.as_bytes().to_vec()), 1024);
        let first = reader.read_request().unwrap();
        assert_eq!(first.path, "/healthz");
        let second = reader.read_request().unwrap();
        assert_eq!(second.path, "/readyz");
        assert!(second.wants_close());
        assert!(matches!(reader.read_request(), Err(ReadError::Closed)));
    }

    #[test]
    fn rejects_garbage_and_oversize() {
        assert!(matches!(
            read_one("NOT A REQUEST\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            read_one("GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            read_one("POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(ReadError::TooLarge)
        ));
        // EOF mid-body is malformed, not a clean close.
        assert!(matches!(
            read_one("POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab"),
            Err(ReadError::Malformed(_))
        ));
    }

    /// A source that yields `WouldBlock` forever — the idle keep-alive
    /// connection.
    struct AlwaysBlocked;
    impl Read for AlwaysBlocked {
        fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
            Err(io::Error::from(io::ErrorKind::WouldBlock))
        }
    }

    #[test]
    fn idle_timeout_is_distinguished_from_close() {
        let mut reader = RequestReader::new(AlwaysBlocked, 1024);
        assert!(matches!(reader.read_request(), Err(ReadError::Idle)));
        // Still usable afterwards.
        assert!(matches!(reader.read_request(), Err(ReadError::Idle)));
    }

    #[test]
    fn retry_after_is_emitted_when_set() {
        let mut out = Vec::new();
        let mut resp = Response::json(503, "{\"error\":\"down\"}".to_owned());
        resp.retry_after = Some(2);
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("retry-after: 2\r\n"), "{text}");
    }

    #[test]
    fn response_serializes_with_length_and_request_id() {
        let mut out = Vec::new();
        let mut resp = Response::json(200, "{\"ok\":true}".to_owned());
        resp.request_id = Some("req-7".to_owned());
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"), "{text}");
        assert!(text.contains("x-request-id: req-7\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"), "{text}");
    }
}
