//! SIGINT/SIGTERM → drain flag, without a `libc` crate dependency.
//!
//! `std` already links the platform C library, so on Unix we can declare
//! `signal(2)` ourselves and point it at a handler that does the only
//! async-signal-safe thing a drain needs: store a relaxed atomic flag.
//! The accept loop polls [`triggered`] and starts a graceful drain when
//! it flips. On non-Unix targets installation is a no-op and the flag
//! simply never fires.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has been observed since [`install`].
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::Relaxed)
}

/// Test hook: raise or clear the flag in-process.
pub fn set_triggered(v: bool) {
    TRIGGERED.store(v, Ordering::Relaxed);
}

#[cfg(unix)]
mod imp {
    use super::TRIGGERED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// `signal(2)` from the C library `std` already links.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        /// `kill(2)`, likewise already linked via `std`.
        fn kill(pid: i32, sig: i32) -> i32;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: one relaxed atomic store.
        TRIGGERED.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        // SAFETY: `signal` is the libc prototype; the handler performs a
        // single atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn terminate(pid: u32) -> bool {
        // SAFETY: `kill` is the libc prototype; sending SIGTERM to a
        // child pid is exactly the graceful-drain contract the daemons
        // implement.
        unsafe { kill(pid as i32, SIGTERM) == 0 }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}

    pub fn terminate(_pid: u32) -> bool {
        false
    }
}

/// Installs the SIGINT/SIGTERM handlers (no-op off Unix). Idempotent.
pub fn install() {
    imp::install();
}

/// Sends SIGTERM to `pid` — the graceful-drain request a supervisor
/// (e.g. the CLI `cluster` spawn mode) delivers to its worker children.
/// Returns whether the signal was delivered; always `false` off Unix.
pub fn terminate(pid: u32) -> bool {
    imp::terminate(pid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_is_settable() {
        install();
        set_triggered(false);
        assert!(!triggered());
        set_triggered(true);
        assert!(triggered());
        set_triggered(false);
    }
}
