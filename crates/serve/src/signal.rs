//! SIGINT/SIGTERM → drain flag, without a `libc` crate dependency.
//!
//! `std` already links the platform C library, so on Unix we can declare
//! `signal(2)` ourselves and point it at a handler that does the only
//! async-signal-safe thing a drain needs: store a relaxed atomic flag.
//! The accept loop polls [`triggered`] and starts a graceful drain when
//! it flips. On non-Unix targets installation is a no-op and the flag
//! simply never fires.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has been observed since [`install`].
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::Relaxed)
}

/// Test hook: raise or clear the flag in-process.
pub fn set_triggered(v: bool) {
    TRIGGERED.store(v, Ordering::Relaxed);
}

#[cfg(unix)]
mod imp {
    use super::TRIGGERED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// `signal(2)` from the C library `std` already links.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: one relaxed atomic store.
        TRIGGERED.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        // SAFETY: `signal` is the libc prototype; the handler performs a
        // single atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers (no-op off Unix). Idempotent.
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_is_settable() {
        install();
        set_triggered(false);
        assert!(!triggered());
        set_triggered(true);
        assert!(triggered());
        set_triggered(false);
    }
}
