//! Closed- and open-loop load generator for the daemon.
//!
//! Closed-loop (the default) means each connection issues its next
//! request only after the previous response arrives, so the offered
//! load self-limits to what the server sustains and the recorded
//! latency distribution is a service-time measurement, not a queueing
//! artifact. Latencies land in a shared thread-safe [`Histogram`] and
//! are reported through the same interpolated [`Histogram::quantile`]
//! estimator `/metrics` uses.
//!
//! Open-loop ([`LoadgenOptions::rate`]) instead schedules request *k*
//! at `start + k/rate` on an absolute timeline: a connection that falls
//! behind does not sleep, so transient stalls are corrected by catching
//! up rather than silently shifting every later request (coordinated
//! omission). The report then carries the offered rate alongside the
//! achieved one, and the latency quantiles are genuine
//! latency-under-load measurements that include queueing delay.

use crate::error::{Result, ServeError};
use priste_obs::json::{self, Json};
use priste_obs::Histogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What each synthetic request does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Ingest only if the server is not enforcing, otherwise alternate —
    /// resolved from `/v1/config` before traffic starts.
    Auto,
    /// `POST /v1/ingest` with an `"observed"` cell.
    Ingest,
    /// `POST /v1/release` with a `"true_location"` cell.
    Release,
    /// Alternate ingest / release per request.
    Mixed,
}

impl LoadMode {
    /// Parses a CLI spelling.
    pub fn parse(s: &str) -> Option<LoadMode> {
        match s {
            "auto" => Some(LoadMode::Auto),
            "ingest" => Some(LoadMode::Ingest),
            "release" => Some(LoadMode::Release),
            "mixed" => Some(LoadMode::Mixed),
            _ => None,
        }
    }
}

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Server address, e.g. `127.0.0.1:8750`.
    pub addr: String,
    /// Total requests across all connections.
    pub requests: u64,
    /// Concurrent keep-alive connections (keep at or below the server's
    /// worker count — each server worker serves one connection at a
    /// time).
    pub connections: usize,
    /// Synthetic user population (requests round-robin over user ids).
    pub users: u64,
    /// Request mix.
    pub mode: LoadMode,
    /// Seed for the per-connection cell streams.
    pub seed: u64,
    /// Open-loop target rate in requests/second across all connections;
    /// `None` keeps the closed-loop behaviour.
    pub rate: Option<f64>,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            addr: "127.0.0.1:8750".to_owned(),
            requests: 1000,
            connections: 4,
            users: 50,
            mode: LoadMode::Auto,
            seed: 42,
            rate: None,
        }
    }
}

/// Client-side measurement of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests completed (including error responses).
    pub requests: u64,
    /// Responses with a non-200 status, plus transport failures.
    pub errors: u64,
    /// Wall-clock duration of the measured window.
    pub elapsed_seconds: f64,
    /// The open-loop target rate the run was scheduled at, when one was
    /// set; compare with [`LoadgenReport::throughput`] (the achieved
    /// rate) to see whether the server kept up.
    pub offered_rate: Option<f64>,
    /// Client-observed request latencies in seconds.
    pub latency: Histogram,
}

impl LoadgenReport {
    /// Interpolated latency quantile in milliseconds.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.latency.quantile(q) * 1e3
    }

    /// Completed requests per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_seconds > 0.0 {
            self.requests as f64 / self.elapsed_seconds
        } else {
            0.0
        }
    }
}

/// Minimal response reader: status line, headers (for `content-length`),
/// body. The server always sends explicit lengths, so this is the whole
/// grammar a client needs.
fn read_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Result<(u16, Vec<u8>)> {
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ServeError::Protocol("server closed mid-response".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    buf.drain(..head_end + 4);
    let mut lines = head.lines();
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ServeError::Protocol(format!("bad status line: {status_line:?}")))?;
    let mut length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                length = value.trim().parse().map_err(|_| {
                    ServeError::Protocol(format!("bad content-length: {:?}", value.trim()))
                })?;
            }
        }
    }
    while buf.len() < length {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ServeError::Protocol("server closed mid-body".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = buf.drain(..length).collect();
    Ok((status, body))
}

fn connect(addr: &str) -> Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// One GET, used for the config probe.
fn get_json(addr: &str, path: &str) -> Result<Json> {
    let mut stream = connect(addr)?;
    let request = format!("GET {path} HTTP/1.1\r\nhost: priste\r\nconnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut buf = Vec::new();
    let (status, body) = read_response(&mut stream, &mut buf)?;
    if status != 200 {
        return Err(ServeError::Protocol(format!("{path} answered {status}")));
    }
    let text = String::from_utf8_lossy(&body).into_owned();
    json::parse(&text).map_err(|e| ServeError::Protocol(format!("{path} body: {e}")))
}

fn post_request(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nhost: priste\r\ncontent-type: application/json\r\n\
         content-length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// Drives `opts.requests` closed-loop requests against a live server
/// and returns the client-side measurement.
///
/// # Errors
/// Connection or protocol failures against `/v1/config`; individual
/// request failures during the run are counted, not fatal.
pub fn run(opts: &LoadgenOptions) -> Result<LoadgenReport> {
    let config = get_json(&opts.addr, "/v1/config")?;
    let num_cells = config
        .get("num_cells")
        .and_then(|j| j.as_u64())
        .ok_or_else(|| ServeError::Protocol("config missing num_cells".into()))?
        as usize;
    if num_cells == 0 {
        return Err(ServeError::Protocol("server has an empty domain".into()));
    }
    let enforcing = config
        .get("enforcing")
        .and_then(|j| j.as_bool())
        .unwrap_or(false);
    let mode = match opts.mode {
        LoadMode::Auto => {
            if enforcing {
                LoadMode::Mixed
            } else {
                LoadMode::Ingest
            }
        }
        other => other,
    };

    let latency = Histogram::new();
    let issued = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let workers: Vec<_> = (0..opts.connections.max(1))
        .map(|w| {
            let opts = opts.clone();
            let latency = latency.clone();
            let issued = Arc::clone(&issued);
            let errors = Arc::clone(&errors);
            std::thread::spawn(move || {
                connection_loop(
                    &opts, w as u64, num_cells, mode, started, &latency, &issued, &errors,
                )
            })
        })
        .collect();
    let mut first_failure = None;
    for worker in workers {
        if let Ok(Err(e)) = worker.join() {
            first_failure.get_or_insert(e);
        }
    }
    let elapsed_seconds = started.elapsed().as_secs_f64();
    // A run where no request completed is a failure; partial runs report.
    if latency.count() == 0 {
        if let Some(e) = first_failure {
            return Err(e);
        }
    }
    Ok(LoadgenReport {
        requests: latency.count(),
        errors: errors.load(Ordering::Relaxed),
        elapsed_seconds,
        offered_rate: opts.rate,
        latency,
    })
}

#[allow(clippy::too_many_arguments)]
fn connection_loop(
    opts: &LoadgenOptions,
    worker: u64,
    num_cells: usize,
    mode: LoadMode,
    started: Instant,
    latency: &Histogram,
    issued: &AtomicU64,
    errors: &AtomicU64,
) -> Result<()> {
    let mut rng = StdRng::seed_from_u64(opts.seed.wrapping_add(worker));
    let mut stream = connect(&opts.addr)?;
    let mut buf = Vec::new();
    loop {
        let i = issued.fetch_add(1, Ordering::Relaxed);
        if i >= opts.requests {
            return Ok(());
        }
        // Open loop: request `i` is due at `started + i/rate` on the
        // absolute schedule. Sleeping only when ahead means a connection
        // that fell behind catches up instead of dragging the offered
        // rate down for the rest of the run.
        if let Some(rate) = opts.rate.filter(|r| *r > 0.0) {
            let due = Duration::from_secs_f64(i as f64 / rate);
            let elapsed = started.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
        }
        let user = i % opts.users.max(1);
        let cell = rng.gen_range(0..num_cells);
        let release_turn =
            matches!(mode, LoadMode::Release) || (matches!(mode, LoadMode::Mixed) && i % 2 == 1);
        let wire = if release_turn {
            post_request(
                "/v1/release",
                &format!("{{\"user\": {user}, \"true_location\": {cell}}}"),
            )
        } else {
            post_request(
                "/v1/ingest",
                &format!("{{\"user\": {user}, \"observed\": {cell}}}"),
            )
        };
        let t0 = Instant::now();
        stream.write_all(wire.as_bytes())?;
        let (status, _body) = read_response(&mut stream, &mut buf)?;
        latency.observe(t0.elapsed().as_secs_f64());
        if status != 200 {
            errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

// Integration coverage for `run` lives in the crate's `http_e2e` test,
// which drives it against a real in-process server; `proto`/`http` unit
// tests cover the wire pieces.
