//! `priste_serve`: the PriSTE streaming service as a network daemon.
//!
//! A dependency-free HTTP/1.1 server (hand-rolled on [`std::net`], same
//! zero-dependency discipline as `priste_obs`) that fronts one
//! [`SessionManager`](priste_online::SessionManager) and mounts a live
//! observability plane on the registry the service already records
//! into:
//!
//! | Route | Purpose |
//! |---|---|
//! | `POST /v1/ingest` | Feed one observation (`{"user", "observed"}` or `{"user", "column"}`), get the audit [`UserReport`](priste_online::UserReport) |
//! | `POST /v1/release` | Enforcing-mode guarded release (`{"user", "true_location"}`) |
//! | `GET /v1/users/:id/spend` | A user's budget-ledger position |
//! | `GET /v1/config` | Domain size, ε, enforcement state — what a client needs to drive traffic |
//! | `GET /metrics` | Prometheus text exposition of the shared registry |
//! | `GET /healthz` | Liveness (always 200 while the process serves) |
//! | `GET /readyz` | Readiness (503 once draining) |
//!
//! Every request runs under a `priste_obs` span (`span_http_request_seconds`)
//! and lands in `serve_request_seconds{route,status}`; the `x-request-id`
//! header is echoed (or assigned) for correlation. SIGINT/SIGTERM — or
//! [`DrainHandle::drain`] — trigger a graceful drain: stop accepting,
//! answer in-flight requests, write a final durable checkpoint and
//! metrics snapshot.
//!
//! [`loadgen`] is the matching load-generation client: closed-loop by
//! default (each connection waits for its response, so latency is a
//! service-time measurement), or open-loop at a target `--rate` with an
//! absolute schedule (so latency-under-load includes queueing delay and
//! the report carries offered vs achieved rate). Either way it drives
//! synthetic commuter traffic over keep-alive connections and reports
//! p50/p90/p99 and throughput from client-side histograms.
//!
//! ```no_run
//! use priste_markov::{Homogeneous, MarkovModel};
//! use priste_obs::Registry;
//! use priste_online::{OnlineConfig, SessionManager};
//! use priste_serve::{Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let chain = Arc::new(Homogeneous::new(MarkovModel::paper_example()));
//! let mut service = SessionManager::new(chain, OnlineConfig::default()).unwrap();
//! let registry = Registry::new();
//! service.observe(&registry);
//! let server = Server::start(
//!     service,
//!     None,
//!     registry,
//!     ServerConfig::default(),
//!     "127.0.0.1:0",
//! )
//! .unwrap();
//! println!("listening on {}", server.local_addr());
//! let summary = server.wait().unwrap(); // blocks until drained
//! println!("served {} requests", summary.requests);
//! ```

pub mod error;
pub mod http;
pub mod loadgen;
pub mod proto;
pub mod server;
pub mod signal;

pub use error::{Result, ServeError};
pub use loadgen::{LoadMode, LoadgenOptions, LoadgenReport};
pub use server::{DrainHandle, DrainSummary, Server, ServerConfig};
