//! The daemon's JSON request/response protocol.
//!
//! Requests are decoded with the same recursive-descent parser
//! ([`priste_obs::json`]) the metrics artifacts use; responses are
//! hand-serialized strings, matching the zero-dependency discipline of
//! the exporters. Cell indices on the wire are **0-based** (the
//! [`priste_geo::CellId`] tuple value), and non-finite numbers serialize as `null`
//! exactly like the metrics JSON schema.

use priste_calibrate::Decision;
use priste_markov::TransitionProvider;
use priste_obs::json::{self, Json};
use priste_online::{EnforcedRelease, Session, UserReport, Verdict};
use std::fmt::Write;

/// JSON has no Inf/NaN literals; map them to `null` (the convention the
/// metrics exporter already uses).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Body of `POST /v1/ingest`: one observation for one user, either as a
/// released cell (the server derives the emission column from its
/// mechanism) or as an explicit likelihood column.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestRequest {
    /// Target user id.
    pub user: u64,
    /// 0-based observed cell (`{"user": 3, "observed": 7}`).
    pub observed: Option<usize>,
    /// Explicit emission column (`{"user": 3, "column": [0.1, ...]}`).
    pub column: Option<Vec<f64>>,
}

/// Body of `POST /v1/release`: the user's true location, to be
/// perturbed and certified by the enforcing guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReleaseRequest {
    /// Target user id.
    pub user: u64,
    /// 0-based true cell.
    pub true_location: usize,
}

fn parse_body(body: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_owned())?;
    json::parse(text).map_err(|e| format!("body is not valid JSON: {e}"))
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(|j| j.as_u64())
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

/// Decodes an ingest body. Exactly one of `observed` / `column` must be
/// present.
pub fn decode_ingest(body: &[u8]) -> Result<IngestRequest, String> {
    let doc = parse_body(body)?;
    let user = field_u64(&doc, "user")?;
    let observed = match doc.get("observed") {
        None => None,
        Some(j) => Some(
            j.as_u64()
                .ok_or_else(|| "field \"observed\" must be a non-negative integer".to_owned())?
                as usize,
        ),
    };
    let column = match doc.get("column") {
        None => None,
        Some(j) => {
            let items = j
                .as_array()
                .ok_or_else(|| "field \"column\" must be an array of numbers".to_owned())?;
            let mut col = Vec::with_capacity(items.len());
            for item in items {
                col.push(
                    item.as_f64()
                        .ok_or_else(|| "field \"column\" must be an array of numbers".to_owned())?,
                );
            }
            Some(col)
        }
    };
    match (&observed, &column) {
        (None, None) => Err("provide exactly one of \"observed\" or \"column\"".to_owned()),
        (Some(_), Some(_)) => {
            Err("provide exactly one of \"observed\" or \"column\", not both".to_owned())
        }
        _ => Ok(IngestRequest {
            user,
            observed,
            column,
        }),
    }
}

/// Decodes a release body.
pub fn decode_release(body: &[u8]) -> Result<ReleaseRequest, String> {
    let doc = parse_body(body)?;
    Ok(ReleaseRequest {
        user: field_u64(&doc, "user")?,
        true_location: field_u64(&doc, "true_location")? as usize,
    })
}

/// `{"error": "..."}` body for non-200 responses.
pub fn encode_error(message: &str) -> String {
    format!("{{\"error\": {}}}", json_string(message))
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn verdict_str(v: Verdict) -> &'static str {
    match v {
        Verdict::Certified => "certified",
        Verdict::Violated => "violated",
        Verdict::ModelMismatch => "model_mismatch",
    }
}

/// Serializes a [`UserReport`] (the ingest response body).
pub fn encode_report(report: &UserReport) -> String {
    let windows: Vec<String> = report
        .windows
        .iter()
        .map(|w| {
            format!(
                "{{\"template\": {}, \"window_t\": {}, \"loss\": {}, \"posterior\": {}, \
                 \"verdict\": \"{}\"}}",
                w.template,
                w.window_t,
                num(w.loss),
                num(w.posterior),
                verdict_str(w.verdict)
            )
        })
        .collect();
    format!(
        "{{\"user\": {}, \"t\": {}, \"worst_loss\": {}, \"evicted\": {}, \"budget_remaining\": \
         {}, \"exhausted\": {}, \"windows\": [{}]}}",
        report.user.0,
        report.t,
        num(report.worst_loss),
        report.evicted,
        num(report.budget_remaining),
        report.exhausted,
        windows.join(", ")
    )
}

/// Serializes an [`EnforcedRelease`] (the release response body). The
/// decision is flattened: `"outcome"` is `"released"` or `"suppressed"`,
/// with `observed`/`budget` present only when released.
pub fn encode_release(release: &EnforcedRelease) -> String {
    let decision = match release.decision {
        Decision::Released {
            observed,
            budget,
            certified,
        } => format!(
            "\"outcome\": \"released\", \"observed\": {}, \"budget\": {}, \"certified\": \
             {certified}",
            observed.index(),
            num(budget)
        ),
        Decision::Suppressed => "\"outcome\": \"suppressed\", \"certified\": true".to_owned(),
    };
    format!(
        "{{{decision}, \"attempts\": {}, \"report\": {}}}",
        release.attempts,
        encode_report(&release.report)
    )
}

/// Serializes a user's budget position (the spend response body).
pub fn encode_spend<P: TransitionProvider>(session: &Session<P>) -> String {
    let ledger = session.ledger();
    format!(
        "{{\"user\": {}, \"observed\": {}, \"active_windows\": {}, \"budget\": {}, \"spent\": \
         {}, \"remaining\": {}, \"violations\": {}, \"exhausted\": {}}}",
        session.id().0,
        session.observed(),
        session.active_windows(),
        num(ledger.budget()),
        num(ledger.spent()),
        num(ledger.remaining()),
        ledger.violations(),
        ledger.exhausted()
    )
}

/// Serializes the service description (the config response body). The
/// load generator reads `num_cells` and `enforcing` from here before
/// driving traffic.
pub fn encode_config(
    num_cells: usize,
    epsilon: f64,
    budget: f64,
    enforcing: bool,
    templates: usize,
    users: usize,
    draining: bool,
) -> String {
    format!(
        "{{\"num_cells\": {num_cells}, \"epsilon\": {}, \"budget\": {}, \"enforcing\": \
         {enforcing}, \"templates\": {templates}, \"users\": {users}, \"draining\": {draining}}}",
        num(epsilon),
        num(budget)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use priste_event::Presence;
    use priste_geo::{CellId, Region};
    use priste_linalg::Vector;
    use priste_markov::{Homogeneous, MarkovModel};
    use priste_online::{OnlineConfig, SessionManager, UserId};
    use std::sync::Arc;

    #[test]
    fn ingest_decoding_enforces_the_one_of_rule() {
        let req = decode_ingest(b"{\"user\": 3, \"observed\": 7}").unwrap();
        assert_eq!(req.user, 3);
        assert_eq!(req.observed, Some(7));
        assert!(req.column.is_none());

        let req = decode_ingest(b"{\"user\": 1, \"column\": [0.5, 0.25]}").unwrap();
        assert_eq!(req.column.as_deref(), Some(&[0.5, 0.25][..]));

        assert!(decode_ingest(b"{\"user\": 1}").is_err());
        assert!(decode_ingest(b"{\"user\": 1, \"observed\": 0, \"column\": [1.0]}").is_err());
        assert!(decode_ingest(b"{\"observed\": 0}").is_err());
        assert!(decode_ingest(b"not json").is_err());
        assert!(decode_ingest(b"{\"user\": -1, \"observed\": 0}").is_err());
    }

    #[test]
    fn release_decoding_requires_both_fields() {
        let req = decode_release(b"{\"user\": 2, \"true_location\": 4}").unwrap();
        assert_eq!(
            req,
            ReleaseRequest {
                user: 2,
                true_location: 4
            }
        );
        assert!(decode_release(b"{\"user\": 2}").is_err());
    }

    #[test]
    fn report_and_spend_round_trip_through_the_json_parser() {
        let chain = Arc::new(Homogeneous::new(MarkovModel::paper_example()));
        let mut svc = SessionManager::new(chain, OnlineConfig::default()).unwrap();
        let region = Region::from_cells(3, [CellId(0), CellId(1)]).unwrap();
        svc.register_template(Presence::new(region, 1, 4).unwrap().into())
            .unwrap();
        svc.add_user(UserId(9), Vector::uniform(3)).unwrap();
        svc.attach_event(UserId(9), 0).unwrap();
        let report = svc
            .ingest(UserId(9), Vector::from(vec![0.5, 0.3, 0.2]))
            .unwrap();

        let doc = json::parse(&encode_report(&report)).expect("report JSON must parse");
        assert_eq!(doc.get("user").and_then(|j| j.as_u64()), Some(9));
        assert_eq!(doc.get("t").and_then(|j| j.as_u64()), Some(1));
        let windows = doc.get("windows").and_then(|j| j.as_array()).unwrap();
        assert_eq!(windows.len(), report.windows.len());
        if let Some(w) = windows.first() {
            assert!(w.get("verdict").and_then(|j| j.as_str()).is_some());
        }

        let session = svc.session(UserId(9)).unwrap();
        let doc = json::parse(&encode_spend(session)).expect("spend JSON must parse");
        assert_eq!(doc.get("observed").and_then(|j| j.as_u64()), Some(1));
        assert_eq!(
            doc.get("remaining").and_then(|j| j.as_f64()),
            Some(session.ledger().remaining())
        );
    }

    #[test]
    fn error_bodies_escape_quotes() {
        let body = encode_error("bad \"field\"");
        let doc = json::parse(&body).unwrap();
        assert_eq!(
            doc.get("error").and_then(|j| j.as_str()),
            Some("bad \"field\"")
        );
    }
}
