//! The daemon: a thread-pool HTTP/1.1 server fronting one
//! [`SessionManager`], with the observability plane mounted on the same
//! [`Registry`] the service records into.
//!
//! # Architecture
//!
//! One non-blocking acceptor thread polls the listener and the
//! signal/drain flags; accepted connections flow over a channel to a
//! fixed pool of worker threads, each serving one keep-alive connection
//! at a time (effective request concurrency = `workers`). Service state
//! sits behind a single mutex — JSON parsing and serialization happen
//! outside the lock, so the critical section is just the posterior
//! update or guarded release itself.
//!
//! # Graceful drain
//!
//! [`DrainHandle::drain`] (or SIGINT/SIGTERM when
//! [`ServerConfig::handle_signals`] is set) stops the acceptor; workers
//! finish every in-flight request, answer with `connection: close`, and
//! exit. [`Server::wait`] then writes a final durable checkpoint (when
//! the service is durable) and a last metrics snapshot to disk, and
//! returns the [`DrainSummary`].

use crate::http::{write_response, ReadError, Request, RequestReader, Response};
use crate::proto;
use crate::signal;
use crate::Result;
use priste_geo::CellId;
use priste_linalg::Vector;
use priste_lppm::Lppm;
use priste_markov::TransitionProvider;
use priste_obs::{Counter, Gauge, Registry};
use priste_online::{OnlineError, SessionManager, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads — also the effective request concurrency, since
    /// each worker owns one keep-alive connection at a time.
    pub workers: usize,
    /// Largest accepted request body (413 beyond it).
    pub max_body_bytes: usize,
    /// Socket read timeout; bounds how quickly idle connections and the
    /// acceptor notice a drain.
    pub poll_interval: Duration,
    /// Where `wait` writes the final `render_json` metrics snapshot.
    pub metrics_snapshot: Option<PathBuf>,
    /// Install SIGINT/SIGTERM handlers and treat them as a drain.
    pub handle_signals: bool,
    /// Seed for the server-side release RNG.
    pub seed: u64,
    /// Synthetic serialized-commit stall: hold the state lock this much
    /// longer on every ingest/release. Zero (the default) disables it.
    /// This exists for capacity benchmarks and drain/failover drills —
    /// it models a worker whose throughput is bounded by a serialized
    /// downstream commit (e.g. a slow WAL device) rather than by CPU,
    /// which is the regime where horizontal sharding pays off.
    pub request_stall: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            max_body_bytes: 64 * 1024,
            poll_interval: Duration::from_millis(25),
            metrics_snapshot: None,
            handle_signals: false,
            seed: 7,
            request_stall: Duration::ZERO,
        }
    }
}

/// What the drained daemon did, returned by [`Server::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainSummary {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests answered (any status).
    pub requests: u64,
    /// Requests answered with a 4xx/5xx status, plus unparseable ones.
    pub errors: u64,
    /// Whether a final durable checkpoint was written.
    pub checkpointed: bool,
}

/// Clonable switch that starts a graceful drain.
#[derive(Debug, Clone)]
pub struct DrainHandle {
    flag: Arc<AtomicBool>,
}

impl DrainHandle {
    /// Flips the server into draining mode (idempotent).
    pub fn drain(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// The mutexed mutable core: the service, the release RNG, and the
/// mechanism used to derive emission columns for `"observed"` ingests.
struct ServiceState<P> {
    service: SessionManager<P>,
    rng: StdRng,
    column_source: Option<Box<dyn Lppm>>,
}

impl<P: TransitionProvider + Clone> ServiceState<P> {
    /// The state-domain size requests are validated against.
    fn domain_size(&self) -> Option<usize> {
        self.service
            .templates()
            .first()
            .map(|t| t.num_cells())
            .or_else(|| self.column_source.as_ref().map(|s| s.num_cells()))
    }
}

struct Shared<P> {
    state: Mutex<ServiceState<P>>,
    registry: Registry,
    config: ServerConfig,
    draining: Arc<AtomicBool>,
    started: Instant,
    requests: AtomicU64,
    errors: AtomicU64,
    next_request_id: AtomicU64,
    in_flight: Gauge,
    connections_total: Counter,
    uptime: Gauge,
}

impl<P: TransitionProvider + Clone> Shared<P> {
    fn lock_state(&self) -> MutexGuard<'_, ServiceState<P>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Applies [`ServerConfig::request_stall`] while the caller holds
    /// the state lock, so the stall serializes like a real commit would.
    fn stall(&self) {
        if !self.config.request_stall.is_zero() {
            thread::sleep(self.config.request_stall);
        }
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn bump_error(&self, route: &str) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        self.registry
            .counter(&format!("serve_errors_total{{route=\"{route}\"}}"))
            .inc();
    }
}

/// A running daemon; dropping it without [`Server::wait`] detaches the
/// threads.
pub struct Server<P> {
    shared: Arc<Shared<P>>,
    local_addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl<P: TransitionProvider + Clone + Send + 'static> Server<P> {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `service` on a worker pool.
    ///
    /// `column_source` is the mechanism used to turn an `"observed"`
    /// cell into an emission column (and is orthogonal to the enforcing
    /// guard, which the service carries internally). `registry` should
    /// be the same registry the service's `observe` was pointed at, so
    /// `/metrics` exposes service, guard, durable, and server series
    /// together.
    ///
    /// # Errors
    /// [`crate::ServeError::Io`] when the bind fails.
    pub fn start(
        service: SessionManager<P>,
        column_source: Option<Box<dyn Lppm>>,
        registry: Registry,
        config: ServerConfig,
        addr: &str,
    ) -> Result<Server<P>> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        registry
            .gauge(&format!(
                "priste_build_info{{version=\"{}\"}}",
                env!("CARGO_PKG_VERSION")
            ))
            .set(1.0);
        let uptime = registry.gauge("process_uptime_seconds");
        let in_flight = registry.gauge("serve_requests_in_flight");
        let connections_total = registry.counter("serve_connections_total");
        if config.handle_signals {
            signal::install();
        }

        let draining = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            state: Mutex::new(ServiceState {
                service,
                rng: StdRng::seed_from_u64(config.seed),
                column_source,
            }),
            registry,
            config,
            draining,
            started: Instant::now(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            next_request_id: AtomicU64::new(0),
            in_flight,
            connections_total,
            uptime,
        });

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                thread::spawn(move || worker_loop(&shared, &rx))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&shared, &listener, &tx))
        };
        Ok(Server {
            shared,
            local_addr,
            acceptor,
            workers,
        })
    }

    /// The bound address (the resolved port when started on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A clonable handle that can start a drain from any thread.
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle {
            flag: Arc::clone(&self.shared.draining),
        }
    }

    /// Blocks until a drain is requested (via [`DrainHandle::drain`] or
    /// a handled signal) and every in-flight request has been answered,
    /// then finalizes: a durable checkpoint when the service is
    /// durable, and the final metrics snapshot when configured.
    ///
    /// # Errors
    /// Checkpoint or snapshot-write failures; the drain itself cannot
    /// fail.
    pub fn wait(self) -> Result<DrainSummary> {
        let _ = self.acceptor.join();
        for worker in self.workers {
            let _ = worker.join();
        }
        let shared = self.shared;
        let mut checkpointed = false;
        {
            let mut st = shared.lock_state();
            if st.service.durable_dir().is_some() {
                st.service.checkpoint()?;
                checkpointed = true;
            }
        }
        shared.uptime.set(shared.started.elapsed().as_secs_f64());
        if let Some(path) = &shared.config.metrics_snapshot {
            std::fs::write(path, shared.registry.render_json())?;
        }
        Ok(DrainSummary {
            connections: shared.connections_total.get(),
            requests: shared.requests.load(Ordering::Relaxed),
            errors: shared.errors.load(Ordering::Relaxed),
            checkpointed,
        })
    }
}

fn accept_loop<P: TransitionProvider + Clone>(
    shared: &Shared<P>,
    listener: &TcpListener,
    tx: &mpsc::Sender<TcpStream>,
) {
    loop {
        if shared.config.handle_signals && signal::triggered() {
            shared.draining.store(true, Ordering::SeqCst);
        }
        if shared.draining() {
            // Dropping `tx` (by returning) disconnects the channel once
            // queued connections are handled; workers then exit.
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.connections_total.inc();
                if tx.send(stream).is_err() {
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn worker_loop<P: TransitionProvider + Clone>(shared: &Shared<P>, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // Hold the receiver lock only for the blocking recv; handling
        // happens with the lock released so other workers can pick up.
        let stream = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        match stream {
            Ok(stream) => handle_connection(shared, stream),
            Err(_) => return, // Acceptor gone and queue drained.
        }
    }
}

fn handle_connection<P: TransitionProvider + Clone>(shared: &Shared<P>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = RequestReader::new(stream, shared.config.max_body_bytes);
    loop {
        match reader.read_request() {
            Ok(req) => {
                shared.in_flight.add(1.0);
                let mut resp = handle_request(shared, &req);
                shared.in_flight.add(-1.0);
                shared.requests.fetch_add(1, Ordering::Relaxed);
                if shared.draining() || req.wants_close() {
                    resp.close = true;
                }
                if write_response(&mut writer, &resp).is_err() || resp.close {
                    return;
                }
            }
            Err(ReadError::Idle) => {
                if shared.draining() {
                    return;
                }
            }
            Err(ReadError::Closed) | Err(ReadError::Io(_)) => return,
            Err(ReadError::Malformed(msg)) => {
                shared.bump_error("malformed");
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let mut resp = Response::json(400, proto::encode_error(&msg));
                resp.close = true;
                let _ = write_response(&mut writer, &resp);
                return;
            }
            Err(ReadError::TooLarge) => {
                shared.bump_error("malformed");
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let mut resp = Response::json(413, proto::encode_error("request too large"));
                resp.close = true;
                let _ = write_response(&mut writer, &resp);
                return;
            }
        }
    }
}

/// Stable route label for metrics (path parameters collapsed).
fn route_label(path: &str) -> &'static str {
    match path {
        "/v1/ingest" => "/v1/ingest",
        "/v1/release" => "/v1/release",
        "/v1/config" => "/v1/config",
        "/metrics" => "/metrics",
        "/healthz" => "/healthz",
        "/readyz" => "/readyz",
        _ if spend_user(path).is_some() => "/v1/users/:id/spend",
        _ => "unknown",
    }
}

/// Parses `/v1/users/<id>/spend`.
fn spend_user(path: &str) -> Option<u64> {
    path.strip_prefix("/v1/users/")?
        .strip_suffix("/spend")?
        .parse()
        .ok()
}

fn handle_request<P: TransitionProvider + Clone>(shared: &Shared<P>, req: &Request) -> Response {
    let route = route_label(&req.path);
    let start = Instant::now();
    let mut span = shared.registry.span("http_request");
    let mut resp = dispatch(shared, route, req);
    let status = resp.status;
    span.annotate("status", f64::from(status));
    drop(span);
    shared
        .registry
        .histogram(&format!(
            "serve_request_seconds{{route=\"{route}\",status=\"{status}\"}}"
        ))
        .observe(start.elapsed().as_secs_f64());
    if status >= 400 {
        shared.bump_error(route);
    }
    resp.request_id = Some(match req.header("x-request-id") {
        Some(id) => id.to_owned(),
        None => format!(
            "priste-{}",
            shared.next_request_id.fetch_add(1, Ordering::Relaxed) + 1
        ),
    });
    resp
}

fn dispatch<P: TransitionProvider + Clone>(
    shared: &Shared<P>,
    route: &'static str,
    req: &Request,
) -> Response {
    match (req.method.as_str(), route) {
        ("POST", "/v1/ingest") => ingest(shared, &req.body),
        ("POST", "/v1/release") => release(shared, &req.body),
        ("GET", "/v1/users/:id/spend") => spend(shared, &req.path),
        ("GET", "/v1/config") => config(shared),
        ("GET", "/metrics") => {
            shared.uptime.set(shared.started.elapsed().as_secs_f64());
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                body: shared.registry.render_prometheus().into_bytes(),
                request_id: None,
                retry_after: None,
                close: false,
            }
        }
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/readyz") => {
            if shared.draining() {
                Response::json(503, proto::encode_error("draining"))
            } else {
                Response::text(200, "ready\n")
            }
        }
        (_, "unknown") => Response::json(404, proto::encode_error("no such route")),
        _ => Response::json(405, proto::encode_error("method not allowed on this route")),
    }
}

/// Maps a service error onto the HTTP status it deserves.
fn online_status(e: &OnlineError) -> u16 {
    match e {
        OnlineError::UnknownUser { .. } | OnlineError::UnknownTemplate { .. } => 404,
        OnlineError::InvalidLocation { .. } | OnlineError::Quantify(_) => 400,
        OnlineError::NotEnforcing => 409,
        _ => 500,
    }
}

fn online_error(e: &OnlineError) -> Response {
    Response::json(online_status(e), proto::encode_error(&e.to_string()))
}

/// Registers `user` with a uniform prior and the first template on
/// first contact, mirroring the CLI stream scenario's registration.
fn ensure_user<P: TransitionProvider + Clone>(
    st: &mut ServiceState<P>,
    user: u64,
    m: usize,
) -> std::result::Result<(), Response> {
    let id = UserId(user);
    if st.service.session(id).is_some() {
        return Ok(());
    }
    st.service
        .add_user(id, Vector::uniform(m))
        .map_err(|e| online_error(&e))?;
    if !st.service.templates().is_empty() {
        st.service
            .attach_event(id, 0)
            .map_err(|e| online_error(&e))?;
    }
    Ok(())
}

fn ingest<P: TransitionProvider + Clone>(shared: &Shared<P>, body: &[u8]) -> Response {
    let parsed = match proto::decode_ingest(body) {
        Ok(parsed) => parsed,
        Err(msg) => return Response::json(400, proto::encode_error(&msg)),
    };
    let mut st = shared.lock_state();
    let Some(m) = st.domain_size() else {
        return Response::json(
            500,
            proto::encode_error("service has no templates and no mechanism"),
        );
    };
    if let Err(resp) = ensure_user(&mut st, parsed.user, m) {
        return resp;
    }
    let column = match (parsed.observed, parsed.column) {
        (Some(cell), _) => {
            if cell >= m {
                return Response::json(
                    400,
                    proto::encode_error(&format!("observed cell {cell} outside domain of {m}")),
                );
            }
            let Some(source) = &st.column_source else {
                return Response::json(
                    409,
                    proto::encode_error(
                        "no mechanism configured; send an explicit \"column\" instead",
                    ),
                );
            };
            source.emission_column(CellId(cell))
        }
        (None, Some(column)) => {
            if column.len() != m {
                return Response::json(
                    400,
                    proto::encode_error(&format!(
                        "column has {} entries, domain has {m}",
                        column.len()
                    )),
                );
            }
            Vector::from(column)
        }
        (None, None) => unreachable!("decode_ingest enforces one-of"),
    };
    shared.stall();
    match st.service.ingest(UserId(parsed.user), column) {
        Ok(report) => Response::json(200, proto::encode_report(&report)),
        Err(e) => online_error(&e),
    }
}

fn release<P: TransitionProvider + Clone>(shared: &Shared<P>, body: &[u8]) -> Response {
    let parsed = match proto::decode_release(body) {
        Ok(parsed) => parsed,
        Err(msg) => return Response::json(400, proto::encode_error(&msg)),
    };
    let mut st = shared.lock_state();
    let Some(m) = st.domain_size() else {
        return Response::json(
            500,
            proto::encode_error("service has no templates and no mechanism"),
        );
    };
    if parsed.true_location >= m {
        return Response::json(
            400,
            proto::encode_error(&format!(
                "true_location {} outside domain of {m}",
                parsed.true_location
            )),
        );
    }
    if let Err(resp) = ensure_user(&mut st, parsed.user, m) {
        return resp;
    }
    shared.stall();
    let st = &mut *st;
    match st.service.release(
        UserId(parsed.user),
        CellId(parsed.true_location),
        &mut st.rng,
    ) {
        Ok(release) => Response::json(200, proto::encode_release(&release)),
        Err(e) => online_error(&e),
    }
}

fn spend<P: TransitionProvider + Clone>(shared: &Shared<P>, path: &str) -> Response {
    let Some(user) = spend_user(path) else {
        return Response::json(404, proto::encode_error("no such route"));
    };
    let st = shared.lock_state();
    match st.service.session(UserId(user)) {
        Some(session) => Response::json(200, proto::encode_spend(session)),
        None => Response::json(404, proto::encode_error(&format!("unknown user {user}"))),
    }
}

fn config<P: TransitionProvider + Clone>(shared: &Shared<P>) -> Response {
    let st = shared.lock_state();
    let cfg = st.service.config();
    Response::json(
        200,
        proto::encode_config(
            st.domain_size().unwrap_or(0),
            cfg.epsilon,
            cfg.budget,
            st.service.enforcing(),
            st.service.templates().len(),
            st.service.num_users(),
            shared.draining(),
        ),
    )
}
