//! Error type for the serving layer.

use priste_online::OnlineError;
use std::fmt;
use std::io;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ServeError>;

/// What can go wrong starting, running, or load-testing the daemon.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// A transport failure (bind, accept, read, write).
    Io(io::Error),
    /// A service-layer failure surfaced outside request handling (drain
    /// checkpoint, startup registration).
    Online(OnlineError),
    /// A client-side protocol violation: the load generator or artifact
    /// reader received a response it could not understand.
    Protocol(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Online(e) => write!(f, "service error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Online(e) => Some(e),
            ServeError::Protocol(_) => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<OnlineError> for ServeError {
    fn from(e: OnlineError) -> Self {
        ServeError::Online(e)
    }
}
