//! Service-level tests: the batched multi-user ingest path must be
//! observationally identical to driving each user's incremental quantifier
//! by hand, across shard counts, and the lifecycle (attach → quantify →
//! evict, budget accounting) must behave.

use priste_event::{Pattern, Presence, StEvent};
use priste_geo::{CellId, Region};
use priste_linalg::Vector;
use priste_lppm::{Lppm, PlanarLaplace};
use priste_markov::{gaussian_kernel_chain, Homogeneous, MarkovModel};
use priste_online::{OnlineConfig, OnlineError, SessionManager, UserId, Verdict};
use priste_quantify::{IncrementalTwoWorld, QuantifyError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn region(num_cells: usize, ids: &[usize]) -> Region {
    Region::from_cells(num_cells, ids.iter().map(|&i| CellId(i))).unwrap()
}

fn paper_chain() -> Arc<Homogeneous> {
    Arc::new(Homogeneous::new(MarkovModel::paper_example()))
}

fn presence_template() -> StEvent {
    Presence::new(region(3, &[0, 1]), 2, 3).unwrap().into()
}

fn pattern_template() -> StEvent {
    Pattern::new(vec![region(3, &[0, 1]), region(3, &[1, 2])], 2)
        .unwrap()
        .into()
}

/// Deterministic per-user emission column.
fn column_for(user: u64, t: usize) -> Vector {
    let a = 0.2 + 0.6 * ((user as f64 * 0.37 + t as f64 * 0.71).sin() * 0.5 + 0.5);
    let b = (1.0 - a) * 0.6;
    Vector::from(vec![a, b, 1.0 - a - b])
}

#[test]
fn batched_service_equals_hand_driven_incremental_state() {
    let chain = paper_chain();
    let config = OnlineConfig {
        epsilon: 0.8,
        num_shards: 3,
        linger: 50, // keep windows alive for the whole test
        budget: 1e6,
    };
    let mut svc = SessionManager::new(Arc::clone(&chain), config).unwrap();
    let tpl_presence = svc.register_template(presence_template()).unwrap();
    let tpl_pattern = svc.register_template(pattern_template()).unwrap();

    let users: Vec<UserId> = (0..12).map(UserId).collect();
    for &u in &users {
        svc.add_user(u, Vector::uniform(3)).unwrap();
        svc.attach_event(u, tpl_presence).unwrap();
        if u.0 % 2 == 0 {
            svc.attach_event(u, tpl_pattern).unwrap();
        }
    }

    // Hand-driven references: one IncrementalTwoWorld per (user, window).
    let mut refs: Vec<(u64, Vec<IncrementalTwoWorld<Arc<Homogeneous>>>)> = users
        .iter()
        .map(|&u| {
            let mut v = vec![IncrementalTwoWorld::new(
                presence_template(),
                Arc::clone(&chain),
                Vector::uniform(3),
            )
            .unwrap()];
            if u.0 % 2 == 0 {
                v.push(
                    IncrementalTwoWorld::new(
                        pattern_template(),
                        Arc::clone(&chain),
                        Vector::uniform(3),
                    )
                    .unwrap(),
                );
            }
            (u.0, v)
        })
        .collect();

    for t in 1..=5 {
        let batch: Vec<(UserId, Vector)> = users.iter().map(|&u| (u, column_for(u.0, t))).collect();
        let reports = svc.ingest_batch(&batch).unwrap();
        assert_eq!(reports.len(), users.len());
        for report in &reports {
            let (_, windows) = refs.iter_mut().find(|(u, _)| *u == report.user.0).unwrap();
            assert_eq!(report.t, t);
            assert_eq!(report.windows.len(), windows.len());
            for (wr, reference) in report.windows.iter().zip(windows.iter_mut()) {
                let expect = reference.observe(&column_for(report.user.0, t)).unwrap();
                assert_eq!(wr.window_t, expect.t);
                assert!(
                    (wr.loss - expect.privacy_loss).abs() < 1e-10,
                    "u{} t={t}: {} vs {}",
                    report.user.0,
                    wr.loss,
                    expect.privacy_loss
                );
                assert!((wr.posterior - expect.posterior).abs() < 1e-10);
                assert_eq!(wr.verdict == Verdict::Certified, expect.certifies(0.8));
            }
        }
    }
}

#[test]
fn shard_count_does_not_change_results() {
    let chain = paper_chain();
    let run = |num_shards: usize| {
        let config = OnlineConfig {
            epsilon: 1.0,
            num_shards,
            linger: 10,
            budget: 1e6,
        };
        let mut svc = SessionManager::new(Arc::clone(&chain), config).unwrap();
        let tpl = svc.register_template(presence_template()).unwrap();
        for u in 0..9 {
            svc.add_user(UserId(u), Vector::uniform(3)).unwrap();
            svc.attach_event(UserId(u), tpl).unwrap();
        }
        let mut all = Vec::new();
        for t in 1..=4 {
            let batch: Vec<(UserId, Vector)> =
                (0..9).map(|u| (UserId(u), column_for(u, t))).collect();
            all.extend(svc.ingest_batch(&batch).unwrap());
        }
        all
    };
    let one = run(1);
    let five = run(5);
    assert_eq!(one, five);
}

#[test]
fn windows_expire_and_are_evicted() {
    let chain = paper_chain();
    let config = OnlineConfig {
        epsilon: 5.0,
        num_shards: 2,
        linger: 1,
        budget: 1e6,
    };
    let mut svc = SessionManager::new(Arc::clone(&chain), config).unwrap();
    // Event ends at t=3; with linger 1 the window dies after observation 4.
    let tpl = svc.register_template(presence_template()).unwrap();
    svc.add_user(UserId(7), Vector::uniform(3)).unwrap();
    svc.attach_event(UserId(7), tpl).unwrap();
    assert_eq!(svc.active_windows(), 1);

    let flat = Vector::from(vec![1.0 / 3.0; 3]);
    for t in 1..=3 {
        let r = svc.ingest(UserId(7), flat.clone()).unwrap();
        assert_eq!(r.evicted, 0, "t={t}");
        assert_eq!(r.windows.len(), 1);
    }
    let r = svc.ingest(UserId(7), flat.clone()).unwrap();
    assert_eq!(r.evicted, 1, "end (3) + linger (1) = evict after obs 4");
    assert_eq!(svc.active_windows(), 0);
    assert_eq!(svc.stats().evicted_windows, 1);
    // Later observations still track the posterior, with no windows.
    let r = svc.ingest(UserId(7), flat).unwrap();
    assert!(r.windows.is_empty());
    assert_eq!(r.worst_loss, 0.0);
}

#[test]
fn zero_likelihood_observation_drops_the_window_not_the_user() {
    let chain = paper_chain();
    let mut svc = SessionManager::new(
        Arc::clone(&chain),
        OnlineConfig {
            epsilon: 1.0,
            num_shards: 1,
            linger: 10,
            budget: 1e6,
        },
    )
    .unwrap();
    let tpl = svc.register_template(presence_template()).unwrap();
    svc.add_user(UserId(1), Vector::uniform(3)).unwrap();
    svc.attach_event(UserId(1), tpl).unwrap();

    // Pin the user to s3, then claim an emission only reachable from s1:
    // impossible under the chain (row s3 = [0, 0.1, 0.9]).
    svc.ingest(UserId(1), Vector::from(vec![0.0, 0.0, 1.0]))
        .unwrap();
    let r = svc
        .ingest(UserId(1), Vector::from(vec![1.0, 0.0, 0.0]))
        .unwrap();
    assert_eq!(r.windows.len(), 1);
    assert_eq!(r.windows[0].verdict, Verdict::ModelMismatch);
    assert_eq!(r.evicted, 1);
    assert_eq!(svc.stats().mismatched, 1);
    assert_eq!(svc.num_users(), 1, "the session itself survives");
    // A model mismatch is not a realized privacy loss: it must not poison
    // the reported worst loss or exhaust the budget ledger.
    assert_eq!(r.worst_loss, 0.0);
    assert!(!r.exhausted);
    assert!(svc.session(UserId(1)).unwrap().ledger().spent().is_finite());
    // The filtered posterior was reset to uniform rather than dying.
    let s = svc.session(UserId(1)).unwrap();
    assert!((s.posterior().sum() - 1.0).abs() < 1e-12);
}

#[test]
fn budget_ledger_accumulates_and_flags_exhaustion() {
    let chain = paper_chain();
    let mut svc = SessionManager::new(
        Arc::clone(&chain),
        OnlineConfig {
            epsilon: 1e-6, // everything informative violates
            num_shards: 1,
            linger: 10,
            budget: 0.5,
        },
    )
    .unwrap();
    let tpl = svc.register_template(presence_template()).unwrap();
    svc.add_user(UserId(3), Vector::uniform(3)).unwrap();
    svc.attach_event(UserId(3), tpl).unwrap();

    let sharp = Vector::from(vec![0.8, 0.1, 0.1]);
    let mut exhausted_at = None;
    for t in 1..=6 {
        let r = svc.ingest(UserId(3), sharp.clone()).unwrap();
        if r.exhausted && exhausted_at.is_none() {
            exhausted_at = Some(t);
        }
    }
    let ledger = svc.session(UserId(3)).unwrap().ledger();
    assert!(ledger.spent() > 0.0);
    assert!(ledger.violations() > 0);
    assert!(
        exhausted_at.is_some(),
        "informative stream must exhaust a 0.5 budget: spent {}",
        ledger.spent()
    );
}

#[test]
fn service_rejects_bad_inputs_without_mutating_state() {
    let chain = paper_chain();
    let mut svc = SessionManager::new(Arc::clone(&chain), OnlineConfig::default()).unwrap();
    let tpl = svc.register_template(presence_template()).unwrap();
    svc.add_user(UserId(1), Vector::uniform(3)).unwrap();
    svc.attach_event(UserId(1), tpl).unwrap();

    // Config validation.
    assert!(matches!(
        SessionManager::new(
            Arc::clone(&chain),
            OnlineConfig {
                epsilon: 0.0,
                ..OnlineConfig::default()
            }
        ),
        Err(OnlineError::InvalidConfig { .. })
    ));
    // Unknown + duplicate users, unknown templates.
    assert!(matches!(
        svc.ingest(UserId(9), Vector::uniform(3)),
        Err(OnlineError::UnknownUser { user: 9 })
    ));
    assert!(matches!(
        svc.add_user(UserId(1), Vector::uniform(3)),
        Err(OnlineError::DuplicateUser { user: 1 })
    ));
    assert!(matches!(
        svc.attach_event(UserId(1), 99),
        Err(OnlineError::UnknownTemplate { template: 99 })
    ));
    // Domain mismatches.
    assert!(matches!(
        svc.register_template(StEvent::from(Presence::new(region(4, &[0]), 1, 1).unwrap())),
        Err(OnlineError::Quantify(QuantifyError::DomainMismatch { .. }))
    ));
    assert!(svc.add_user(UserId(2), Vector::uniform(4)).is_err());
    // A batch with a duplicate user fails atomically: state unchanged.
    svc.add_user(UserId(2), Vector::uniform(3)).unwrap();
    let before = svc.stats();
    let dup = vec![
        (UserId(1), Vector::uniform(3)),
        (UserId(2), Vector::uniform(3)),
        (UserId(1), Vector::uniform(3)),
    ];
    assert!(matches!(
        svc.ingest_batch(&dup),
        Err(OnlineError::DuplicateObservation { user: 1 })
    ));
    assert_eq!(svc.stats(), before);
    assert_eq!(svc.session(UserId(1)).unwrap().observed(), 0);
    // Malformed emission columns.
    assert!(svc.ingest(UserId(1), Vector::uniform(4)).is_err());
    assert!(svc
        .ingest(UserId(1), Vector::from(vec![0.5, -0.1, 0.6]))
        .is_err());
}

#[test]
fn attach_uses_the_current_posterior_and_can_reject_degenerate_events() {
    let chain = paper_chain();
    let mut svc = SessionManager::new(
        Arc::clone(&chain),
        OnlineConfig {
            epsilon: 1.0,
            num_shards: 1,
            linger: 10,
            budget: 1e6,
        },
    )
    .unwrap();
    // Event: in {s1} at local t=2 of the window.
    let tpl = svc
        .register_template(StEvent::from(Presence::new(region(3, &[0]), 2, 2).unwrap()))
        .unwrap();
    svc.add_user(UserId(1), Vector::uniform(3)).unwrap();
    // Pin the posterior to s3 (the chain cannot reach s1 from s3 in one
    // step), then attach: the event has prior 0 under the current belief.
    svc.ingest(UserId(1), Vector::from(vec![0.0, 0.0, 1.0]))
        .unwrap();
    assert!(matches!(
        svc.attach_event(UserId(1), tpl),
        Err(OnlineError::Quantify(QuantifyError::DegeneratePrior { .. }))
    ));
    // From a fresh uniform belief the same template attaches fine.
    svc.add_user(UserId(2), Vector::uniform(3)).unwrap();
    svc.attach_event(UserId(2), tpl).unwrap();
    assert_eq!(svc.active_windows(), 1);
}

#[test]
fn plm_driven_feed_runs_end_to_end_on_a_grid_world() {
    // Smoke the intended deployment shape: a grid world, a Planar-Laplace
    // mechanism, many users, multi-step feed.
    let grid = priste_geo::GridMap::new(4, 4, 1.0).unwrap();
    let chain = Arc::new(Homogeneous::new(gaussian_kernel_chain(&grid, 1.0).unwrap()));
    let plm = PlanarLaplace::new(grid.clone(), 0.8).unwrap();
    let mut svc = SessionManager::new(
        Arc::clone(&chain),
        OnlineConfig {
            epsilon: 2.0,
            num_shards: 4,
            linger: 2,
            budget: 100.0,
        },
    )
    .unwrap();
    let tpl = svc
        .register_template(StEvent::from(
            Presence::new(Region::from_one_based_range(16, 1, 4).unwrap(), 2, 4).unwrap(),
        ))
        .unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let users = 20u64;
    let mut trajs = Vec::new();
    for u in 0..users {
        svc.add_user(UserId(u), Vector::uniform(16)).unwrap();
        svc.attach_event(UserId(u), tpl).unwrap();
        trajs.push(
            chain
                .model()
                .sample_trajectory_from(&Vector::uniform(16), 8, &mut rng)
                .unwrap(),
        );
    }
    #[allow(clippy::needless_range_loop)] // column-wise access across per-user rows
    for t in 0..8 {
        let batch: Vec<(UserId, Vector)> = (0..users)
            .map(|u| {
                let obs = plm.perturb(trajs[u as usize][t], &mut rng);
                (UserId(u), plm.emission_column(obs))
            })
            .collect();
        let reports = svc.ingest_batch(&batch).unwrap();
        assert_eq!(reports.len(), users as usize);
        for r in &reports {
            assert!(r.worst_loss >= 0.0);
            for w in &r.windows {
                assert!((0.0..=1.0).contains(&w.posterior));
            }
        }
    }
    let stats = svc.stats();
    assert_eq!(stats.observations, 8 * users as usize);
    assert!(stats.certified + stats.violated + stats.mismatched > 0);
    assert_eq!(svc.active_windows(), 0, "all windows evicted by t=8");
}

// --------------------------------------------------------------------------
// Enforcing mode: the guard consults the session's windows before release.
// --------------------------------------------------------------------------

fn enforcing_service(
    target: f64,
) -> (
    SessionManager<Arc<Homogeneous>>,
    priste_geo::GridMap,
    Homogeneous,
) {
    let grid = priste_geo::GridMap::new(3, 3, 1.0).unwrap();
    let m = grid.num_cells();
    let chain = gaussian_kernel_chain(&grid, 1.0).unwrap();
    let provider = Arc::new(Homogeneous::new(chain.clone()));
    let mut service = SessionManager::new(
        Arc::clone(&provider),
        OnlineConfig {
            epsilon: target,
            num_shards: 2,
            linger: 2,
            budget: 1e6,
        },
    )
    .unwrap();
    let tpl = service
        .register_template(
            Presence::new(Region::from_one_based_range(m, 1, 3).unwrap(), 2, 4)
                .unwrap()
                .into(),
        )
        .unwrap();
    service.add_user(UserId(1), Vector::uniform(m)).unwrap();
    service.attach_event(UserId(1), tpl).unwrap();
    let plm: Box<dyn Lppm> = Box::new(PlanarLaplace::new(grid.clone(), 3.0).unwrap());
    service
        .enable_enforcement(
            plm,
            priste_calibrate::GuardConfig {
                target_epsilon: target,
                ..priste_calibrate::GuardConfig::default()
            },
        )
        .unwrap();
    (service, grid, Homogeneous::new(chain))
}

#[test]
fn enforcing_release_certifies_every_step() {
    let (mut service, _grid, _) = enforcing_service(0.6);
    assert!(service.enforcing());
    let mut rng = StdRng::seed_from_u64(11);
    for &loc in &[0usize, 1, 4, 0, 8, 2] {
        let rel = service.release(UserId(1), CellId(loc), &mut rng).unwrap();
        assert!(
            rel.report.worst_loss <= 0.6 + 1e-9,
            "t={}: committed loss {} exceeds target",
            rel.report.t,
            rel.report.worst_loss
        );
        assert!(rel.attempts >= 1);
        assert!(rel
            .report
            .windows
            .iter()
            .all(|w| w.verdict != Verdict::Violated));
    }
    assert_eq!(service.session(UserId(1)).unwrap().observed(), 6);
}

#[test]
fn enforcing_release_suppresses_when_nothing_feasible() {
    let grid = priste_geo::GridMap::new(3, 3, 1.0).unwrap();
    let m = grid.num_cells();
    let provider = Arc::new(Homogeneous::new(gaussian_kernel_chain(&grid, 1.0).unwrap()));
    let mut service = SessionManager::new(Arc::clone(&provider), OnlineConfig::default()).unwrap();
    let tpl = service
        .register_template(
            Presence::new(Region::from_one_based_range(m, 1, 3).unwrap(), 1, 3)
                .unwrap()
                .into(),
        )
        .unwrap();
    service.add_user(UserId(7), Vector::uniform(m)).unwrap();
    service.attach_event(UserId(7), tpl).unwrap();
    let plm: Box<dyn Lppm> = Box::new(PlanarLaplace::new(grid, 4.0).unwrap());
    // Floor 1.0 keeps every rung informative: a 1e-4 target must suppress.
    service
        .enable_enforcement(
            plm,
            priste_calibrate::GuardConfig {
                target_epsilon: 1e-4,
                floor: 1.0,
                ..priste_calibrate::GuardConfig::default()
            },
        )
        .unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let rel = service.release(UserId(7), CellId(0), &mut rng).unwrap();
    assert_eq!(rel.decision, priste_calibrate::Decision::Suppressed);
    assert!(rel.report.worst_loss < 1e-9, "flat commit is uninformative");
    assert_eq!(service.stats().suppressed, 1);
}

#[test]
fn enforcing_mode_validates_requests() {
    let (mut service, _grid, _) = enforcing_service(1.0);
    let mut rng = StdRng::seed_from_u64(1);
    assert!(matches!(
        service.release(UserId(99), CellId(0), &mut rng),
        Err(OnlineError::UnknownUser { user: 99 })
    ));
    assert!(matches!(
        service.release(UserId(1), CellId(40), &mut rng),
        Err(OnlineError::InvalidLocation { cell: 40, .. })
    ));
    // The failed calls must not have consumed a timestep.
    assert_eq!(service.session(UserId(1)).unwrap().observed(), 0);

    let mut plain = SessionManager::new(paper_chain(), OnlineConfig::default()).unwrap();
    plain.add_user(UserId(1), Vector::uniform(3)).unwrap();
    assert!(matches!(
        plain.release(UserId(1), CellId(0), &mut rng),
        Err(OnlineError::NotEnforcing)
    ));
    let bad: Box<dyn Lppm> =
        Box::new(PlanarLaplace::new(priste_geo::GridMap::new(2, 2, 1.0).unwrap(), 1.0).unwrap());
    assert!(matches!(
        plain.enable_enforcement(bad, priste_calibrate::GuardConfig::default()),
        Err(OnlineError::InvalidConfig { .. })
    ));
}

#[test]
fn enforcing_and_audit_paths_share_the_session_state() {
    let (mut service, grid, chain) = enforcing_service(1.2);
    let mut rng = StdRng::seed_from_u64(21);
    let rel = service.release(UserId(1), CellId(4), &mut rng).unwrap();
    assert_eq!(rel.report.t, 1);
    // An audited observation continues the same window clock.
    let plm = PlanarLaplace::new(grid, 0.5).unwrap();
    let report = service
        .ingest(UserId(1), plm.emission_column(CellId(3)))
        .unwrap();
    assert_eq!(report.t, 2);
    assert_eq!(report.windows[0].window_t, 2);
    let _ = chain;
}

/// A multi-user enforcing service over an 8-shard 3×3 world.
fn enforcing_fleet(users: u64, shards: usize, target: f64) -> SessionManager<Arc<Homogeneous>> {
    let grid = priste_geo::GridMap::new(3, 3, 1.0).unwrap();
    let m = grid.num_cells();
    let chain = gaussian_kernel_chain(&grid, 1.0).unwrap();
    let provider = Arc::new(Homogeneous::new(chain));
    let mut service = SessionManager::new(
        Arc::clone(&provider),
        OnlineConfig {
            epsilon: target,
            num_shards: shards,
            linger: 2,
            budget: 1e6,
        },
    )
    .unwrap();
    let tpl = service
        .register_template(
            Presence::new(Region::from_one_based_range(m, 1, 3).unwrap(), 2, 4)
                .unwrap()
                .into(),
        )
        .unwrap();
    for u in 0..users {
        service.add_user(UserId(u), Vector::uniform(m)).unwrap();
        service.attach_event(UserId(u), tpl).unwrap();
    }
    let plm: Box<dyn Lppm> = Box::new(PlanarLaplace::new(grid, 3.0).unwrap());
    service
        .enable_enforcement(
            plm,
            priste_calibrate::GuardConfig {
                target_epsilon: target,
                ..priste_calibrate::GuardConfig::default()
            },
        )
        .unwrap();
    service
}

#[test]
fn parallel_ingest_equals_sequential_ingest() {
    let chain = paper_chain();
    let config = OnlineConfig {
        epsilon: 0.8,
        num_shards: 5,
        linger: 3,
        budget: 1e6,
    };
    let mut seq = SessionManager::new(Arc::clone(&chain), config.clone()).unwrap();
    let mut par = SessionManager::new(Arc::clone(&chain), config).unwrap();
    for svc in [&mut seq, &mut par] {
        let tpl = svc.register_template(presence_template()).unwrap();
        for u in 0..23u64 {
            svc.add_user(UserId(u), Vector::uniform(3)).unwrap();
            svc.attach_event(UserId(u), tpl).unwrap();
        }
    }
    for t in 1..=6 {
        let batch: Vec<(UserId, Vector)> =
            (0..23u64).map(|u| (UserId(u), column_for(u, t))).collect();
        let sequential = seq.ingest_batch(&batch).unwrap();
        let parallel = par.ingest_batch_parallel(&batch, 4).unwrap();
        assert_eq!(sequential, parallel, "t={t}");
    }
    assert_eq!(seq.stats(), par.stats());
    for u in 0..23u64 {
        assert_eq!(
            seq.session(UserId(u)).unwrap().posterior().as_slice(),
            par.session(UserId(u)).unwrap().posterior().as_slice()
        );
    }
}

#[test]
fn release_batch_is_deterministic_across_thread_counts() {
    let mut outputs = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut service = enforcing_fleet(17, 4, 0.9);
        let mut all = Vec::new();
        for t in 0..3u64 {
            let batch: Vec<(UserId, CellId)> = (0..17u64)
                .map(|u| (UserId(u), CellId(((u + t) % 9) as usize)))
                .collect();
            all.push(service.release_batch(&batch, 1000 + t, threads).unwrap());
        }
        outputs.push((all, service.stats()));
    }
    assert_eq!(outputs[0], outputs[1], "1 vs 2 threads");
    assert_eq!(outputs[0], outputs[2], "1 vs 8 threads");
}

#[test]
fn release_batch_certifies_and_reports_every_user() {
    let mut service = enforcing_fleet(12, 3, 0.8);
    let batch: Vec<(UserId, CellId)> = (0..12u64)
        .map(|u| (UserId(u), CellId((u % 9) as usize)))
        .collect();
    let releases = service.release_batch(&batch, 7, 0).unwrap();
    assert_eq!(releases.len(), 12);
    for (i, rel) in releases.iter().enumerate() {
        assert_eq!(rel.report.user, UserId(i as u64), "sorted by user id");
        assert_eq!(rel.report.t, 1);
        assert!(rel.decision.certified());
        assert!(rel.report.worst_loss <= 0.8 + 1e-9);
        assert!(rel.attempts >= 1);
    }
    assert_eq!(service.stats().observations, 12);
}

#[test]
fn release_batch_validates_before_mutating() {
    let mut service = enforcing_fleet(4, 2, 0.9);
    let cases: Vec<Vec<(UserId, CellId)>> = vec![
        vec![(UserId(0), CellId(0)), (UserId(99), CellId(1))],
        vec![(UserId(0), CellId(40))],
        vec![(UserId(1), CellId(0)), (UserId(1), CellId(1))],
    ];
    for batch in cases {
        assert!(service.release_batch(&batch, 1, 2).is_err(), "{batch:?}");
    }
    for u in 0..4u64 {
        assert_eq!(
            service.session(UserId(u)).unwrap().observed(),
            0,
            "failed batches must not consume timesteps"
        );
    }
    let mut plain = SessionManager::new(paper_chain(), OnlineConfig::default()).unwrap();
    plain.add_user(UserId(1), Vector::uniform(3)).unwrap();
    assert!(matches!(
        plain.release_batch(&[(UserId(1), CellId(0))], 1, 1),
        Err(OnlineError::NotEnforcing)
    ));
}
