//! Observability wiring for the service: instrument bundles and recovery
//! telemetry.
//!
//! Two cost classes coexist here, mirroring the `priste-obs` contract:
//!
//! * **Always-on counters** back [`ServiceStats`] (and the shard-panic
//!   total): they are service semantics — snapshotted, restored, and
//!   asserted on by callers — so they count whether or not a registry is
//!   attached. The registry *adopts* them on
//!   [`SessionManager::observe`](crate::SessionManager::observe), values
//!   intact.
//! * **Gated telemetry** (latency histograms, batch sizes, gauges) starts
//!   as disabled handles whose record path is a few atomic loads with no
//!   allocation, and is swapped for live registry handles on attach. The
//!   hot per-observation loops never see any of it: deltas stay plain
//!   structs on worker threads and instruments are touched once per
//!   batch/append.

use crate::manager::ServiceStats;
use priste_calibrate::GuardInstruments;
use priste_obs::{Counter, Gauge, Histogram, Registry};

/// The service-level instrument bundle owned by a `SessionManager`.
#[derive(Debug, Clone)]
pub(crate) struct ServiceInstruments {
    /// `online_observations_total` (always-on; `ServiceStats`).
    pub(crate) observations: Counter,
    /// `online_windows_evicted_total` (always-on; `ServiceStats`).
    pub(crate) evicted_windows: Counter,
    /// `online_verdicts_certified_total` (always-on; `ServiceStats`).
    pub(crate) certified: Counter,
    /// `online_verdicts_violated_total` (always-on; `ServiceStats`).
    pub(crate) violated: Counter,
    /// `online_verdicts_mismatched_total` (always-on; `ServiceStats`).
    pub(crate) mismatched: Counter,
    /// `online_suppressed_total` (always-on; `ServiceStats`).
    pub(crate) suppressed: Counter,
    /// `online_shard_panics_total` (always-on: a degraded fan-out must be
    /// visible even without a registry attached).
    pub(crate) shard_panics: Counter,
    /// `online_ingest_batch_seconds` (gated).
    pub(crate) ingest_seconds: Histogram,
    /// `online_ingest_batch_size` (gated).
    pub(crate) ingest_batch_size: Histogram,
    /// `online_release_seconds` — singleton enforcing releases (gated).
    pub(crate) release_seconds: Histogram,
    /// `online_release_batch_seconds` (gated).
    pub(crate) release_batch_seconds: Histogram,
    /// `online_release_batch_size` (gated).
    pub(crate) release_batch_size: Histogram,
    /// `online_sessions` gauge (gated).
    pub(crate) sessions: Gauge,
    /// `online_shard_imbalance` gauge: fullest shard ÷ mean shard
    /// occupancy, 1.0 = perfectly balanced (gated).
    pub(crate) shard_imbalance: Gauge,
    /// Guard instruments shared with the enforcing paths (`guard_*`).
    pub(crate) guard: GuardInstruments,
    /// The attached registry, kept for cold-path dynamic names (per-shard
    /// panic labels) and recovery publication.
    pub(crate) registry: Option<Registry>,
}

impl ServiceInstruments {
    /// Fresh bundle: always-on stats counters, inert telemetry.
    pub(crate) fn new() -> Self {
        ServiceInstruments {
            observations: Counter::new(),
            evicted_windows: Counter::new(),
            certified: Counter::new(),
            violated: Counter::new(),
            mismatched: Counter::new(),
            suppressed: Counter::new(),
            shard_panics: Counter::new(),
            ingest_seconds: Histogram::disabled(),
            ingest_batch_size: Histogram::disabled(),
            release_seconds: Histogram::disabled(),
            release_batch_seconds: Histogram::disabled(),
            release_batch_size: Histogram::disabled(),
            sessions: Gauge::disabled(),
            shard_imbalance: Gauge::disabled(),
            guard: GuardInstruments::disabled(),
            registry: None,
        }
    }

    /// Attaches `registry`: adopts the always-on counters (values intact)
    /// and replaces the gated telemetry with live registry handles.
    pub(crate) fn attach(&mut self, registry: &Registry) {
        registry.adopt_counter("online_observations_total", &self.observations);
        registry.adopt_counter("online_windows_evicted_total", &self.evicted_windows);
        registry.adopt_counter("online_verdicts_certified_total", &self.certified);
        registry.adopt_counter("online_verdicts_violated_total", &self.violated);
        registry.adopt_counter("online_verdicts_mismatched_total", &self.mismatched);
        registry.adopt_counter("online_suppressed_total", &self.suppressed);
        registry.adopt_counter("online_shard_panics_total", &self.shard_panics);
        self.ingest_seconds = registry.histogram("online_ingest_batch_seconds");
        self.ingest_batch_size = registry.histogram("online_ingest_batch_size");
        self.release_seconds = registry.histogram("online_release_seconds");
        self.release_batch_seconds = registry.histogram("online_release_batch_seconds");
        self.release_batch_size = registry.histogram("online_release_batch_size");
        self.sessions = registry.gauge("online_sessions");
        self.shard_imbalance = registry.gauge("online_shard_imbalance");
        self.guard = GuardInstruments::from_registry(registry);
        self.registry = Some(registry.clone());
    }

    /// Adds a (possibly worker-thread-merged) stats delta.
    pub(crate) fn absorb(&self, delta: &ServiceStats) {
        self.observations.add(delta.observations as u64);
        self.evicted_windows.add(delta.evicted_windows as u64);
        self.certified.add(delta.certified as u64);
        self.violated.add(delta.violated as u64);
        self.mismatched.add(delta.mismatched as u64);
        self.suppressed.add(delta.suppressed as u64);
    }

    /// The counters as a [`ServiceStats`] snapshot.
    pub(crate) fn stats(&self) -> ServiceStats {
        ServiceStats {
            observations: self.observations.get() as usize,
            evicted_windows: self.evicted_windows.get() as usize,
            certified: self.certified.get() as usize,
            violated: self.violated.get() as usize,
            mismatched: self.mismatched.get() as usize,
            suppressed: self.suppressed.get() as usize,
        }
    }

    /// Overwrites the counters from a restored snapshot.
    pub(crate) fn store_stats(&self, stats: ServiceStats) {
        self.observations.store(stats.observations as u64);
        self.evicted_windows.store(stats.evicted_windows as u64);
        self.certified.store(stats.certified as u64);
        self.violated.store(stats.violated as u64);
        self.mismatched.store(stats.mismatched as u64);
        self.suppressed.store(stats.suppressed as u64);
    }

    /// Records a contained worker panic: bumps the always-on total and,
    /// when a registry is attached, a per-shard labeled counter (cold
    /// path — the dynamic name allocation only happens on an actual
    /// panic).
    pub(crate) fn record_shard_panic(&self, shard: usize) {
        self.shard_panics.inc();
        if let Some(registry) = &self.registry {
            registry
                .counter(&format!("online_shard_panics_total{{shard=\"{shard}\"}}"))
                .inc();
        }
    }

    /// Refreshes the occupancy gauges; skipped entirely while disabled.
    pub(crate) fn update_occupancy(&self, shard_lens: impl Iterator<Item = usize>) {
        if !self.sessions.is_enabled() {
            return;
        }
        let mut total = 0usize;
        let mut max = 0usize;
        let mut shards = 0usize;
        for len in shard_lens {
            total += len;
            max = max.max(len);
            shards += 1;
        }
        self.sessions.set(total as f64);
        let imbalance = if total == 0 || shards == 0 {
            1.0
        } else {
            max as f64 * shards as f64 / total as f64
        };
        self.shard_imbalance.set(imbalance);
    }

    /// Publishes recovery telemetry into the attached registry.
    pub(crate) fn publish_recovery(&self, info: &RecoveryInfo) {
        let Some(registry) = &self.registry else {
            return;
        };
        registry
            .gauge("online_recovery_duration_seconds")
            .set(info.duration_seconds);
        registry
            .gauge("online_recovery_replayed_records")
            .set(info.replayed_records as f64);
        // `store` is ungated, so the round-up count survives even if the
        // registry is toggled off at publish time.
        registry
            .counter("online_recovery_torn_records_total")
            .store(info.torn_records);
        registry
            .gauge("online_recovery_skipped_newer")
            .set(if info.skipped_newer { 1.0 } else { 0.0 });
    }
}

/// Instrument bundle for the durable substrate (WAL + snapshots).
#[derive(Debug, Clone)]
pub(crate) struct StoreInstruments {
    /// `durable_wal_append_seconds`: full append (encode + write + sync).
    pub(crate) append_seconds: Histogram,
    /// `durable_wal_fsync_seconds`: the sync portion alone.
    pub(crate) fsync_seconds: Histogram,
    /// `durable_wal_bytes_total`: framed bytes journaled.
    pub(crate) bytes: Counter,
    /// `durable_snapshot_seconds`: checkpoint write duration.
    pub(crate) snapshot_seconds: Histogram,
    /// `durable_snapshot_bytes`: size of the newest snapshot file.
    pub(crate) snapshot_bytes: Gauge,
    /// `durable_checkpoints_total`.
    pub(crate) checkpoints: Counter,
}

impl StoreInstruments {
    /// Inert handles (the default for a store without observability).
    pub(crate) fn disabled() -> Self {
        StoreInstruments {
            append_seconds: Histogram::disabled(),
            fsync_seconds: Histogram::disabled(),
            bytes: Counter::disabled(),
            snapshot_seconds: Histogram::disabled(),
            snapshot_bytes: Gauge::disabled(),
            checkpoints: Counter::disabled(),
        }
    }

    /// Handles registered under the `durable_*` names above.
    pub(crate) fn from_registry(registry: &Registry) -> Self {
        StoreInstruments {
            append_seconds: registry.histogram("durable_wal_append_seconds"),
            fsync_seconds: registry.histogram("durable_wal_fsync_seconds"),
            bytes: registry.counter("durable_wal_bytes_total"),
            snapshot_seconds: registry.histogram("durable_snapshot_seconds"),
            snapshot_bytes: registry.gauge("durable_snapshot_bytes"),
            checkpoints: registry.counter("durable_checkpoints_total"),
        }
    }
}

/// What crash recovery measured — captured before any registry can be
/// attached (recovery is a constructor), published on
/// [`SessionManager::observe`](crate::SessionManager::observe).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryInfo {
    /// Wall time of the full recover (snapshot load + WAL replay +
    /// conservative round-ups).
    pub duration_seconds: f64,
    /// Committed WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Torn WAL tails rounded up (each exhausts a user's — or shard's —
    /// ledger).
    pub torn_records: u64,
    /// Whether a newer-but-unreadable snapshot generation was skipped
    /// (every ledger exhausted).
    pub skipped_newer: bool,
}
