//! Per-user streaming state: the filtered location posterior, the active
//! event windows with their incremental two-world quantifiers, and the
//! budget ledger.

use priste_linalg::Vector;
use priste_markov::TransitionProvider;
use priste_quantify::{IncrementalTwoWorld, QuantifyError, StreamStep};
use std::fmt;

/// Opaque user identifier (sharded by value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub u64);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Conservative per-user privacy accounting. ε-ST-event privacy is not
/// additive across timestamps in general, so the ledger charges the
/// *sequential-composition upper bound*: each observation's worst realized
/// loss across the user's windows is added to `spent`. Once `spent`
/// reaches `budget` the session is flagged exhausted (the service keeps
/// quantifying — the flag is advice for the release mechanism upstream).
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetLedger {
    budget: f64,
    spent: f64,
    observations: usize,
    violations: usize,
}

impl BudgetLedger {
    /// Fresh ledger with the given total budget.
    ///
    /// # Errors
    /// [`OnlineError::InvalidConfig`](crate::OnlineError::InvalidConfig)
    /// unless `budget` is positive and finite — a NaN budget would make
    /// [`BudgetLedger::exhausted`] permanently `false`, silently disabling
    /// accounting, so it is rejected at construction.
    pub fn new(budget: f64) -> crate::Result<Self> {
        if !(budget > 0.0 && budget.is_finite()) {
            return Err(crate::OnlineError::InvalidConfig {
                message: format!("ledger budget must be positive and finite, got {budget}"),
            });
        }
        Ok(BudgetLedger {
            budget,
            spent: 0.0,
            observations: 0,
            violations: 0,
        })
    }

    /// Rebuilds a ledger from persisted state (the durable snapshot/WAL
    /// path). `spent` may be `+∞` — a ledger conservatively exhausted by a
    /// torn write stays exhausted across restarts — but NaN and negative
    /// values are rejected like at [`BudgetLedger::new`].
    pub(crate) fn from_parts(
        budget: f64,
        spent: f64,
        observations: usize,
        violations: usize,
    ) -> crate::Result<Self> {
        let mut ledger = BudgetLedger::new(budget)?;
        if spent.is_nan() || spent < 0.0 {
            return Err(crate::OnlineError::InvalidConfig {
                message: format!("persisted ledger spend must be non-negative, got {spent}"),
            });
        }
        ledger.spent = spent;
        ledger.observations = observations;
        ledger.violations = violations;
        Ok(ledger)
    }

    /// Conservative rounding for unrecoverable accounting: after a torn
    /// final WAL record the true spend of the affected user is unknowable,
    /// and the only value that can never under-count is `+∞`.
    pub(crate) fn force_exhaust(&mut self) {
        self.spent = f64::INFINITY;
    }

    /// Total budget configured for the user.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// Loss charged so far (sequential-composition bound).
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Budget remaining (never below zero).
    pub fn remaining(&self) -> f64 {
        (self.budget - self.spent).max(0.0)
    }

    /// Observations accounted.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Observations whose per-step loss exceeded the service ε.
    pub fn violations(&self) -> usize {
        self.violations
    }

    /// Whether the budget is used up: exhaustion triggers as soon as
    /// [`BudgetLedger::remaining`] hits zero (`spent >= budget`), so a
    /// session with exactly nothing left cannot attempt another release.
    pub fn exhausted(&self) -> bool {
        self.spent >= self.budget
    }

    /// Records one observation's worst loss; `violation` marks a per-step
    /// ε breach. Infinite losses exhaust the ledger immediately.
    pub(crate) fn charge(&mut self, loss: f64, violation: bool) {
        self.observations += 1;
        if violation {
            self.violations += 1;
        }
        if loss.is_finite() {
            self.spent += loss;
        } else {
            self.spent = f64::INFINITY;
        }
    }
}

/// Per-window verdict for one observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Realized loss stayed within the service ε.
    Certified,
    /// Realized loss exceeded the service ε (including the infinite-loss
    /// case where the stream proves the event true or false outright).
    Violated,
    /// The observation had zero likelihood under the window's model — a
    /// model mismatch, not a privacy condition; the window is evicted.
    ModelMismatch,
}

/// One window's quantification of one observation.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowReport {
    /// Registered template index the window was spawned from.
    pub template: usize,
    /// Window-local timestep of this observation (1-based; windows run on
    /// their own clock starting at attach time).
    pub window_t: usize,
    /// Realized two-sided privacy loss (`+∞` on degenerate evidence).
    pub loss: f64,
    /// Adversary posterior `Pr(EVENT | observations since attach)`.
    pub posterior: f64,
    /// The ε verdict.
    pub verdict: Verdict,
}

/// Per-user outcome of one ingested observation.
#[derive(Debug, Clone, PartialEq)]
pub struct UserReport {
    /// The user.
    pub user: UserId,
    /// User-local timestep after this observation (1-based).
    pub t: usize,
    /// Worst loss across this user's *quantified* windows at this step (0
    /// with none). Model-mismatched windows are excluded: their eviction is
    /// a modelling failure, not a realized privacy loss, so they must not
    /// poison the ledger or the reported loss.
    pub worst_loss: f64,
    /// One report per active window, in attach order.
    pub windows: Vec<WindowReport>,
    /// Windows evicted after this observation (expired or mismatched).
    pub evicted: usize,
    /// Ledger budget remaining after charging this observation.
    pub budget_remaining: f64,
    /// Whether the ledger is exhausted.
    pub exhausted: bool,
}

/// An active protected-event window: one incremental quantifier running on
/// the window's local clock.
#[derive(Debug, Clone)]
pub(crate) struct EventWindow<P> {
    pub(crate) template: usize,
    pub(crate) state: IncrementalTwoWorld<P>,
}

impl<P: TransitionProvider> EventWindow<P> {
    /// A window expires `linger` steps past its event end: after the end
    /// the lifted steps are block-diagonal and the posterior only sharpens
    /// on residual correlation, so the service keeps it briefly (Lemma
    /// III.3 coverage) and then retires it.
    pub(crate) fn expired(&self, linger: usize) -> bool {
        self.state.observed() >= self.state.event().end() + linger
    }
}

/// Per-user session state. Owned by the
/// [`SessionManager`](crate::SessionManager); read access is public for
/// reporting and tests.
#[derive(Debug, Clone)]
pub struct Session<P> {
    id: UserId,
    /// Filtered location posterior `Pr(u_t | o_1..o_t)` under the service's
    /// mobility model; the π handed to windows attached at time `t`.
    posterior: Vector,
    pub(crate) windows: Vec<EventWindow<P>>,
    ledger: BudgetLedger,
    t: usize,
}

impl<P: TransitionProvider> Session<P> {
    pub(crate) fn new(id: UserId, pi: Vector, budget: f64) -> Self {
        Session {
            id,
            posterior: pi,
            windows: Vec::new(),
            ledger: BudgetLedger::new(budget).expect("budget validated by OnlineConfig"),
            t: 0,
        }
    }

    /// Rebuilds a session from persisted state (durable recovery).
    pub(crate) fn from_parts(
        id: UserId,
        posterior: Vector,
        windows: Vec<EventWindow<P>>,
        ledger: BudgetLedger,
        t: usize,
    ) -> Self {
        Session {
            id,
            posterior,
            windows,
            ledger,
            t,
        }
    }

    /// Mutable ledger access for the recovery path's conservative rounding.
    pub(crate) fn ledger_mut(&mut self) -> &mut BudgetLedger {
        &mut self.ledger
    }

    /// The user id.
    pub fn id(&self) -> UserId {
        self.id
    }

    /// Observations consumed so far (user-local clock).
    pub fn observed(&self) -> usize {
        self.t
    }

    /// The current filtered location posterior.
    pub fn posterior(&self) -> &Vector {
        &self.posterior
    }

    /// The privacy-budget ledger.
    pub fn ledger(&self) -> &BudgetLedger {
        &self.ledger
    }

    /// Number of active event windows.
    pub fn active_windows(&self) -> usize {
        self.windows.len()
    }

    /// Attaches a new event window seeded with the *current* posterior (the
    /// sliding-window flavor of the journal extension: protection starts
    /// from the service's present belief about the user).
    pub(crate) fn attach(
        &mut self,
        template: usize,
        event: priste_event::StEvent,
        provider: P,
    ) -> Result<(), QuantifyError> {
        let state = IncrementalTwoWorld::new(event, provider, self.posterior.clone())?;
        self.windows.push(EventWindow { template, state });
        Ok(())
    }

    /// Folds one observation into the filtered posterior. The transition
    /// propagation (`posterior · M`) is done by the caller so it can be
    /// batched across sessions; this applies the emission weighting. A
    /// vanished posterior (observation impossible under the model) resets
    /// to uniform and reports `false`.
    pub(crate) fn weigh_posterior(&mut self, propagated: Vector, emission: &Vector) -> bool {
        let mut p = propagated
            .hadamard(emission)
            .expect("validated emission length");
        if p.normalize_mut().is_err() {
            self.posterior = Vector::uniform(self.posterior.len());
            return false;
        }
        self.posterior = p;
        true
    }

    /// Finishes one observation: charges the ledger with the step's worst
    /// window loss, advances the local clock, and evicts expired windows.
    pub(crate) fn finish_observation(
        &mut self,
        mut reports: Vec<WindowReport>,
        linger: usize,
    ) -> UserReport {
        // Mismatched windows carry loss = ∞ as a sentinel; only quantified
        // verdicts represent realized loss and may touch the ledger.
        let quantified = reports
            .iter()
            .filter(|r| r.verdict != Verdict::ModelMismatch);
        let worst_loss = quantified.clone().map(|r| r.loss).fold(0.0f64, f64::max);
        let violation = reports.iter().any(|r| r.verdict == Verdict::Violated);
        if quantified.count() > 0 {
            self.ledger.charge(worst_loss, violation);
        }
        self.t += 1;

        // Evict expired and mismatched windows. `reports` is in attach
        // order, mirroring `windows`.
        let mut evicted = 0;
        let mut keep = Vec::with_capacity(self.windows.len());
        for (i, w) in self.windows.drain(..).enumerate() {
            let mismatched = reports
                .get(i)
                .is_some_and(|r| r.verdict == Verdict::ModelMismatch);
            if mismatched || w.expired(linger) {
                evicted += 1;
            } else {
                keep.push(w);
            }
        }
        self.windows = keep;
        reports.shrink_to_fit();
        UserReport {
            user: self.id,
            t: self.t,
            worst_loss,
            windows: reports,
            evicted,
            budget_remaining: self.ledger.remaining(),
            exhausted: self.ledger.exhausted(),
        }
    }
}

/// Builds a [`WindowReport`] from one window's [`StreamStep`] against the
/// service ε.
pub(crate) fn report_from_step(template: usize, step: &StreamStep, epsilon: f64) -> WindowReport {
    WindowReport {
        template,
        window_t: step.t,
        loss: step.privacy_loss,
        posterior: step.posterior,
        verdict: if step.certifies(epsilon) {
            Verdict::Certified
        } else {
            Verdict::Violated
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates_and_exhausts() {
        let mut l = BudgetLedger::new(1.0).unwrap();
        assert!(!l.exhausted());
        l.charge(0.4, false);
        l.charge(0.4, true);
        assert_eq!(l.observations(), 2);
        assert_eq!(l.violations(), 1);
        assert!((l.spent() - 0.8).abs() < 1e-12);
        assert!((l.remaining() - 0.2).abs() < 1e-12);
        assert!(!l.exhausted());
        l.charge(f64::INFINITY, true);
        assert!(l.exhausted());
        assert_eq!(l.remaining(), 0.0);
    }

    #[test]
    fn ledger_exhausts_exactly_at_zero_remaining() {
        // The boundary: spent == budget means remaining() == 0, and a
        // session with nothing left must not be treated as live.
        let mut l = BudgetLedger::new(1.0).unwrap();
        l.charge(0.5, false);
        assert!(!l.exhausted());
        l.charge(0.5, false);
        assert_eq!(l.remaining(), 0.0);
        assert!(
            l.exhausted(),
            "zero remaining budget must read as exhausted"
        );
        // And just past it stays exhausted.
        l.charge(1e-9, false);
        assert!(l.exhausted());
    }

    #[test]
    fn ledger_rejects_degenerate_budgets() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1.0] {
            let err = BudgetLedger::new(bad).unwrap_err();
            assert!(
                matches!(err, crate::OnlineError::InvalidConfig { .. }),
                "budget {bad} must be rejected, got {err}"
            );
        }
        assert!(BudgetLedger::new(0.5).is_ok());
    }

    #[test]
    fn persisted_ledger_roundtrips_and_validates() {
        let l = BudgetLedger::from_parts(2.0, 1.5, 7, 2).unwrap();
        assert_eq!(l.budget(), 2.0);
        assert_eq!(l.spent(), 1.5);
        assert_eq!(l.observations(), 7);
        assert_eq!(l.violations(), 2);
        // +∞ spend (conservative torn-write rounding) survives a roundtrip.
        let l = BudgetLedger::from_parts(2.0, f64::INFINITY, 7, 2).unwrap();
        assert!(l.exhausted());
        assert!(BudgetLedger::from_parts(2.0, f64::NAN, 0, 0).is_err());
        assert!(BudgetLedger::from_parts(2.0, -0.5, 0, 0).is_err());
        assert!(BudgetLedger::from_parts(f64::NAN, 0.0, 0, 0).is_err());
    }

    #[test]
    fn force_exhaust_never_undercounts() {
        let mut l = BudgetLedger::new(10.0).unwrap();
        l.charge(0.25, false);
        l.force_exhaust();
        assert!(l.exhausted());
        assert_eq!(l.spent(), f64::INFINITY);
        assert_eq!(l.remaining(), 0.0);
    }

    #[test]
    fn user_id_displays_compactly() {
        assert_eq!(UserId(42).to_string(), "u42");
    }
}
